//! End-to-end slicer tests comparing the hybrid, CI, and CS algorithms on
//! programs engineered to separate their precision/soundness behaviours.

use taj_pointer::{analyze, SolverConfig};
use taj_sdg::{CiSlicer, CsSlicer, HybridSlicer, ProgramView, SliceBounds, SliceResult, SliceSpec};

struct Setup {
    program: jir::Program,
    pts: taj_pointer::PointsTo,
    spec: SliceSpec,
}

fn setup(src: &str) -> Setup {
    let mut program = jir::frontend::build_program(src).expect("program builds");
    let c = program.class_by_name("Main").expect("Main");
    let m = program.method_by_name(c, "main").expect("main");
    program.entrypoints.push(m);

    let mut spec = SliceSpec::default();
    let add_source = |p: &jir::Program, spec: &mut SliceSpec, cls: &str, name: &str| {
        let c = p.class_by_name(cls).unwrap();
        spec.sources.insert(p.method_by_name(c, name).unwrap());
    };
    add_source(&program, &mut spec, "HttpServletRequest", "getParameter");
    add_source(&program, &mut spec, "HttpServletRequest", "getHeader");
    let pw = program.class_by_name("PrintWriter").unwrap();
    spec.sinks.insert(program.method_by_name(pw, "println").unwrap(), vec![0]);
    let st = program.class_by_name("Statement").unwrap();
    spec.sinks.insert(program.method_by_name(st, "executeQuery").unwrap(), vec![0]);
    let enc = program.class_by_name("URLEncoder").unwrap();
    spec.sanitizers.insert(program.method_by_name(enc, "encode").unwrap());

    let cfg = SolverConfig {
        source_methods: spec.sources.clone(),
        policy: taj_pointer::PolicyConfig { taint_methods: spec.sources.clone() },
        ..Default::default()
    };
    let pts = analyze(&program, &cfg);
    Setup { program, pts, spec }
}

fn run_hybrid(s: &Setup) -> SliceResult {
    let view = ProgramView::build(&s.program, &s.pts, &s.spec);
    HybridSlicer::new(&view, SliceBounds::default()).run()
}

fn run_ci(s: &Setup) -> SliceResult {
    let view = ProgramView::build(&s.program, &s.pts, &s.spec);
    CiSlicer::new(&view, SliceBounds::default()).run()
}

fn run_cs(s: &Setup) -> Result<SliceResult, taj_sdg::SliceError> {
    let view = ProgramView::build(&s.program, &s.pts, &s.spec);
    CsSlicer::new(&view, SliceBounds::default()).run()
}

const DIRECT_FLOW: &str = r#"
class Main extends HttpServlet {
    static method void main() {
        HttpServletRequest req = new HttpServletRequest();
        HttpServletResponse resp = new HttpServletResponse();
        Main s = new Main();
        s.doGet(req, resp);
    }
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String t = req.getParameter("name");
        PrintWriter w = resp.getWriter();
        w.println(t);
    }
}
"#;

#[test]
fn all_three_find_a_direct_flow() {
    let s = setup(DIRECT_FLOW);
    assert_eq!(run_hybrid(&s).flows.len(), 1, "hybrid");
    assert_eq!(run_ci(&s).flows.len(), 1, "ci");
    assert_eq!(run_cs(&s).unwrap().flows.len(), 1, "cs");
}

#[test]
fn sanitized_flow_not_reported() {
    let s = setup(
        r#"
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main s = new Main();
                s.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String t = req.getParameter("name");
                String clean = URLEncoder.encode(t);
                PrintWriter w = resp.getWriter();
                w.println(clean);
            }
        }
        "#,
    );
    assert!(run_hybrid(&s).flows.is_empty(), "hybrid reports sanitized flow");
    assert!(run_ci(&s).flows.is_empty(), "ci reports sanitized flow");
    assert!(run_cs(&s).unwrap().flows.is_empty(), "cs reports sanitized flow");
}

#[test]
fn interprocedural_flow_through_helper() {
    let s = setup(
        r#"
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main s = new Main();
                s.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String t = req.getParameter("name");
                String u = this.decorate(t);
                resp.getWriter().println(u);
            }
            method String decorate(String x) { return "hello " + x; }
        }
        "#,
    );
    assert_eq!(run_hybrid(&s).flows.len(), 1, "summary through decorate");
    assert_eq!(run_ci(&s).flows.len(), 1);
    assert_eq!(run_cs(&s).unwrap().flows.len(), 1);
}

#[test]
fn heap_flow_through_field() {
    let s = setup(
        r#"
        class Holder { field String v; ctor () { } }
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main s = new Main();
                s.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Holder h = new Holder();
                h.v = req.getParameter("name");
                String out = h.v;
                resp.getWriter().println(out);
            }
        }
        "#,
    );
    let hybrid = run_hybrid(&s);
    assert_eq!(hybrid.flows.len(), 1, "hybrid heap flow");
    assert!(hybrid.flows[0].heap_transitions >= 1);
    assert_eq!(run_ci(&s).flows.len(), 1, "ci heap flow");
    assert_eq!(run_cs(&s).unwrap().flows.len(), 1, "cs heap flow");
}

/// Two Box instances; only one holds tainted data. The hybrid and CS
/// algorithms disambiguate via object-sensitive contexts; CI merges them
/// (a false positive) — exactly the precision ordering of Figure 4.
#[test]
fn context_precision_separates_hybrid_from_ci() {
    let s = setup(
        r#"
        class Box {
            field String v;
            ctor (String v) { this.v = v; }
            method String get() { return this.v; }
        }
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main s = new Main();
                s.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Box dirty = new Box(req.getParameter("name"));
                Box clean = new Box("constant");
                PrintWriter w = resp.getWriter();
                w.println(dirty.get()); // BAD
                w.println(clean.get()); // OK
            }
        }
        "#,
    );
    assert_eq!(run_hybrid(&s).flows.len(), 1, "hybrid distinguishes boxes");
    assert_eq!(run_cs(&s).unwrap().flows.len(), 1, "cs distinguishes boxes");
    assert_eq!(run_ci(&s).flows.len(), 2, "ci merges contexts: false positive expected");
}

/// A tainted value crosses threads through a shared field. The
/// flow-insensitive heap treatment (hybrid, CI) catches it; CS loses the
/// store performed by the spawned thread (§7.2's CS false negatives).
#[test]
fn cs_misses_cross_thread_flow() {
    let s = setup(
        r#"
        class Shared { field String v; ctor () { } }
        class Worker implements Runnable {
            field Shared shared;
            field HttpServletRequest req;
            ctor (Shared s, HttpServletRequest r) { this.shared = s; this.req = r; }
            method void run() {
                Shared s = this.shared;
                HttpServletRequest r = this.req;
                s.v = r.getParameter("name");
            }
        }
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main m = new Main();
                m.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Shared s = new Shared();
                Thread t = new Thread(new Worker(s, req));
                t.start();
                String out = s.v;
                resp.getWriter().println(out);
            }
        }
        "#,
    );
    assert_eq!(run_hybrid(&s).flows.len(), 1, "hybrid is sound for threads");
    assert_eq!(run_ci(&s).flows.len(), 1, "ci is sound for threads");
    assert_eq!(
        run_cs(&s).unwrap().flows.len(),
        0,
        "cs misses the spawned thread's store (false negative)"
    );
}

#[test]
fn cs_runs_out_of_budget() {
    let s = setup(DIRECT_FLOW);
    let view = ProgramView::build(&s.program, &s.pts, &s.spec);
    let bounds = SliceBounds { max_path_edges: Some(1), ..Default::default() };
    let err = CsSlicer::new(&view, bounds).run().unwrap_err();
    assert!(matches!(err, taj_sdg::SliceError::OutOfBudget { .. }));
}

#[test]
fn heap_transition_bound_limits_hybrid() {
    let s = setup(
        r#"
        class Holder { field String v; ctor () { } }
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main m = new Main();
                m.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Holder h = new Holder();
                h.v = req.getParameter("name");
                String out = h.v;
                resp.getWriter().println(out);
            }
        }
        "#,
    );
    let view = ProgramView::build(&s.program, &s.pts, &s.spec);
    let bounds = SliceBounds { max_heap_transitions: Some(0), ..Default::default() };
    let res = HybridSlicer::new(&view, bounds).run();
    assert!(res.budget_exhausted);
    assert!(res.flows.is_empty(), "zero heap budget blocks the heap flow");
}

#[test]
fn map_key_flow_precision() {
    // Tainted value under key "a"; the read of key "b" is clean.
    let s = setup(
        r#"
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main m = new Main();
                m.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                HashMap map = new HashMap();
                map.put("a", req.getParameter("name"));
                map.put("b", "constant");
                PrintWriter w = resp.getWriter();
                w.println(map.get("a")); // BAD
                w.println(map.get("b")); // OK
            }
        }
        "#,
    );
    assert_eq!(run_hybrid(&s).flows.len(), 1, "only the key-a read is tainted");
}

#[test]
fn reflective_invoke_flow() {
    let s = setup(
        r#"
        class Target {
            method String id(String x) { return x; }
        }
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main m = new Main();
                m.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String t = req.getParameter("name");
                Class k = Class.forName("Target");
                Method idm = k.getMethod("id");
                Target target = new Target();
                Object r = idm.invoke(target, new Object[] { t });
                resp.getWriter().println(r);
            }
        }
        "#,
    );
    assert_eq!(run_hybrid(&s).flows.len(), 1, "taint flows through Method.invoke");
}

#[test]
fn sql_injection_flow() {
    let s = setup(
        r#"
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main m = new Main();
                m.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String id = req.getParameter("id");
                String sql = "SELECT * FROM users WHERE id = " + id;
                Connection c = DriverManager.getConnection("jdbc:db");
                Statement st = c.createStatement();
                st.executeQuery(sql);
            }
        }
        "#,
    );
    let flows = run_hybrid(&s).flows;
    assert_eq!(flows.len(), 1);
    let sink = s.program.method(flows[0].sink_method);
    assert_eq!(sink.name, "executeQuery");
}

#[test]
fn string_builder_flow() {
    let s = setup(
        r#"
        class Main extends HttpServlet {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main m = new Main();
                m.doGet(req, resp);
            }
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                StringBuilder sb = new StringBuilder();
                sb.append("hello ");
                sb.append(req.getParameter("name"));
                String out = sb.toString();
                resp.getWriter().println(out);
            }
        }
        "#,
    );
    assert_eq!(run_hybrid(&s).flows.len(), 1, "taint flows through StringBuilder");
}

#[test]
fn flows_have_reconstructible_paths() {
    let s = setup(DIRECT_FLOW);
    let res = run_hybrid(&s);
    let flow = &res.flows[0];
    assert!(flow.path.len() >= 2, "path has at least seed and sink");
    assert_eq!(flow.path.first().unwrap().kind, taj_sdg::StepKind::Seed);
    assert_eq!(flow.path.first().unwrap().stmt, flow.source);
    assert_eq!(flow.path.last().unwrap().stmt, flow.sink);
}
