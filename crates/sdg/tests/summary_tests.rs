//! Focused tests for the RHS endpoint summaries inside the hybrid slicer:
//! transitive summaries, recursion fixpoints, sanitizer cut-offs inside
//! callees, and summary sharing across seeds.

use taj_pointer::{analyze, PolicyConfig, SolverConfig};
use taj_sdg::{HybridSlicer, ProgramView, SliceBounds, SliceSpec};

struct Setup {
    program: jir::Program,
    pts: taj_pointer::PointsTo,
    spec: SliceSpec,
}

fn setup(src: &str) -> Setup {
    let mut program = jir::frontend::build_program(src).expect("builds");
    let c = program.class_by_name("Main").expect("Main");
    let m = program.method_by_name(c, "main").expect("main");
    program.entrypoints.push(m);
    let mut spec = SliceSpec::default();
    let req = program.class_by_name("HttpServletRequest").unwrap();
    spec.sources.insert(program.method_by_name(req, "getParameter").unwrap());
    let pw = program.class_by_name("PrintWriter").unwrap();
    spec.sinks.insert(program.method_by_name(pw, "println").unwrap(), vec![0]);
    let enc = program.class_by_name("URLEncoder").unwrap();
    spec.sanitizers.insert(program.method_by_name(enc, "encode").unwrap());
    let cfg = SolverConfig {
        policy: PolicyConfig { taint_methods: spec.sources.clone() },
        source_methods: spec.sources.clone(),
        ..Default::default()
    };
    let pts = analyze(&program, &cfg);
    Setup { program, pts, spec }
}

fn flows(s: &Setup) -> usize {
    let view = ProgramView::build(&s.program, &s.pts, &s.spec);
    HybridSlicer::new(&view, SliceBounds::default()).run().flows.len()
}

#[test]
fn three_level_transitive_summary() {
    // taint → a → b → c → sink inside c: the summary of a must absorb the
    // summaries of b and c transitively.
    let s = setup(
        r#"
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                PrintWriter w = resp.getWriter();
                Main.a(req.getParameter("q"), w);
            }
            static method void a(String s, PrintWriter w) { Main.b(s, w); }
            static method void b(String s, PrintWriter w) { Main.c(s, w); }
            static method void c(String s, PrintWriter w) { w.println(s); }
        }
        "#,
    );
    assert_eq!(flows(&s), 1);
}

#[test]
fn summary_sanitizer_inside_callee() {
    // The sanitizer sits inside a helper: its summary must not report the
    // sink, and must not mark the return as tainted.
    let s = setup(
        r#"
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                PrintWriter w = resp.getWriter();
                String v = Main.scrub(req.getParameter("q"));
                w.println(v);
            }
            static method String scrub(String s) { return URLEncoder.encode(s); }
        }
        "#,
    );
    assert_eq!(flows(&s), 0, "sanitizer inside a summarized callee must cut the flow");
}

#[test]
fn summary_partial_sanitization() {
    // One path through the helper sanitizes, the other does not: the
    // summary must keep the tainted path.
    let s = setup(
        r#"
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                PrintWriter w = resp.getWriter();
                String v = Main.maybeScrub(req.getParameter("q"), true);
                w.println(v);
            }
            static method String maybeScrub(String s, boolean clean) {
                if (clean) { return URLEncoder.encode(s); }
                return s;
            }
        }
        "#,
    );
    assert_eq!(flows(&s), 1, "the unsanitized branch keeps the flow alive");
}

#[test]
fn recursive_summary_reaches_fixpoint() {
    let s = setup(
        r#"
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                PrintWriter w = resp.getWriter();
                w.println(Main.spin(req.getParameter("q"), 3));
            }
            static method String spin(String s, int n) {
                if (n > 0) { return Main.spin(s, n - 1); }
                return s;
            }
        }
        "#,
    );
    assert_eq!(flows(&s), 1);
}

#[test]
fn mutual_recursion_summary() {
    let s = setup(
        r#"
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                resp.getWriter().println(Main.even(req.getParameter("q"), 4));
            }
            static method String even(String s, int n) {
                if (n > 0) { return Main.odd(s, n - 1); }
                return s;
            }
            static method String odd(String s, int n) {
                if (n > 0) { return Main.even(s, n - 1); }
                return s;
            }
        }
        "#,
    );
    assert_eq!(flows(&s), 1);
}

#[test]
fn summary_store_is_heap_matched() {
    // The helper stores into the heap; the caller loads it back: the
    // summary's store must be matched against the caller-side load.
    let s = setup(
        r#"
        class Box { field String v; ctor () { } }
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Box b = new Box();
                Main.stash(b, req.getParameter("q"));
                String out = b.v;
                resp.getWriter().println(out);
            }
            static method void stash(Box b, String s) { b.v = s; }
        }
        "#,
    );
    assert_eq!(flows(&s), 1, "summary stores participate in direct-edge matching");
}

#[test]
fn summaries_shared_across_seeds() {
    // Two sources flow through the same helper: the second seed must
    // reuse the helper's summary (observable through total work).
    let s = setup(
        r#"
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                PrintWriter w = resp.getWriter();
                w.println(Main.shape(req.getParameter("a")));
                w.println(Main.shape(req.getParameter("b")));
            }
            static method String shape(String s) { return "[" + s + "]"; }
        }
        "#,
    );
    let view = ProgramView::build(&s.program, &s.pts, &s.spec);
    let result = HybridSlicer::new(&view, SliceBounds::default()).run();
    assert_eq!(result.flows.len(), 2);
    // Work should be far below 2× the single-seed cost; sanity-bound it.
    assert!(result.work < 2_000, "summary reuse keeps work low: {}", result.work);
}

#[test]
fn void_helper_with_sink_inside() {
    let s = setup(
        r#"
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Main.render(resp, req.getParameter("q"));
            }
            static method void render(HttpServletResponse resp, String s) {
                PrintWriter w = resp.getWriter();
                w.println(s);
            }
        }
        "#,
    );
    assert_eq!(flows(&s), 1, "sink hit inside a summarized callee is reported");
}
