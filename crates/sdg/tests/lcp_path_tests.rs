//! Witness-path structure tests: flows must carry coherent provenance
//! (monotone step chains, heap-transition counts matching the path, and
//! app/library classification usable for LCP computation).

use taj_pointer::{analyze, PolicyConfig, SolverConfig};
use taj_sdg::{HybridSlicer, ProgramView, SliceBounds, SliceSpec, StepKind};

fn run(src: &str) -> (jir::Program, taj_pointer::PointsTo, SliceSpec) {
    let mut program = jir::frontend::build_program(src).unwrap();
    let c = program.class_by_name("Main").unwrap();
    program.entrypoints.push(program.method_by_name(c, "main").unwrap());
    let mut spec = SliceSpec::default();
    let req = program.class_by_name("HttpServletRequest").unwrap();
    spec.sources.insert(program.method_by_name(req, "getParameter").unwrap());
    let pw = program.class_by_name("PrintWriter").unwrap();
    spec.sinks.insert(program.method_by_name(pw, "println").unwrap(), vec![0]);
    let cfg = SolverConfig {
        policy: PolicyConfig { taint_methods: spec.sources.clone() },
        source_methods: spec.sources.clone(),
        ..Default::default()
    };
    let pts = analyze(&program, &cfg);
    (program, pts, spec)
}

const TWO_HOP: &str = r#"
    class Holder { field String v; ctor () { } }
    class Main {
        static method void main() {
            HttpServletRequest req = new HttpServletRequest();
            HttpServletResponse resp = new HttpServletResponse();
            Holder h1 = new Holder();
            h1.v = req.getParameter("q");
            Holder h2 = new Holder();
            h2.v = h1.v;
            String out = h2.v;
            resp.getWriter().println(out);
        }
    }
"#;

#[test]
fn path_starts_at_seed_ends_at_sink() {
    let (p, pts, spec) = run(TWO_HOP);
    let view = ProgramView::build(&p, &pts, &spec);
    let flows = HybridSlicer::new(&view, SliceBounds::default()).run().flows;
    assert_eq!(flows.len(), 1);
    let f = &flows[0];
    assert_eq!(f.path.first().unwrap().kind, StepKind::Seed);
    assert_eq!(f.path.first().unwrap().stmt, f.source);
    assert_eq!(f.path.last().unwrap().stmt, f.sink);
}

#[test]
fn heap_transition_count_matches_path() {
    let (p, pts, spec) = run(TWO_HOP);
    let view = ProgramView::build(&p, &pts, &spec);
    let flows = HybridSlicer::new(&view, SliceBounds::default()).run().flows;
    let f = &flows[0];
    let counted = f
        .path
        .iter()
        .filter(|s| matches!(s.kind, StepKind::HeapEdge | StepKind::CarrierEdge))
        .count();
    assert_eq!(f.heap_transitions, counted);
    assert_eq!(f.heap_transitions, 2, "two store→load hops through Holder");
}

#[test]
fn every_step_resolves_to_a_real_statement() {
    let (p, pts, spec) = run(TWO_HOP);
    let view = ProgramView::build(&p, &pts, &spec);
    let flows = HybridSlicer::new(&view, SliceBounds::default()).run().flows;
    for f in &flows {
        for step in &f.path {
            let method = pts.callgraph.method_of(step.stmt.node);
            let body = p.method(method).body().expect("stmt in a body method");
            let block = body.blocks.get(step.stmt.loc.block.index()).expect("block exists");
            // Terminator pseudo-locations sit one past the last instruction.
            assert!(
                (step.stmt.loc.idx as usize) <= block.insts.len(),
                "step {step:?} out of range in {}",
                p.method(method).name
            );
        }
    }
}

#[test]
fn library_classification_is_queryable_per_step() {
    let (p, pts, spec) = run(TWO_HOP);
    let view = ProgramView::build(&p, &pts, &spec);
    let flows = HybridSlicer::new(&view, SliceBounds::default()).run().flows;
    // Every step of this flow is in application code ($Entrypoints/Main).
    for step in &flows[0].path {
        assert!(!view.is_library_stmt(step.stmt), "unexpected library step: {step:?}");
    }
}
