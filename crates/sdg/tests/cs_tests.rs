//! CS-slicer specifics: the heap-through-calls discipline (no
//! unrealizable down-then-up paths), caller-to-sibling flows that *are*
//! realizable, and deterministic budget failures.

use taj_pointer::{analyze, PolicyConfig, SolverConfig};
use taj_sdg::{CsSlicer, ProgramView, SliceBounds, SliceError, SliceSpec};

fn setup(src: &str) -> (jir::Program, taj_pointer::PointsTo, SliceSpec) {
    let mut program = jir::frontend::build_program(src).unwrap();
    let c = program.class_by_name("Main").unwrap();
    program.entrypoints.push(program.method_by_name(c, "main").unwrap());
    let mut spec = SliceSpec::default();
    let req = program.class_by_name("HttpServletRequest").unwrap();
    spec.sources.insert(program.method_by_name(req, "getParameter").unwrap());
    let pw = program.class_by_name("PrintWriter").unwrap();
    spec.sinks.insert(program.method_by_name(pw, "println").unwrap(), vec![0]);
    let cfg = SolverConfig {
        policy: PolicyConfig { taint_methods: spec.sources.clone() },
        source_methods: spec.sources.clone(),
        ..Default::default()
    };
    let pts = analyze(&program, &cfg);
    (program, pts, spec)
}

fn cs_flows(src: &str) -> usize {
    let (p, pts, spec) = setup(src);
    let view = ProgramView::build(&p, &pts, &spec);
    CsSlicer::new(&view, SliceBounds::default()).run().unwrap().flows.len()
}

/// Store in method A, load in sibling method B, both called from main:
/// the heap fact travels up A→main and down main→B — a realizable path
/// that CS must follow.
#[test]
fn caller_to_sibling_heap_flow_is_found() {
    let n = cs_flows(
        r#"
        class Box { field String v; ctor () { } }
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Box b = new Box();
                Main.write(b, req.getParameter("q"));
                Main.read(b, resp);
            }
            static method void write(Box b, String s) { b.v = s; }
            static method void read(Box b, HttpServletResponse resp) {
                String out = b.v;
                resp.getWriter().println(out);
            }
        }
        "#,
    );
    assert_eq!(n, 1, "up-then-down through the common caller is realizable");
}

/// Statically-aliased objects reached only through disjoint entrypoints:
/// down-then-up through the shared factory is unrealizable, so CS stays
/// clean (this is the FactoryAlias pattern's CS side).
#[test]
fn down_then_up_is_rejected() {
    let (p, pts, spec) = setup(
        r#"
        class Box { field String v; ctor () { } }
        class F { static method Box make() { return new Box(); } }
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                Box w = F.make();
                w.v = req.getParameter("q");
            }
        }
        class Other extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Box r = F.make();
                resp.getWriter().println(r.v);
            }
        }
        "#,
    );
    // Also drive Other's entrypoint.
    let program = p; // (entrypoints already synthesized for Main only)
    let view = ProgramView::build(&program, &pts, &spec);
    let flows = CsSlicer::new(&view, SliceBounds::default()).run().unwrap().flows;
    assert_eq!(flows.len(), 0, "heap fact must not return through the unrelated factory call site");
}

/// The path-edge budget fails deterministically at the same count.
#[test]
fn budget_failure_is_deterministic() {
    let src = r#"
        class Box { field String v; ctor () { } }
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpServletResponse resp = new HttpServletResponse();
                Box b = new Box();
                b.v = req.getParameter("q");
                resp.getWriter().println(b.v);
            }
        }
    "#;
    let mut counts = Vec::new();
    for _ in 0..2 {
        let (p, pts, spec) = setup(src);
        let view = ProgramView::build(&p, &pts, &spec);
        let bounds = SliceBounds { max_path_edges: Some(3), ..Default::default() };
        match CsSlicer::new(&view, bounds).run() {
            Err(SliceError::OutOfBudget { path_edges }) => counts.push(path_edges),
            Ok(_) => panic!("budget of 3 must be exceeded"),
        }
    }
    assert_eq!(counts[0], counts[1], "budget failure point is deterministic");
}

/// Without sources there is nothing to slice: empty result, no error even
/// under a tiny budget... except the eager dependence closure, which runs
/// regardless (it models SDG construction cost).
#[test]
fn closure_cost_is_charged_even_without_sources() {
    let src = r#"
        class Box { field String v; ctor () { } }
        class Main {
            static method void main() {
                Box b = new Box();
                b.v = "static";
                String x = b.v;
            }
        }
    "#;
    let mut program = jir::frontend::build_program(src).unwrap();
    let c = program.class_by_name("Main").unwrap();
    program.entrypoints.push(program.method_by_name(c, "main").unwrap());
    let spec = SliceSpec::default(); // no sources at all
    let pts = analyze(&program, &SolverConfig::default());
    let view = ProgramView::build(&program, &pts, &spec);
    let tiny = SliceBounds { max_path_edges: Some(1), ..Default::default() };
    assert!(
        CsSlicer::new(&view, tiny).run().is_err(),
        "the heap-dependence closure itself consumes budget"
    );
    let roomy = SliceBounds { max_path_edges: Some(100_000), ..Default::default() };
    let result = CsSlicer::new(&view, roomy).run().unwrap();
    assert!(result.flows.is_empty());
    assert!(result.work > 0, "closure work is recorded");
}
