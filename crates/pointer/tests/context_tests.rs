//! Tests pinning down the §3.1 context-sensitivity policy: call-string
//! contexts for factories and taint APIs, object-sensitive instance
//! methods, context-insensitive statics, and collection heap cloning.

use taj_pointer::{analyze, InstanceKey, PolicyConfig, SolverConfig};

fn build(src: &str) -> (jir::Program, taj_pointer::PointsTo) {
    let mut p = jir::frontend::build_program(src).expect("builds");
    let c = p.class_by_name("Main").expect("Main");
    p.entrypoints.push(p.method_by_name(c, "main").expect("main"));
    let pts = analyze(&p, &SolverConfig::default());
    (p, pts)
}

/// Counts allocation instance keys of `class_name`.
fn allocs_of(p: &jir::Program, pts: &taj_pointer::PointsTo, class_name: &str) -> usize {
    let cid = p.class_by_name(class_name).unwrap();
    pts.iter_instance_keys()
        .filter(|(_, k)| matches!(k, InstanceKey::Alloc { class, .. } if *class == cid))
        .count()
}

#[test]
fn factory_methods_get_per_site_objects() {
    // `getWriter` is a library factory (1-call-string): two call sites on
    // one response object must yield two distinct PrintWriter objects.
    let (p, pts) = build(
        r#"
        class Main {
            static method void main() {
                HttpServletResponse resp = new HttpServletResponse();
                PrintWriter a = resp.getWriter();
                PrintWriter b = resp.getWriter();
            }
        }
        "#,
    );
    assert_eq!(
        allocs_of(&p, &pts, "PrintWriter"),
        2,
        "factory call-string context separates the two sites"
    );
}

#[test]
fn instance_methods_are_object_sensitive() {
    // One method, two receivers: two call-graph nodes.
    let (p, pts) = build(
        r#"
        class Worker {
            ctor () { }
            method Object work() { return new Object(); }
        }
        class Main {
            static method void main() {
                Worker w1 = new Worker();
                Worker w2 = new Worker();
                w1.work();
                w2.work();
            }
        }
        "#,
    );
    let worker = p.class_by_name("Worker").unwrap();
    let work = p.method_by_name(worker, "work").unwrap();
    assert_eq!(
        pts.callgraph.nodes_of_method(work).len(),
        2,
        "1-object-sensitivity clones per receiver"
    );
}

#[test]
fn static_methods_are_context_insensitive() {
    let (p, pts) = build(
        r#"
        class Util {
            static method Object mk() { return new Object(); }
        }
        class Main {
            static method void main() {
                Util.mk();
                Util.mk();
            }
        }
        "#,
    );
    let util = p.class_by_name("Util").unwrap();
    let mk = p.method_by_name(util, "mk").unwrap();
    assert_eq!(pts.callgraph.nodes_of_method(mk).len(), 1, "plain statics share one context");
}

#[test]
fn taint_api_contexts_from_config() {
    // With getParameter marked as a taint API, the policy chooses
    // call-site contexts for it — observable through the PolicyConfig.
    let p = jir::frontend::build_program("class Main { static method void main() { } }").unwrap();
    let req = p.class_by_name("HttpServletRequest").unwrap();
    let gp = p.method_by_name(req, "getParameter").unwrap();
    let mut policy = PolicyConfig::default();
    policy.taint_methods.insert(gp);
    assert_eq!(policy.choose(&p, gp, true), taj_pointer::context::ContextChoice::CallSite);
}

#[test]
fn collections_clone_per_allocating_context() {
    // A map allocated inside an object-sensitive method: two holders give
    // two map objects (unlimited-depth object sensitivity, §3.1).
    let (p, pts) = build(
        r#"
        class Holder {
            field HashMap map;
            ctor () { this.map = new HashMap(); }
        }
        class Main {
            static method void main() {
                Holder h1 = new Holder();
                Holder h2 = new Holder();
            }
        }
        "#,
    );
    assert_eq!(allocs_of(&p, &pts, "HashMap"), 2, "collection allocations are cloned per context");
}

#[test]
fn normal_classes_share_per_site_objects() {
    // Contrast: a *non*-collection allocated in the same shape merges
    // (site-based heap abstraction for normal classes).
    let (p, pts) = build(
        r#"
        class Inner { ctor () { } }
        class Holder {
            field Inner inner;
            ctor () { this.inner = new Inner(); }
        }
        class Main {
            static method void main() {
                Holder h1 = new Holder();
                Holder h2 = new Holder();
            }
        }
        "#,
    );
    assert_eq!(
        allocs_of(&p, &pts, "Inner"),
        1,
        "normal classes use the site-based heap abstraction"
    );
}

#[test]
fn exception_filter_respects_hierarchy() {
    // An IOException is not caught by a RuntimeException handler.
    let (p, pts) = build(
        r#"
        class Main {
            static method void main() {
                try { Main.boom(); } catch (RuntimeException e) { Object o = e; }
            }
            static method void boom() { throw new IOException("x"); }
        }
        "#,
    );
    let c = p.class_by_name("Main").unwrap();
    let m = p.method_by_name(c, "main").unwrap();
    let body = p.method(m).body().unwrap();
    let bind = body
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .find_map(|i| match i {
            jir::Inst::CatchBind { dst, .. } => Some(*dst),
            _ => None,
        })
        .expect("catch binder");
    let node = pts.callgraph.nodes_of_method(m)[0];
    let caught = pts.local(node, bind).map(|s| s.len()).unwrap_or(0);
    assert_eq!(caught, 0, "IOException must not pass the RuntimeException filter");
}
