//! Precise tests for the heap graph's bounded reachability (§4.1.1 +
//! §6.2.3): a three-level ownership chain must unfold one level per
//! dereference bound.

use jir::util::BitSet;
use taj_pointer::{analyze, HeapGraph, InstanceKey, SolverConfig};

fn chain_program() -> (jir::Program, taj_pointer::PointsTo) {
    let src = r#"
        class L3 { ctor () { } }
        class L2 { field L3 c; ctor (L3 c) { this.c = c; } }
        class L1 { field L2 c; ctor (L2 c) { this.c = c; } }
        class Main {
            static method void main() {
                L3 l3 = new L3();
                L2 l2 = new L2(l3);
                L1 l1 = new L1(l2);
            }
        }
    "#;
    let mut p = jir::frontend::build_program(src).unwrap();
    let c = p.class_by_name("Main").unwrap();
    p.entrypoints.push(p.method_by_name(c, "main").unwrap());
    let pts = analyze(&p, &SolverConfig::default());
    (p, pts)
}

fn alloc_of(p: &jir::Program, pts: &taj_pointer::PointsTo, class: &str) -> u32 {
    let cid = p.class_by_name(class).unwrap();
    pts.iter_instance_keys()
        .find_map(|(id, k)| match k {
            InstanceKey::Alloc { class, .. } if *class == cid => Some(id.0),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no allocation of {class}"))
}

#[test]
fn reachability_unfolds_one_level_per_depth() {
    let (p, pts) = chain_program();
    let hg = HeapGraph::build(&pts);
    let l1 = alloc_of(&p, &pts, "L1");
    let l2 = alloc_of(&p, &pts, "L2");
    let l3 = alloc_of(&p, &pts, "L3");
    let roots: BitSet = [l1].into_iter().collect();

    let d0 = hg.reachable(&roots, Some(0));
    assert!(d0.contains(l1) && !d0.contains(l2) && !d0.contains(l3));

    let d1 = hg.reachable(&roots, Some(1));
    assert!(d1.contains(l1) && d1.contains(l2) && !d1.contains(l3));

    let d2 = hg.reachable(&roots, Some(2));
    assert!(d2.contains(l1) && d2.contains(l2) && d2.contains(l3));

    let unbounded = hg.reachable(&roots, None);
    assert_eq!(unbounded.len(), 3);
}

#[test]
fn reachability_is_monotone_in_depth() {
    let (_p, pts) = chain_program();
    let hg = HeapGraph::build(&pts);
    let roots: BitSet = pts.iter_instance_keys().map(|(id, _)| id.0).collect();
    let mut prev = hg.reachable(&roots, Some(0));
    for d in 1..5 {
        let cur = hg.reachable(&roots, Some(d));
        assert!(prev.is_subset(&cur), "depth {d} shrank the set");
        prev = cur;
    }
}

#[test]
fn cyclic_structures_terminate() {
    let src = r#"
        class Node { field Node next; ctor () { } }
        class Main {
            static method void main() {
                Node a = new Node();
                Node b = new Node();
                a.next = b;
                b.next = a;
            }
        }
    "#;
    let mut p = jir::frontend::build_program(src).unwrap();
    let c = p.class_by_name("Main").unwrap();
    p.entrypoints.push(p.method_by_name(c, "main").unwrap());
    let pts = analyze(&p, &SolverConfig::default());
    let hg = HeapGraph::build(&pts);
    let roots: BitSet = [alloc_of(&p, &pts, "Node")].into_iter().collect();
    let all = hg.reachable(&roots, None);
    assert!(all.len() >= 2, "both nodes reachable through the cycle");
}

#[test]
fn succs_follow_fields_and_arrays() {
    let src = r#"
        class Item { ctor () { } }
        class Main {
            static method void main() {
                Item[] arr = new Item[1];
                arr[0] = new Item();
            }
        }
    "#;
    let mut p = jir::frontend::build_program(src).unwrap();
    let c = p.class_by_name("Main").unwrap();
    p.entrypoints.push(p.method_by_name(c, "main").unwrap());
    let pts = analyze(&p, &SolverConfig::default());
    let hg = HeapGraph::build(&pts);
    let arr_ik = pts
        .iter_instance_keys()
        .find_map(|(id, k)| matches!(k, InstanceKey::AllocArray { .. }).then_some(id.0))
        .expect("array allocated");
    let item = alloc_of(&p, &pts, "Item");
    let roots: BitSet = [arr_ik].into_iter().collect();
    let d1 = hg.reachable(&roots, Some(1));
    assert!(d1.contains(item), "array contents are one dereference away");
}
