//! Integration tests for the pointer analysis: dispatch, heap flow,
//! contexts, reflection, exceptions, and budgets.

use taj_pointer::{analyze, InstanceKey, PointsTo, SolverConfig};

fn build(src: &str, entry: (&str, &str)) -> (jir::Program, PointsTo) {
    let mut p = jir::frontend::build_program(src).expect("program builds");
    let c = p.class_by_name(entry.0).expect("entry class");
    let m = p.method_by_name(c, entry.1).expect("entry method");
    p.entrypoints.push(m);
    let pts = analyze(&p, &SolverConfig::default());
    (p, pts)
}

/// Instance keys in `set` rendered as class names, for readable asserts.
fn classes_of(p: &jir::Program, pts: &PointsTo, set: &jir::util::BitSet) -> Vec<String> {
    let mut v: Vec<String> = set
        .iter()
        .map(|raw| match pts.instance_key(taj_pointer::InstanceKeyId(raw)) {
            InstanceKey::Alloc { class, .. } => p.class(*class).name.clone(),
            InstanceKey::AllocArray { .. } => "<array>".into(),
            InstanceKey::ClassObj(c) => format!("Class<{}>", p.class(*c).name),
            InstanceKey::MethodObj(_, m) => format!("Method<{}>", p.method(*m).name),
            InstanceKey::MethodArray(_) => "Method[]".into(),
            InstanceKey::Synthetic { class, .. } => format!("Syn<{}>", p.class(*class).name),
        })
        .collect();
    v.sort();
    v
}

/// Looks up the points-to set of a local in some node of `method`,
/// identified by the variable holding the result of the statement matching
/// `pred`.
fn local_pts_where<'a>(
    p: &jir::Program,
    pts: &'a PointsTo,
    class: &str,
    method: &str,
    pick: impl Fn(&jir::Inst) -> Option<jir::Var>,
) -> Option<&'a jir::util::BitSet> {
    let c = p.class_by_name(class)?;
    let m = p.method_by_name(c, method)?;
    let body = p.method(m).body()?;
    let var = body.blocks.iter().flat_map(|b| &b.insts).find_map(&pick)?;
    for node in pts.callgraph.nodes_of_method(m) {
        if let Some(set) = pts.local(node, var) {
            if !set.is_empty() {
                return Some(set);
            }
        }
    }
    None
}

#[test]
fn allocation_flows_to_local() {
    let (p, pts) = build(
        r#"
        class Main {
            static method void main() { Object o = new Object(); }
        }
        "#,
        ("Main", "main"),
    );
    let set = local_pts_where(&p, &pts, "Main", "main", |i| match i {
        jir::Inst::New { dst, .. } => Some(*dst),
        _ => None,
    })
    .expect("allocation recorded");
    assert_eq!(classes_of(&p, &pts, set), vec!["Object"]);
}

#[test]
fn virtual_dispatch_reaches_override() {
    let (p, pts) = build(
        r#"
        class Animal { method Object speak() { return new Object(); } }
        class Dog extends Animal { method Object speak() { return this; } }
        class Main {
            static method void main() {
                Animal a = new Dog();
                Object r = a.speak();
            }
        }
        "#,
        ("Main", "main"),
    );
    let dog = p.class_by_name("Dog").unwrap();
    let speak_dog = p.method_by_name(dog, "speak").unwrap();
    assert!(!pts.callgraph.nodes_of_method(speak_dog).is_empty(), "Dog.speak must be reachable");
    // And Animal.speak must NOT be invoked (receiver is exactly a Dog).
    let animal = p.class_by_name("Animal").unwrap();
    let speak_animal =
        p.class(animal).methods.iter().copied().find(|&m| p.method(m).name == "speak").unwrap();
    assert!(
        pts.callgraph.nodes_of_method(speak_animal).is_empty(),
        "precise dispatch: Animal.speak unreachable"
    );
}

#[test]
fn field_store_load_flow() {
    let (p, pts) = build(
        r#"
        class Box { field Object v; ctor (Object v) { this.v = v; } method Object get() { return this.v; } }
        class Main {
            static method void main() {
                Box b = new Box(new Object());
                Object r = b.get();
            }
        }
        "#,
        ("Main", "main"),
    );
    let set = local_pts_where(&p, &pts, "Main", "main", |i| match i {
        jir::Inst::Call { dst: Some(d), target: jir::CallTarget::Virtual(_), .. } => Some(*d),
        _ => None,
    })
    .expect("get() result has points-to");
    assert_eq!(classes_of(&p, &pts, set), vec!["Object"]);
}

#[test]
fn two_boxes_do_not_merge() {
    // 1-object-sensitivity: each Box constructor clone keeps its own field.
    let (p, pts) = build(
        r#"
        class A { }
        class B { }
        class Box { field Object v; ctor (Object v) { this.v = v; } method Object get() { return this.v; } }
        class Main {
            static method void main() {
                Box b1 = new Box(new A());
                Box b2 = new Box(new B());
                Object r1 = b1.get();
                Object r2 = b2.get();
            }
        }
        "#,
        ("Main", "main"),
    );
    // Find both call results in main.
    let c = p.class_by_name("Main").unwrap();
    let m = p.method_by_name(c, "main").unwrap();
    let body = p.method(m).body().unwrap();
    let results: Vec<jir::Var> = body
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter_map(|i| match i {
            jir::Inst::Call { dst: Some(d), target: jir::CallTarget::Virtual(_), .. } => Some(*d),
            _ => None,
        })
        .collect();
    assert_eq!(results.len(), 2);
    let node = pts.callgraph.nodes_of_method(m)[0];
    let r1 = classes_of(&p, &pts, pts.local(node, results[0]).unwrap());
    let r2 = classes_of(&p, &pts, pts.local(node, results[1]).unwrap());
    assert_eq!(r1, vec!["A"], "b1.get() sees only A");
    assert_eq!(r2, vec!["B"], "b2.get() sees only B");
}

#[test]
fn cast_filters_instances() {
    let (p, pts) = build(
        r#"
        class A { }
        class B { }
        class Main {
            static method void main() {
                Object o = pick();
                A a = (A) o;
            }
            static method Object pick() { return new A(); }
        }
        class Main2 {
            static method Object both() { return new B(); }
        }
        "#,
        ("Main", "main"),
    );
    let set = local_pts_where(&p, &pts, "Main", "main", |i| match i {
        jir::Inst::Assign { dst, filter: Some(jir::Filter::InstanceOf(_)), .. } => Some(*dst),
        _ => None,
    })
    .expect("cast result");
    assert_eq!(classes_of(&p, &pts, set), vec!["A"]);
}

#[test]
fn map_keys_disambiguate() {
    let (p, pts) = build(
        r#"
        class A { }
        class B { }
        class Main {
            static method void main() {
                HashMap m = new HashMap();
                m.put("a", new A());
                m.put("b", new B());
                Object ra = m.get("a");
                Object rb = m.get("b");
            }
        }
        "#,
        ("Main", "main"),
    );
    let c = p.class_by_name("Main").unwrap();
    let m = p.method_by_name(c, "main").unwrap();
    let body = p.method(m).body().unwrap();
    // After expansion, the gets became Select instructions.
    let selects: Vec<jir::Var> = body
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter_map(|i| match i {
            jir::Inst::Select { dst, .. } => Some(*dst),
            _ => None,
        })
        .collect();
    assert_eq!(selects.len(), 2, "two expanded map reads");
    let node = pts.callgraph.nodes_of_method(m)[0];
    let ra = classes_of(&p, &pts, pts.local(node, selects[0]).unwrap());
    let rb = classes_of(&p, &pts, pts.local(node, selects[1]).unwrap());
    assert_eq!(ra, vec!["A"], "get(\"a\") only sees A");
    assert_eq!(rb, vec!["B"], "get(\"b\") only sees B");
}

#[test]
fn reflection_resolves_constant_forname() {
    let (p, pts) = build(
        r#"
        class Target { method Object id(Object x) { return x; } }
        class Main {
            static method void main() {
                Class k = Class.forName("Target");
                Object t = k.newInstance();
            }
        }
        "#,
        ("Main", "main"),
    );
    let set = local_pts_where(&p, &pts, "Main", "main", |i| match i {
        jir::Inst::Call { dst: Some(d), target: jir::CallTarget::Virtual(sel), .. }
            if p.resolve_selector(*sel).name == "newInstance" =>
        {
            Some(*d)
        }
        _ => None,
    })
    .expect("newInstance result");
    assert_eq!(classes_of(&p, &pts, set), vec!["Target"]);
}

#[test]
fn reflective_invoke_dispatches() {
    let (p, pts) = build(
        r#"
        class Target {
            method Object id(Object x) { return x; }
        }
        class Main {
            static method void main() {
                Class k = Class.forName("Target");
                Method m = k.getMethod("id");
                Target t = new Target();
                Object arg = new Object();
                Object r = m.invoke(t, new Object[] { arg });
            }
        }
        "#,
        ("Main", "main"),
    );
    let target = p.class_by_name("Target").unwrap();
    let id = p.method_by_name(target, "id").unwrap();
    assert!(!pts.callgraph.nodes_of_method(id).is_empty(), "id reachable via invoke");
    // The invoke result aliases the argument.
    let set = local_pts_where(&p, &pts, "Main", "main", |i| match i {
        jir::Inst::Call { dst: Some(d), target: jir::CallTarget::Virtual(sel), .. }
            if p.resolve_selector(*sel).name == "invoke" =>
        {
            Some(*d)
        }
        _ => None,
    })
    .expect("invoke result");
    assert_eq!(classes_of(&p, &pts, set), vec!["Object"]);
}

#[test]
fn getmethods_loop_with_narrowing() {
    // The motivating-example pattern: enumerate methods, pick by name.
    let (p, pts) = build(
        r#"
        class Target {
            method Object id(Object x) { return x; }
            method Object other(Object x) { return new Object(); }
        }
        class Main {
            static method void main() {
                Class k = Class.forName("Target");
                Method[] methods = k.getMethods();
                Method idm = null;
                for (int i = 0; i < methods.length; i = i + 1) {
                    Method m = methods[i];
                    if (m.getName().equals("id")) { idm = m; }
                }
                Target t = new Target();
                Object r = idm.invoke(t, new Object[] { new Object() });
            }
        }
        "#,
        ("Main", "main"),
    );
    let target = p.class_by_name("Target").unwrap();
    let id = p.method_by_name(target, "id").unwrap();
    let other = p.method_by_name(target, "other").unwrap();
    assert!(!pts.callgraph.nodes_of_method(id).is_empty(), "id invoked");
    assert!(
        pts.callgraph.nodes_of_method(other).is_empty(),
        "narrowing filter keeps `other` out of the call graph"
    );
}

#[test]
fn exceptions_flow_to_catch() {
    let (p, pts) = build(
        r#"
        class Main {
            static method void main() {
                try { Main.boom(); } catch (Exception e) { Object o = e; }
            }
            static method void boom() { throw new RuntimeException("x"); }
        }
        "#,
        ("Main", "main"),
    );
    let set = local_pts_where(&p, &pts, "Main", "main", |i| match i {
        jir::Inst::CatchBind { dst, .. } => Some(*dst),
        _ => None,
    })
    .expect("caught exception has points-to");
    assert_eq!(classes_of(&p, &pts, set), vec!["RuntimeException"]);
}

#[test]
fn thread_start_reaches_run() {
    let (p, pts) = build(
        r#"
        class Worker implements Runnable {
            ctor () { }
            method void run() { Object o = new Object(); }
        }
        class Main {
            static method void main() {
                Thread t = new Thread(new Worker());
                t.start();
            }
        }
        "#,
        ("Main", "main"),
    );
    let worker = p.class_by_name("Worker").unwrap();
    let run = p.method_by_name(worker, "run").unwrap();
    assert!(
        !pts.callgraph.nodes_of_method(run).is_empty(),
        "Thread.start must reach Worker.run (via Thread.run -> target.run())"
    );
}

#[test]
fn node_budget_underapproximates() {
    let src = r#"
        class Chain {
            static method void main() { Chain.a(); }
            static method void a() { Chain.b(); }
            static method void b() { Chain.c(); }
            static method void c() { Chain.d(); }
            static method void d() { Object o = new Object(); }
        }
    "#;
    let mut p = jir::frontend::build_program(src).unwrap();
    let c = p.class_by_name("Chain").unwrap();
    p.entrypoints.push(p.method_by_name(c, "main").unwrap());
    let full = analyze(&p, &SolverConfig::default());
    let bounded = analyze(&p, &SolverConfig { max_cg_nodes: Some(2), ..Default::default() });
    assert!(full.stats.nodes > bounded.stats.nodes);
    assert!(bounded.budget_exhausted);
    assert!(!full.budget_exhausted);
}

#[test]
fn priority_mode_matches_fifo_when_unbounded() {
    let src = r#"
        class Main {
            static method void main() {
                Box b = new Box(new Object());
                Object r = b.get();
            }
        }
        class Box { field Object v; ctor (Object v) { this.v = v; } method Object get() { return this.v; } }
    "#;
    let mut p = jir::frontend::build_program(src).unwrap();
    let c = p.class_by_name("Main").unwrap();
    p.entrypoints.push(p.method_by_name(c, "main").unwrap());
    let fifo = analyze(&p, &SolverConfig::default());
    let prio = analyze(&p, &SolverConfig { priority: true, ..Default::default() });
    assert_eq!(fifo.stats.nodes, prio.stats.nodes, "order must not change the fixpoint");
    assert_eq!(fifo.stats.pts_entries, prio.stats.pts_entries);
}

#[test]
fn session_attribute_flow_through_request() {
    let (p, pts) = build(
        r#"
        class A { }
        class Main {
            static method void main() {
                HttpServletRequest req = new HttpServletRequest();
                HttpSession s1 = req.getSession();
                HttpSession s2 = req.getSession();
                s1.setAttribute("k", new A());
                Object r = s2.getAttribute("k");
            }
        }
        "#,
        ("Main", "main"),
    );
    let set = local_pts_where(&p, &pts, "Main", "main", |i| match i {
        jir::Inst::Select { dst, .. } => Some(*dst),
        _ => None,
    })
    .expect("attribute read");
    assert_eq!(
        classes_of(&p, &pts, set),
        vec!["A"],
        "both getSession() calls must return the same session object"
    );
}
