//! The Andersen-style, context-sensitive, field-sensitive pointer analysis
//! with on-the-fly call-graph construction (§3.1), including the
//! priority-driven bounded construction mode (§6.1).
//!
//! The solver alternates two phases, exactly as the paper describes:
//! **constraint adding** introduces the constraints of one pending
//! call-graph node (chosen FIFO, or by the taint-locality priority policy),
//! and **constraint solving** runs difference propagation to a fixpoint,
//! which may discover new reachable nodes.

use std::collections::{HashMap, HashSet, VecDeque};

use jir::inst::{CallTarget, ConstValue, Filter, Inst, Loc, Terminator, Var};
use jir::method::Intrinsic;
use jir::util::{BitSet, Interner};
use jir::{FieldId, MethodId, Program};
use taj_supervise::{InterruptReason, Supervisor};

use crate::callgraph::{CGNodeId, CallEdge, CallGraph};
use crate::context::{ContextChoice, ContextElem, ContextId, PolicyConfig, ROOT_CONTEXT};
use crate::keys::{InstanceKey, InstanceKeyId, PointerKey, PointerKeyId, Site};
use crate::priority::NodeQueue;

/// Solver configuration.
#[derive(Clone, Debug, Default)]
pub struct SolverConfig {
    /// Context policy inputs (taint-relevant APIs).
    pub policy: PolicyConfig,
    /// Node budget: stop *adding* call-graph nodes beyond this bound,
    /// yielding an under-approximate call graph (§6.1).
    pub max_cg_nodes: Option<usize>,
    /// Enable priority-driven constraint adding (§6.1). Requires
    /// `source_methods` for the initial priority assignment.
    pub priority: bool,
    /// Methods considered taint sources (π = 0 seeds of the priority
    /// scheme).
    pub source_methods: HashSet<MethodId>,
    /// Cooperative supervision handle, checked at both fixpoint loops.
    /// The default is unbounded, so unsupervised callers never trip.
    pub supervisor: Supervisor,
}

/// Aggregate statistics of one solver run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Call-graph nodes created.
    pub nodes: usize,
    /// Call edges (to analyzable bodies).
    pub call_edges: usize,
    /// Distinct pointer keys.
    pub pointer_keys: usize,
    /// Distinct instance keys.
    pub instance_keys: usize,
    /// Total points-to set cardinality.
    pub pts_entries: usize,
    /// Difference-propagation steps executed.
    pub propagations: usize,
    /// Nodes whose constraints were never added because the budget ran out.
    pub nodes_dropped: usize,
    /// Distinct calling contexts interned (receiver/site elements).
    pub contexts: usize,
}

/// Record of a reflective `Method.invoke` binding, used by the SDG to model
/// dataflow from the argument array into the callee's parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvokeBinding {
    /// Node containing the `invoke` call.
    pub caller: CGNodeId,
    /// Location of the call.
    pub loc: Loc,
    /// Register holding the `Object[]` argument array.
    pub arg_array: Var,
    /// Target node entered by the reflective dispatch.
    pub callee: CGNodeId,
}

/// The result of pointer analysis: call graph, points-to sets, and the
/// indices downstream phases need.
#[derive(Debug)]
pub struct PointsTo {
    /// The context-qualified call graph.
    pub callgraph: CallGraph,
    /// Statistics.
    pub stats: SolverStats,
    /// Whether the node budget was exhausted (result is under-approximate).
    pub budget_exhausted: bool,
    /// Why the solver stopped early, if it was interrupted by its
    /// supervisor. The call graph and points-to sets are still
    /// internally consistent, just under-approximate — the same shape
    /// as a `max_cg_nodes` truncation.
    pub interrupted: Option<InterruptReason>,
    /// Reflective invoke bindings for SDG construction.
    pub invoke_bindings: Vec<InvokeBinding>,
    pub(crate) ikeys: Interner<InstanceKey>,
    pub(crate) pkeys: Interner<PointerKey>,
    pub(crate) pts: Vec<BitSet>,
    /// Per call site, intrinsic callees `(method, intrinsic)` resolved
    /// there (body callees live in the call graph instead).
    pub(crate) intrinsic_targets: HashMap<(CGNodeId, Loc), Vec<(MethodId, Intrinsic)>>,
}

impl PointsTo {
    /// The points-to set of `key`, if the key ever arose.
    pub fn pts_of(&self, key: &PointerKey) -> Option<&BitSet> {
        // PointerKey is Copy-able and hashable; clone for lookup.
        self.pkeys.lookup(key).map(|id| &self.pts[id as usize])
    }

    /// The points-to set of a local register in a node.
    pub fn local(&self, node: CGNodeId, var: Var) -> Option<&BitSet> {
        self.pts_of(&PointerKey::Local { node, var })
    }

    /// The points-to set of an instance field.
    pub fn field_pts(&self, ik: InstanceKeyId, field: FieldId) -> Option<&BitSet> {
        self.pts_of(&PointerKey::Field { ik, field })
    }

    /// The points-to set of array contents.
    pub fn array_pts(&self, ik: InstanceKeyId) -> Option<&BitSet> {
        self.pts_of(&PointerKey::ArrayElem(ik))
    }

    /// Resolves an instance-key id.
    pub fn instance_key(&self, id: InstanceKeyId) -> &InstanceKey {
        self.ikeys.resolve(id.0)
    }

    /// Number of distinct instance keys.
    pub fn num_instance_keys(&self) -> usize {
        self.ikeys.len()
    }

    /// Iterates `(id, key)` over instance keys.
    pub fn iter_instance_keys(&self) -> impl Iterator<Item = (InstanceKeyId, &InstanceKey)> {
        self.ikeys.iter().map(|(i, k)| (InstanceKeyId(i), k))
    }

    /// Iterates `(id, key, pts)` over all pointer keys.
    pub fn iter_pointer_keys(&self) -> impl Iterator<Item = (PointerKeyId, &PointerKey, &BitSet)> {
        self.pkeys.iter().map(|(i, k)| (PointerKeyId(i), k, &self.pts[i as usize]))
    }

    /// Intrinsic callees resolved at a call site.
    pub fn intrinsics_at(&self, node: CGNodeId, loc: Loc) -> &[(MethodId, Intrinsic)] {
        self.intrinsic_targets.get(&(node, loc)).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The solver's startup scan, separated out so incremental callers can
/// reconstruct it from cached per-method summaries instead of re-walking
/// every instruction (see `taj_core::summaries`).
///
/// The contents are **order-sensitive**: the vectors must list method ids
/// (resp. field ids) exactly as `PreScan::scan` produces them — methods in
/// table order, one entry per load/store occurrence in body order,
/// duplicates included — because they feed the §6.1 priority heuristic and
/// therefore node-exploration (and output) order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PreScan {
    /// field → methods containing loads of it (instance and static).
    pub field_loaders: HashMap<FieldId, Vec<MethodId>>,
    /// method → fields it stores (instance and static).
    pub method_stores: HashMap<MethodId, Vec<FieldId>>,
    /// Methods that generate taint: the sources themselves plus methods
    /// whose bodies call a source (the π = 0 seeds of §6.1).
    pub source_adjacent: std::collections::HashSet<MethodId>,
}

impl PreScan {
    /// Walks the whole program and builds the scan — the cold path, run
    /// by the solver's constructor when no reconstruction is supplied.
    pub fn scan(program: &Program, source_methods: &std::collections::HashSet<MethodId>) -> Self {
        // Static indices for the priority heuristic.
        let mut field_loaders: HashMap<FieldId, Vec<MethodId>> = HashMap::new();
        let mut method_stores: HashMap<MethodId, Vec<FieldId>> = HashMap::new();
        for (mid, m) in program.iter_methods() {
            let Some(body) = m.body() else { continue };
            for block in &body.blocks {
                for inst in &block.insts {
                    match inst {
                        Inst::Load { field, .. } | Inst::StaticLoad { field, .. } => {
                            field_loaders.entry(*field).or_default().push(mid);
                        }
                        Inst::Store { field, .. } | Inst::StaticStore { field, .. } => {
                            method_stores.entry(mid).or_default().push(*field);
                        }
                        _ => {}
                    }
                }
            }
        }
        // Methods containing calls to source methods (sources are usually
        // intrinsic models and never become call-graph nodes, so the seeds
        // are the nodes *containing* source calls).
        let source_selectors: Vec<(String, usize)> = source_methods
            .iter()
            .map(|&m| {
                let meth = program.method(m);
                (meth.name.clone(), meth.params.len())
            })
            .collect();
        let mut source_adjacent: std::collections::HashSet<MethodId> = source_methods.clone();
        for (mid, m) in program.iter_methods() {
            let Some(body) = m.body() else { continue };
            let calls_source = body.blocks.iter().flat_map(|b| &b.insts).any(|i| {
                if let Inst::Call { target, args, .. } = i {
                    match target {
                        jir::CallTarget::Static(t) | jir::CallTarget::Special(t) => {
                            source_methods.contains(t)
                        }
                        jir::CallTarget::Virtual(sel) => {
                            let s = program.resolve_selector(*sel);
                            let _ = args;
                            source_selectors.iter().any(|(n, a)| *n == s.name && *a == s.arity)
                        }
                    }
                } else {
                    false
                }
            });
            if calls_source {
                source_adjacent.insert(mid);
            }
        }
        PreScan { field_loaders, method_stores, source_adjacent }
    }
}

/// Runs pointer analysis over `program` starting from its entrypoints.
pub fn analyze(program: &Program, config: &SolverConfig) -> PointsTo {
    analyze_traced(program, config, &taj_obs::Recorder::disabled())
}

/// [`analyze`] under a tracing recorder: records a `phase1.solve` span
/// carrying the solver's aggregate statistics (worklist iterations,
/// contexts created, call-graph size, points-to entries). With a
/// disabled recorder this is exactly [`analyze`].
pub fn analyze_traced(
    program: &Program,
    config: &SolverConfig,
    recorder: &taj_obs::Recorder,
) -> PointsTo {
    analyze_inner(program, config, recorder, None)
}

/// [`analyze_traced`] with a pre-computed startup scan, the incremental
/// re-solving entry point: callers that hold per-method summaries for
/// `program` skip the instruction walk of [`PreScan::scan`]. The scan
/// must be *exactly* what `PreScan::scan` would produce (checked by a
/// `debug_assert`); everything downstream — worklist order, interning
/// order, output bytes — is identical to a cold [`analyze`].
pub fn analyze_prescanned(
    program: &Program,
    config: &SolverConfig,
    recorder: &taj_obs::Recorder,
    prescan: PreScan,
) -> PointsTo {
    debug_assert_eq!(
        prescan,
        PreScan::scan(program, &config.source_methods),
        "reconstructed PreScan diverges from the solver's own scan"
    );
    analyze_inner(program, config, recorder, Some(prescan))
}

fn analyze_inner(
    program: &Program,
    config: &SolverConfig,
    recorder: &taj_obs::Recorder,
    prescan: Option<PreScan>,
) -> PointsTo {
    let mut span = recorder.span("phase1.solve");
    let pts = Solver::new_with_prescan(program, config, prescan).run();
    if recorder.is_enabled() {
        span.attr("worklist_iterations", pts.stats.propagations);
        span.attr("contexts", pts.stats.contexts);
        span.attr("cg_nodes", pts.stats.nodes);
        span.attr("call_edges", pts.stats.call_edges);
        span.attr("pointer_keys", pts.stats.pointer_keys);
        span.attr("instance_keys", pts.stats.instance_keys);
        span.attr("pts_entries", pts.stats.pts_entries);
        span.attr("nodes_dropped", pts.stats.nodes_dropped);
        if let Some(reason) = pts.interrupted {
            span.attr("interrupted", reason.as_str());
        }
    }
    span.finish();
    pts
}

/// A complex (base-dependent) constraint, triggered as the base pointer
/// key's points-to set grows.
#[derive(Clone, Debug)]
enum Constraint {
    /// `dst = base.field`
    Load { field: FieldId, dst: PointerKeyId },
    /// `base.field = src`
    Store { field: FieldId, src: PointerKeyId },
    /// `dst = base[*]`
    ArrayLoad { dst: PointerKeyId },
    /// `base[*] = src`
    ArrayStore { src: PointerKeyId },
    /// A receiver-dispatched call (virtual, or special with receiver).
    Dispatch {
        node: CGNodeId,
        loc: Loc,
        /// Fixed target for special calls; `None` resolves per receiver.
        fixed: Option<MethodId>,
        sel: Option<jir::SelectorId>,
        recv: Var,
        args: Vec<Var>,
        dst: Option<Var>,
    },
    /// `Method.invoke` parameter binding: array contents → callee param.
    BindParams { callee: CGNodeId, nparams: usize },
}

struct Solver<'p> {
    program: &'p Program,
    config: &'p SolverConfig,
    contexts: Interner<Vec<ContextElem>>,
    node_ids: Interner<(MethodId, ContextId)>,
    ikeys: Interner<InstanceKey>,
    pkeys: Interner<PointerKey>,
    pts: Vec<BitSet>,
    delta: Vec<BitSet>,
    copy_out: Vec<Vec<(PointerKeyId, Option<Filter>)>>,
    base_deps: Vec<Vec<Constraint>>,
    wl: VecDeque<PointerKeyId>,
    on_wl: Vec<bool>,
    pending: NodeQueue,
    added: Vec<bool>,
    call_edges: Vec<CallEdge>,
    edge_seen: HashSet<(CGNodeId, Loc, CGNodeId)>,
    site_once: HashSet<(CGNodeId, Loc, u64)>,
    intrinsic_targets: HashMap<(CGNodeId, Loc), Vec<(MethodId, Intrinsic)>>,
    invoke_bindings: Vec<InvokeBinding>,
    entry_nodes: Vec<CGNodeId>,
    budget_exhausted: bool,
    interrupted: Option<InterruptReason>,
    nodes_dropped: usize,
    propagations: usize,
    /// Cached per-(node, block) exception targets.
    exc_targets: HashMap<(CGNodeId, jir::BlockId), (PointerKeyId, Option<Filter>)>,
    /// field → methods containing loads of it (for the §6.1 Tn heap match).
    field_loaders: HashMap<FieldId, Vec<MethodId>>,
    /// method → fields it stores (for Tn).
    method_stores: HashMap<MethodId, Vec<FieldId>>,
    /// Methods that generate taint: the sources themselves plus methods
    /// whose bodies call a source (sources are usually intrinsic models
    /// and never become call-graph nodes, so the π = 0 seeds of §6.1 are
    /// the nodes *containing* source calls).
    source_adjacent: std::collections::HashSet<MethodId>,
}

impl<'p> Solver<'p> {
    fn new_with_prescan(
        program: &'p Program,
        config: &'p SolverConfig,
        prescan: Option<PreScan>,
    ) -> Self {
        let mut contexts = Interner::new();
        let root = contexts.intern(Vec::new());
        debug_assert_eq!(ContextId(root), ROOT_CONTEXT);
        let PreScan { field_loaders, method_stores, source_adjacent } =
            prescan.unwrap_or_else(|| PreScan::scan(program, &config.source_methods));
        let max = config.max_cg_nodes.unwrap_or(usize::MAX);
        Solver {
            program,
            config,
            contexts,
            node_ids: Interner::new(),
            ikeys: Interner::new(),
            pkeys: Interner::new(),
            pts: Vec::new(),
            delta: Vec::new(),
            copy_out: Vec::new(),
            base_deps: Vec::new(),
            wl: VecDeque::new(),
            on_wl: Vec::new(),
            pending: NodeQueue::new(config.priority, max),
            added: Vec::new(),
            call_edges: Vec::new(),
            edge_seen: HashSet::new(),
            site_once: HashSet::new(),
            intrinsic_targets: HashMap::new(),
            invoke_bindings: Vec::new(),
            entry_nodes: Vec::new(),
            budget_exhausted: false,
            interrupted: None,
            nodes_dropped: 0,
            propagations: 0,
            exc_targets: HashMap::new(),
            field_loaders,
            method_stores,
            source_adjacent,
        }
    }

    fn run(mut self) -> PointsTo {
        for &e in &self.program.entrypoints.clone() {
            if let Some(n) = self.ensure_node(e, ROOT_CONTEXT) {
                // Entrypoints are the roots of exploration: give them top
                // priority so every servlet's lifecycle methods are at
                // least *created* (and can then compete on their own π).
                self.pending.lower_priority(n, 0);
                self.entry_nodes.push(n);
            }
        }
        // Main §6.1 loop: add constraints for one node, then solve.
        // A supervisor interrupt stops between nodes (or mid-propagation,
        // via the check inside `solve`), leaving the same consistent
        // under-approximation a `max_cg_nodes` truncation would.
        while let Some(node) = self.pending.pop() {
            if let Err(reason) = self.config.supervisor.check("pointer.run.node") {
                self.interrupted = Some(reason);
                break;
            }
            self.add_node_constraints(node);
            if self.config.priority {
                self.update_neighborhood_priorities(node);
            }
            self.solve();
            if self.interrupted.is_some() {
                break;
            }
        }
        let nodes: Vec<(MethodId, ContextId)> =
            self.node_ids.iter().map(|(_, &(m, c))| (m, c)).collect();
        let stats = SolverStats {
            nodes: nodes.len(),
            call_edges: self.call_edges.len(),
            pointer_keys: self.pkeys.len(),
            instance_keys: self.ikeys.len(),
            pts_entries: self.pts.iter().map(BitSet::len).sum(),
            propagations: self.propagations,
            nodes_dropped: self.nodes_dropped,
            contexts: self.contexts.len(),
        };
        let callgraph = CallGraph::from_parts(nodes, self.call_edges, self.entry_nodes);
        PointsTo {
            callgraph,
            stats,
            budget_exhausted: self.budget_exhausted,
            interrupted: self.interrupted,
            invoke_bindings: self.invoke_bindings,
            ikeys: self.ikeys,
            pkeys: self.pkeys,
            pts: self.pts,
            intrinsic_targets: self.intrinsic_targets,
        }
    }

    // ---- interning helpers ----

    fn pkey(&mut self, key: PointerKey) -> PointerKeyId {
        let id = self.pkeys.intern(key);
        if id as usize >= self.pts.len() {
            self.pts.push(BitSet::new());
            self.delta.push(BitSet::new());
            self.copy_out.push(Vec::new());
            self.base_deps.push(Vec::new());
            self.on_wl.push(false);
        }
        PointerKeyId(id)
    }

    fn ikey(&mut self, key: InstanceKey) -> InstanceKeyId {
        InstanceKeyId(self.ikeys.intern(key))
    }

    fn local(&mut self, node: CGNodeId, var: Var) -> PointerKeyId {
        self.pkey(PointerKey::Local { node, var })
    }

    /// Creates (or finds) the node for `(method, ctx)`, respecting the node
    /// budget. Returns `None` when the budget is exhausted and the node is
    /// new.
    fn ensure_node(&mut self, method: MethodId, ctx: ContextId) -> Option<CGNodeId> {
        if let Some(id) = self.node_ids.lookup(&(method, ctx)) {
            return Some(CGNodeId(id));
        }
        if let Some(max) = self.config.max_cg_nodes {
            if self.node_ids.len() >= max {
                self.budget_exhausted = true;
                self.nodes_dropped += 1;
                return None;
            }
        }
        let id = CGNodeId(self.node_ids.intern((method, ctx)));
        self.added.push(false);
        let is_source = self.source_adjacent.contains(&method);
        self.pending.push(id, is_source);
        Some(id)
    }

    // ---- propagation machinery ----

    fn add_to_pts(&mut self, key: PointerKeyId, ik: InstanceKeyId) {
        if self.pts[key.index()].insert(ik.0) {
            self.delta[key.index()].insert(ik.0);
            self.enqueue(key);
        }
    }

    fn enqueue(&mut self, key: PointerKeyId) {
        if !self.on_wl[key.index()] {
            self.on_wl[key.index()] = true;
            self.wl.push_back(key);
        }
    }

    fn add_copy(&mut self, from: PointerKeyId, to: PointerKeyId, filter: Option<Filter>) {
        if from == to {
            return;
        }
        if self.copy_out[from.index()].iter().any(|(t, f)| *t == to && *f == filter) {
            return;
        }
        self.copy_out[from.index()].push((to, filter.clone()));
        // Seed with the current points-to set.
        let current: Vec<u32> = self.pts[from.index()].iter().collect();
        self.flow(&current, to, &filter);
    }

    fn flow(&mut self, iks: &[u32], to: PointerKeyId, filter: &Option<Filter>) {
        for &raw in iks {
            let passes = match filter {
                None => true,
                Some(f) => {
                    let ik = self.ikeys.resolve(raw).clone();
                    ik.passes(self.program, f)
                }
            };
            if passes {
                self.add_to_pts(to, InstanceKeyId(raw));
            }
            self.propagations += 1;
        }
    }

    fn register_constraint(&mut self, base: PointerKeyId, c: Constraint) {
        self.base_deps[base.index()].push(c.clone());
        let current: Vec<u32> = self.pts[base.index()].iter().collect();
        if !current.is_empty() {
            self.process_constraint(base, &c, &current);
        }
    }

    fn solve(&mut self) {
        while let Some(p) = self.wl.pop_front() {
            if self.interrupted.is_none() {
                if let Err(reason) = self.config.supervisor.check("pointer.solve") {
                    self.interrupted = Some(reason);
                }
            }
            if self.interrupted.is_some() {
                // Drain the worklist without doing further propagation so
                // the `on_wl` bookkeeping stays consistent.
                self.on_wl[p.index()] = false;
                continue;
            }
            self.on_wl[p.index()] = false;
            let d: Vec<u32> = std::mem::take(&mut self.delta[p.index()]).iter().collect();
            if d.is_empty() {
                continue;
            }
            let copies = self.copy_out[p.index()].clone();
            for (to, filter) in copies {
                self.flow(&d, to, &filter);
            }
            let deps = self.base_deps[p.index()].clone();
            for c in deps {
                self.process_constraint(p, &c, &d);
            }
        }
    }

    fn process_constraint(&mut self, _base: PointerKeyId, c: &Constraint, new_iks: &[u32]) {
        match c {
            Constraint::Load { field, dst } => {
                for &raw in new_iks {
                    let fk = self.pkey(PointerKey::Field { ik: InstanceKeyId(raw), field: *field });
                    self.add_copy(fk, *dst, None);
                }
            }
            Constraint::Store { field, src } => {
                for &raw in new_iks {
                    let fk = self.pkey(PointerKey::Field { ik: InstanceKeyId(raw), field: *field });
                    self.add_copy(*src, fk, None);
                }
            }
            Constraint::ArrayLoad { dst } => {
                for &raw in new_iks {
                    let ak = self.pkey(PointerKey::ArrayElem(InstanceKeyId(raw)));
                    self.add_copy(ak, *dst, None);
                }
            }
            Constraint::ArrayStore { src } => {
                for &raw in new_iks {
                    let ak = self.pkey(PointerKey::ArrayElem(InstanceKeyId(raw)));
                    self.add_copy(*src, ak, None);
                }
            }
            Constraint::Dispatch { node, loc, fixed, sel, recv, args, dst } => {
                for &raw in new_iks {
                    self.dispatch_one(
                        *node,
                        *loc,
                        *fixed,
                        *sel,
                        *recv,
                        args,
                        *dst,
                        InstanceKeyId(raw),
                    );
                }
            }
            Constraint::BindParams { callee, nparams } => {
                // Arg-array contents flow into every parameter (reflective
                // invoke loses positions; real arities are 1 in practice).
                for &raw in new_iks {
                    let ak = self.pkey(PointerKey::ArrayElem(InstanceKeyId(raw)));
                    let callee_method = self.node_method(*callee);
                    let m = self.program.method(callee_method);
                    let recv_offset = usize::from(!m.is_static);
                    for i in 0..*nparams {
                        let pk = self.local(*callee, Var((i + recv_offset) as u32));
                        self.add_copy(ak, pk, None);
                    }
                }
            }
        }
    }

    fn node_method(&self, node: CGNodeId) -> MethodId {
        self.node_ids.resolve(node.0).0
    }

    fn node_ctx(&self, node: CGNodeId) -> ContextId {
        self.node_ids.resolve(node.0).1
    }

    // ---- constraint adding (one node) ----

    fn add_node_constraints(&mut self, node: CGNodeId) {
        if self.added[node.index()] {
            return;
        }
        self.added[node.index()] = true;
        let method = self.node_method(node);
        let m = self.program.method(method);
        let Some(body) = m.body() else { return };
        let body = body.clone(); // detach from &self.program borrow

        for (bid, block) in body.iter_blocks() {
            let exc_target = self.exc_target_of(node, &body, bid);
            for (i, inst) in block.insts.iter().enumerate() {
                let loc = Loc::new(bid, i);
                self.add_inst_constraints(node, method, loc, inst, &exc_target);
            }
            match &block.term {
                Terminator::Return(Some(v)) => {
                    let from = self.local(node, *v);
                    let ret = self.pkey(PointerKey::Ret(node));
                    self.add_copy(from, ret, None);
                }
                Terminator::Throw(v) => {
                    let from = self.local(node, *v);
                    let (target, filter) = exc_target.clone();
                    self.add_copy(from, target, filter);
                }
                _ => {}
            }
        }
    }

    /// Where exceptions raised in `block` go: the handler's catch binder
    /// (with its class filter) or the node's exceptional escape.
    fn exc_target_of(
        &mut self,
        node: CGNodeId,
        body: &jir::Body,
        block: jir::BlockId,
    ) -> (PointerKeyId, Option<Filter>) {
        if let Some(t) = self.exc_targets.get(&(node, block)) {
            return t.clone();
        }
        let computed = self.compute_exc_target(node, body, block);
        self.exc_targets.insert((node, block), computed.clone());
        computed
    }

    fn compute_exc_target(
        &mut self,
        node: CGNodeId,
        body: &jir::Body,
        block: jir::BlockId,
    ) -> (PointerKeyId, Option<Filter>) {
        if let Some(h) = body.blocks[block.index()].handler {
            for inst in &body.blocks[h.index()].insts {
                if let Inst::CatchBind { dst, class } = inst {
                    let pk = self.local(node, *dst);
                    return (pk, Some(Filter::InstanceOf(*class)));
                }
            }
        }
        (self.pkey(PointerKey::Exc(node)), None)
    }

    #[allow(clippy::too_many_arguments)]
    fn add_inst_constraints(
        &mut self,
        node: CGNodeId,
        method: MethodId,
        loc: Loc,
        inst: &Inst,
        exc_target: &(PointerKeyId, Option<Filter>),
    ) {
        match inst {
            Inst::New { dst, class } => {
                let ik = self.alloc_key(node, method, loc, *class);
                let d = self.local(node, *dst);
                self.add_to_pts(d, ik);
            }
            Inst::NewArray { dst, elem } => {
                let ik =
                    self.ikey(InstanceKey::AllocArray { site: Site { method, loc }, elem: *elem });
                let d = self.local(node, *dst);
                self.add_to_pts(d, ik);
            }
            Inst::Const { dst, value: ConstValue::ClassLit(c) } => {
                let ik = self.ikey(InstanceKey::ClassObj(*c));
                let d = self.local(node, *dst);
                self.add_to_pts(d, ik);
            }
            Inst::Const { .. } | Inst::Binary { .. } | Inst::CatchBind { .. } => {}
            Inst::Assign { dst, src, filter } => {
                let s = self.local(node, *src);
                let d = self.local(node, *dst);
                self.add_copy(s, d, filter.clone());
            }
            Inst::Phi { dst, srcs } => {
                let d = self.local(node, *dst);
                for (_, v) in srcs {
                    let s = self.local(node, *v);
                    self.add_copy(s, d, None);
                }
            }
            Inst::Select { dst, srcs } => {
                let d = self.local(node, *dst);
                for v in srcs {
                    let s = self.local(node, *v);
                    self.add_copy(s, d, None);
                }
            }
            Inst::Load { dst, base, field } => {
                let b = self.local(node, *base);
                let d = self.local(node, *dst);
                self.register_constraint(b, Constraint::Load { field: *field, dst: d });
            }
            Inst::Store { base, field, src } => {
                let b = self.local(node, *base);
                let s = self.local(node, *src);
                self.register_constraint(b, Constraint::Store { field: *field, src: s });
            }
            Inst::StaticLoad { dst, field } => {
                let st = self.pkey(PointerKey::Static(*field));
                let d = self.local(node, *dst);
                self.add_copy(st, d, None);
            }
            Inst::StaticStore { field, src } => {
                let st = self.pkey(PointerKey::Static(*field));
                let s = self.local(node, *src);
                self.add_copy(s, st, None);
            }
            Inst::ArrayLoad { dst, base, .. } => {
                let b = self.local(node, *base);
                let d = self.local(node, *dst);
                self.register_constraint(b, Constraint::ArrayLoad { dst: d });
            }
            Inst::ArrayStore { base, src, .. } => {
                let b = self.local(node, *base);
                let s = self.local(node, *src);
                self.register_constraint(b, Constraint::ArrayStore { src: s });
            }
            Inst::Call { dst, target, recv, args } => {
                self.add_call(node, method, loc, dst, target, recv, args, exc_target);
            }
        }
    }

    fn alloc_key(
        &mut self,
        node: CGNodeId,
        method: MethodId,
        loc: Loc,
        class: jir::ClassId,
    ) -> InstanceKeyId {
        let site = Site { method, loc };
        // Collections: clone per allocating context (unlimited-depth object
        // sensitivity, §3.1), with a recursion cut.
        let heap_ctx = if self.program.class(class).is_collection {
            let ctx = self.node_ctx(node);
            if self.ctx_mentions_site(ctx, site) {
                ROOT_CONTEXT
            } else {
                ctx
            }
        } else {
            ROOT_CONTEXT
        };
        self.ikey(InstanceKey::Alloc { site, ctx: heap_ctx, class })
    }

    fn ctx_mentions_site(&self, ctx: ContextId, site: Site) -> bool {
        let elems = self.contexts.resolve(ctx.0);
        elems.iter().any(|e| match e {
            ContextElem::Receiver(ik) => matches!(
                self.ikeys.resolve(ik.0),
                InstanceKey::Alloc { site: s, .. } if *s == site
            ),
            ContextElem::Site(s) => *s == site,
        })
    }

    // ---- calls ----

    #[allow(clippy::too_many_arguments)]
    fn add_call(
        &mut self,
        node: CGNodeId,
        method: MethodId,
        loc: Loc,
        dst: &Option<Var>,
        target: &CallTarget,
        recv: &Option<Var>,
        args: &[Var],
        exc_target: &(PointerKeyId, Option<Filter>),
    ) {
        let _ = exc_target;
        match target {
            CallTarget::Static(m) => {
                self.direct_call(node, method, loc, *m, None, args, *dst);
            }
            CallTarget::Special(m) => match recv {
                Some(r) => {
                    // Receiver-contexted direct call: dispatch per receiver
                    // object so e.g. constructor bodies are cloned per
                    // allocation (1-object-sensitivity).
                    let b = self.local(node, *r);
                    self.register_constraint(
                        b,
                        Constraint::Dispatch {
                            node,
                            loc,
                            fixed: Some(*m),
                            sel: None,
                            recv: *r,
                            args: args.to_vec(),
                            dst: *dst,
                        },
                    );
                }
                None => self.direct_call(node, method, loc, *m, None, args, *dst),
            },
            CallTarget::Virtual(sel) => {
                let Some(r) = recv else { return };
                let b = self.local(node, *r);
                self.register_constraint(
                    b,
                    Constraint::Dispatch {
                        node,
                        loc,
                        fixed: None,
                        sel: Some(*sel),
                        recv: *r,
                        args: args.to_vec(),
                        dst: *dst,
                    },
                );
            }
        }
    }

    /// A statically-resolved call with no receiver dispatch.
    #[allow(clippy::too_many_arguments)]
    fn direct_call(
        &mut self,
        node: CGNodeId,
        caller_method: MethodId,
        loc: Loc,
        callee: MethodId,
        recv: Option<Var>,
        args: &[Var],
        dst: Option<Var>,
    ) {
        let m = self.program.method(callee);
        if let Some(intr) = m.intrinsic() {
            self.intrinsic_call(node, caller_method, loc, callee, intr, recv, None, args, dst);
            return;
        }
        if m.body().is_none() {
            return;
        }
        let choice = self.config.policy.choose(self.program, callee, recv.is_some());
        let ctx = match choice {
            ContextChoice::CallSite => {
                let site = Site { method: caller_method, loc };
                ContextId(self.contexts.intern(vec![ContextElem::Site(site)]))
            }
            _ => ROOT_CONTEXT,
        };
        let Some(callee_node) = self.ensure_node(callee, ctx) else { return };
        self.record_edge(node, loc, callee_node);
        self.bind_call(node, loc, callee_node, recv, args, dst, /*split_recv*/ None);
    }

    /// Receiver dispatch for one newly-discovered receiver object.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_one(
        &mut self,
        node: CGNodeId,
        loc: Loc,
        fixed: Option<MethodId>,
        sel: Option<jir::SelectorId>,
        recv: Var,
        args: &[Var],
        dst: Option<Var>,
        ik: InstanceKeyId,
    ) {
        let caller_method = self.node_method(node);
        let ik_val = self.ikeys.resolve(ik.0).clone();
        let callee = match fixed {
            Some(m) => Some(m),
            None => {
                let sel = sel.expect("virtual dispatch has a selector");
                ik_val.class_of(self.program).and_then(|c| self.program.resolve_virtual(c, sel))
            }
        };
        let Some(callee) = callee else { return };
        let m = self.program.method(callee);
        if let Some(intr) = m.intrinsic() {
            self.intrinsic_call(
                node,
                caller_method,
                loc,
                callee,
                intr,
                Some(recv),
                Some(ik),
                args,
                dst,
            );
            return;
        }
        if m.body().is_none() {
            return;
        }
        let choice = self.config.policy.choose(self.program, callee, true);
        let ctx = match choice {
            ContextChoice::CallSite => {
                let site = Site { method: caller_method, loc };
                ContextId(self.contexts.intern(vec![ContextElem::Site(site)]))
            }
            ContextChoice::Receiver => {
                ContextId(self.contexts.intern(vec![ContextElem::Receiver(ik)]))
            }
            ContextChoice::Insensitive => ROOT_CONTEXT,
        };
        let Some(callee_node) = self.ensure_node(callee, ctx) else { return };
        self.record_edge(node, loc, callee_node);
        self.bind_call(node, loc, callee_node, Some(recv), args, dst, Some(ik));
    }

    /// Connects actuals to formals, return to destination, and exceptional
    /// flow. `split_recv` adds just the dispatching object to the callee's
    /// `this` (receiver splitting) instead of a full copy edge.
    #[allow(clippy::too_many_arguments)]
    fn bind_call(
        &mut self,
        node: CGNodeId,
        loc: Loc,
        callee_node: CGNodeId,
        recv: Option<Var>,
        args: &[Var],
        dst: Option<Var>,
        split_recv: Option<InstanceKeyId>,
    ) {
        let callee_method = self.node_method(callee_node);
        let m = self.program.method(callee_method);
        let recv_offset = usize::from(!m.is_static);
        // Receiver.
        if !m.is_static {
            let this_pk = self.local(callee_node, Var(0));
            match split_recv {
                Some(ik) => self.add_to_pts(this_pk, ik),
                None => {
                    if let Some(r) = recv {
                        let rp = self.local(node, r);
                        self.add_copy(rp, this_pk, None);
                    }
                }
            }
        }
        // Deduplicate the per-(site, callee) plumbing.
        if !self.site_once.insert((node, loc, callee_node.0 as u64)) {
            return;
        }
        for (i, &a) in args.iter().enumerate() {
            if i + recv_offset >= m.num_incoming() {
                break;
            }
            let ap = self.local(node, a);
            let fp = self.local(callee_node, Var((i + recv_offset) as u32));
            self.add_copy(ap, fp, None);
        }
        if let Some(d) = dst {
            let ret = self.pkey(PointerKey::Ret(callee_node));
            let dp = self.local(node, d);
            self.add_copy(ret, dp, None);
        }
        // Exceptional flow: callee's escaping exceptions reach this block's
        // handler (or escape further). The caller's exception targets were
        // cached when its constraints were added.
        if let Some((target, filter)) = self.exc_targets.get(&(node, loc.block)).cloned() {
            let exc = self.pkey(PointerKey::Exc(callee_node));
            self.add_copy(exc, target, filter);
        } else {
            let exc = self.pkey(PointerKey::Exc(callee_node));
            let out = self.pkey(PointerKey::Exc(node));
            self.add_copy(exc, out, None);
        }
    }

    fn record_edge(&mut self, caller: CGNodeId, loc: Loc, callee: CGNodeId) {
        if self.edge_seen.insert((caller, loc, callee)) {
            self.call_edges.push(CallEdge { caller, loc, callee });
        }
    }

    // ---- intrinsics ----

    #[allow(clippy::too_many_arguments)]
    fn intrinsic_call(
        &mut self,
        node: CGNodeId,
        caller_method: MethodId,
        loc: Loc,
        callee: MethodId,
        intr: Intrinsic,
        recv: Option<Var>,
        recv_ik: Option<InstanceKeyId>,
        args: &[Var],
        dst: Option<Var>,
    ) {
        // Record for the SDG (once per site/method).
        let entry = self.intrinsic_targets.entry((node, loc)).or_default();
        if !entry.iter().any(|(m, _)| *m == callee) {
            entry.push((callee, intr));
        }

        match intr {
            Intrinsic::Nop
            | Intrinsic::Fresh
            | Intrinsic::GetMessage
            | Intrinsic::MethodGetName => {}
            Intrinsic::Propagate => {
                // Pointer-level: the result may alias the receiver or any
                // argument (e.g. `PortableRemoteObject.narrow`).
                if let Some(d) = dst {
                    let dp = self.local(node, d);
                    if let Some(r) = recv {
                        let rp = self.local(node, r);
                        self.add_copy(rp, dp, None);
                    }
                    for &a in args {
                        let ap = self.local(node, a);
                        self.add_copy(ap, dp, None);
                    }
                }
            }
            Intrinsic::ReturnReceiver => {
                if let (Some(d), Some(r)) = (dst, recv) {
                    let dp = self.local(node, d);
                    let rp = self.local(node, r);
                    self.add_copy(rp, dp, None);
                }
            }
            Intrinsic::FreshObject(class) => {
                if let Some(d) = dst {
                    if self.site_once.insert((node, loc, 1 << 32)) {
                        let ik = self.alloc_key(node, caller_method, loc, class);
                        let dp = self.local(node, d);
                        self.add_to_pts(dp, ik);
                    }
                }
            }
            Intrinsic::ClassForName => {
                // Constant class-name argument resolves to a class literal
                // (§4.2.3); otherwise the call is ignored (documented
                // unsoundness shared with the paper's approach).
                if let (Some(d), Some(&arg)) = (dst, args.first()) {
                    let name = self
                        .program
                        .method(caller_method)
                        .body()
                        .and_then(|b| jir::constprop::constant_string(b, arg));
                    if let Some(name) = name {
                        if let Some(c) = self.program.class_by_name(&name) {
                            let ik = self.ikey(InstanceKey::ClassObj(c));
                            let dp = self.local(node, d);
                            self.add_to_pts(dp, ik);
                        }
                    }
                }
            }
            Intrinsic::ClassNewInstance => {
                if let (Some(d), Some(InstanceKey::ClassObj(c))) =
                    (dst, recv_ik.map(|ik| self.ikeys.resolve(ik.0).clone()))
                {
                    let site = Site { method: caller_method, loc };
                    let ik = self.ikey(InstanceKey::Alloc { site, ctx: ROOT_CONTEXT, class: c });
                    let dp = self.local(node, d);
                    self.add_to_pts(dp, ik);
                }
            }
            Intrinsic::GetMethods => {
                if let (Some(d), Some(InstanceKey::ClassObj(c))) =
                    (dst, recv_ik.map(|ik| self.ikeys.resolve(ik.0).clone()))
                {
                    let ma = self.ikey(InstanceKey::MethodArray(c));
                    let dp = self.local(node, d);
                    self.add_to_pts(dp, ma);
                    let elems = self.pkey(PointerKey::ArrayElem(ma));
                    for m in self.reflectable_methods(c) {
                        let mk = self.ikey(InstanceKey::MethodObj(c, m));
                        self.add_to_pts(elems, mk);
                    }
                }
            }
            Intrinsic::GetMethod => {
                if let (Some(d), Some(InstanceKey::ClassObj(c))) =
                    (dst, recv_ik.map(|ik| self.ikeys.resolve(ik.0).clone()))
                {
                    let name = args.first().and_then(|&a| {
                        self.program
                            .method(caller_method)
                            .body()
                            .and_then(|b| jir::constprop::constant_string(b, a))
                    });
                    if let Some(name) = name {
                        if let Some(m) = self.program.method_by_name(c, &name) {
                            let mk = self.ikey(InstanceKey::MethodObj(c, m));
                            let dp = self.local(node, d);
                            self.add_to_pts(dp, mk);
                        }
                    }
                }
            }
            Intrinsic::MethodInvoke => {
                let Some(InstanceKey::MethodObj(_c, m)) =
                    recv_ik.map(|ik| self.ikeys.resolve(ik.0).clone())
                else {
                    return;
                };
                if self.program.method(m).body().is_none() {
                    return;
                }
                let site = Site { method: caller_method, loc };
                let ctx = ContextId(self.contexts.intern(vec![ContextElem::Site(site)]));
                let Some(callee_node) = self.ensure_node(m, ctx) else { return };
                self.record_edge(node, loc, callee_node);
                // Receiver: args[0] of invoke.
                let mm = self.program.method(m);
                if !mm.is_static {
                    if let Some(&target_obj) = args.first() {
                        let tp = self.local(node, target_obj);
                        let this_pk = self.local(callee_node, Var(0));
                        self.add_copy(tp, this_pk, None);
                    }
                }
                // Parameters: contents of the Object[] argument.
                if let Some(&arr) = args.get(1) {
                    let ap = self.local(node, arr);
                    let nparams = mm.params.len();
                    self.register_constraint(
                        ap,
                        Constraint::BindParams { callee: callee_node, nparams },
                    );
                    self.invoke_bindings.push(InvokeBinding {
                        caller: node,
                        loc,
                        arg_array: arr,
                        callee: callee_node,
                    });
                }
                // Return value.
                if let Some(d) = dst {
                    let ret = self.pkey(PointerKey::Ret(callee_node));
                    let dp = self.local(node, d);
                    self.add_copy(ret, dp, None);
                }
            }
            Intrinsic::ThreadStart => {
                // `t.start()` runs `t.run()` on another thread.
                if let (Some(r), Some(ik)) = (recv, recv_ik) {
                    let ik_val = self.ikeys.resolve(ik.0).clone();
                    if let Some(c) = ik_val.class_of(self.program) {
                        if let Some(sel) = self.program.find_selector("run", 0) {
                            if let Some(run) = self.program.resolve_virtual(c, sel) {
                                if self.program.method(run).body().is_some() {
                                    let ctx = ContextId(
                                        self.contexts.intern(vec![ContextElem::Receiver(ik)]),
                                    );
                                    if let Some(cn) = self.ensure_node(run, ctx) {
                                        self.record_edge(node, loc, cn);
                                        let this_pk = self.local(cn, Var(0));
                                        self.add_to_pts(this_pk, ik);
                                        let _ = r;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Container/builder intrinsics normally disappear during model
            // expansion; when the receiver's static type was too imprecise
            // to expand, fall back to the summary fields.
            Intrinsic::MapPut | Intrinsic::CollAdd | Intrinsic::BuilderAppend => {
                if let (Some(r), Some(&v)) = (recv, args.last()) {
                    let field_name = if intr == Intrinsic::BuilderAppend {
                        jir::expand::fields::CONTENT
                    } else if intr == Intrinsic::CollAdd {
                        jir::expand::fields::ELEMS
                    } else {
                        jir::expand::fields::MAP_UNKNOWN
                    };
                    if let Some(f) = self.program.find_synthetic_field(field_name) {
                        let b = self.local(node, r);
                        let s = self.local(node, v);
                        self.register_constraint(b, Constraint::Store { field: f, src: s });
                    }
                }
            }
            Intrinsic::MapGet | Intrinsic::CollGet | Intrinsic::BuilderToString => {
                if let (Some(r), Some(d)) = (recv, dst) {
                    let field_name = if intr == Intrinsic::BuilderToString {
                        jir::expand::fields::CONTENT
                    } else if intr == Intrinsic::CollGet {
                        jir::expand::fields::ELEMS
                    } else {
                        jir::expand::fields::MAP_UNKNOWN
                    };
                    if let Some(f) = self.program.find_synthetic_field(field_name) {
                        let b = self.local(node, r);
                        let dp = self.local(node, d);
                        self.register_constraint(b, Constraint::Load { field: f, dst: dp });
                    }
                }
            }
            Intrinsic::IterAlias => {
                if let (Some(r), Some(d)) = (recv, dst) {
                    let rp = self.local(node, r);
                    let dp = self.local(node, d);
                    self.add_copy(rp, dp, None);
                }
            }
        }
    }

    /// Concrete instance methods visible reflectively on `c`.
    fn reflectable_methods(&self, c: jir::ClassId) -> Vec<MethodId> {
        let mut out = Vec::new();
        let mut cur = Some(c);
        while let Some(cc) = cur {
            for &m in &self.program.class(cc).methods {
                let meth = self.program.method(m);
                if !meth.is_static
                    && meth.name != "<init>"
                    && meth.body().is_some()
                    && !out.iter().any(|&o| {
                        let om = self.program.method(o);
                        om.name == meth.name && om.params.len() == meth.params.len()
                    })
                {
                    out.push(m);
                }
            }
            cur = self.program.class(cc).superclass;
        }
        out
    }

    // ---- §6.1 priority propagation ----

    fn update_neighborhood_priorities(&mut self, n: CGNodeId) {
        // Tn: call-graph neighbors plus nodes whose methods load fields
        // stored by n's method (possible heap flow).
        let mut tn: Vec<CGNodeId> = Vec::new();
        for e in &self.call_edges {
            if e.caller == n && !tn.contains(&e.callee) {
                tn.push(e.callee);
            }
            if e.callee == n && !tn.contains(&e.caller) {
                tn.push(e.caller);
            }
        }
        let method = self.node_method(n);
        if let Some(stored) = self.method_stores.get(&method) {
            let mut methods: Vec<MethodId> = Vec::new();
            for f in stored {
                if let Some(loaders) = self.field_loaders.get(f) {
                    for &lm in loaders {
                        if !methods.contains(&lm) {
                            methods.push(lm);
                        }
                    }
                }
            }
            for (id, &(m, _)) in self.node_ids.iter() {
                if methods.contains(&m) {
                    let cand = CGNodeId(id);
                    if !tn.contains(&cand) {
                        tn.push(cand);
                    }
                }
            }
        }
        // Update rule π(t) := min(π(t), π(n)+1), propagated to a fixpoint.
        let base = self.pending.priority_of(n);
        let mut work: Vec<(CGNodeId, usize)> =
            tn.into_iter().map(|t| (t, base.saturating_add(1))).collect();
        while let Some((t, p)) = work.pop() {
            if self.pending.lower_priority(t, p) {
                // Changed: propagate to t's own neighborhood (call-graph
                // neighbors suffice for the fixpoint step).
                for e in &self.call_edges {
                    if e.caller == t {
                        work.push((e.callee, p.saturating_add(1)));
                    }
                    if e.callee == t {
                        work.push((e.caller, p.saturating_add(1)));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: &str = r#"
        class Main {
            static method void main() {
                Helper h = new Helper();
                String s = h.id("x");
                Main.consume(s);
            }
            static method void consume(String s) { }
        }
        class Helper {
            field String last;
            method String id(String s) { this.last = s; return this.last; }
        }
    "#;

    fn entry_program() -> Program {
        let mut program = jir::frontend::build_program(APP).expect("parses");
        let main_class = program.class_by_name("Main").unwrap();
        let main = program.method_by_name(main_class, "main").unwrap();
        program.entrypoints.push(main);
        program
    }

    /// A reconstructed [`PreScan`] must lead the solver to the same
    /// solution as its own cold scan — including under §6.1 priority
    /// mode, where the scan vectors drive exploration order.
    #[test]
    fn prescanned_run_equals_cold_run() {
        let program = entry_program();
        for priority in [false, true] {
            let config = SolverConfig { priority, ..SolverConfig::default() };
            let cold = analyze(&program, &config);
            let scan = PreScan::scan(&program, &config.source_methods);
            assert!(
                !scan.field_loaders.is_empty(),
                "Helper.id loads Helper.last; the scan must see it"
            );
            let warm = analyze_prescanned(&program, &config, &taj_obs::Recorder::disabled(), scan);
            assert_eq!(cold.stats, warm.stats, "priority={priority}");
        }
    }

    /// The scan marks source-calling methods as π = 0 seeds.
    #[test]
    fn prescan_source_adjacency() {
        let program = entry_program();
        let main_class = program.class_by_name("Main").unwrap();
        let helper = program.class_by_name("Helper").unwrap();
        let id = program.method_by_name(helper, "id").unwrap();
        let main = program.method_by_name(main_class, "main").unwrap();
        let sources: std::collections::HashSet<MethodId> = [id].into_iter().collect();
        let scan = PreScan::scan(&program, &sources);
        assert!(scan.source_adjacent.contains(&id), "sources are their own seeds");
        assert!(scan.source_adjacent.contains(&main), "main calls h.id virtually");
    }
}
