//! Calling contexts and the TAJ context-sensitivity policy (§3.1).
//!
//! The policy assigns:
//! - **1-object-sensitivity** to ordinary instance methods (context = the
//!   receiver's abstract object);
//! - **1-call-string** contexts to library factory methods and to
//!   taint-relevant APIs (sources/sinks/sanitizers), so distinct call
//!   sites of e.g. `getParameter` are distinguished even on one receiver;
//! - **context-insensitive** treatment to other static methods;
//! - **unlimited-depth object sensitivity** to collections, realized as
//!   full-context heap cloning of collection allocations (with a recursion
//!   cut) — see [`crate::keys::InstanceKey::Alloc`].

use std::collections::HashSet;

use jir::{MethodId, Program};

use crate::keys::{InstanceKeyId, Site};

jir::index_type! {
    /// Interned id of a context (a vector of [`ContextElem`]s).
    pub struct ContextId, "ctx"
}

/// One element of a calling context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContextElem {
    /// Object sensitivity: the receiver's abstract object.
    Receiver(InstanceKeyId),
    /// Call-string sensitivity: the call site.
    Site(Site),
}

/// The empty (root) context. Interners guarantee it is id 0.
pub const ROOT_CONTEXT: ContextId = ContextId(0);

/// Configuration of the TAJ context policy.
#[derive(Clone, Debug, Default)]
pub struct PolicyConfig {
    /// Taint-relevant API methods (sources, sinks, sanitizers): analyzed
    /// with one level of call-string context (§3.1).
    pub taint_methods: HashSet<MethodId>,
}

/// How a callee should be contextualized at a given call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContextChoice {
    /// Use the call site (1-call-string).
    CallSite,
    /// Use the receiver object (1-object-sensitivity).
    Receiver,
    /// Empty context (context-insensitive).
    Insensitive,
}

impl PolicyConfig {
    /// Decides the context shape for calling `callee` (with or without a
    /// receiver).
    pub fn choose(&self, program: &Program, callee: MethodId, has_receiver: bool) -> ContextChoice {
        let m = program.method(callee);
        if self.taint_methods.contains(&callee) || m.is_factory {
            ContextChoice::CallSite
        } else if has_receiver && !m.is_static {
            ContextChoice::Receiver
        } else {
            ContextChoice::Insensitive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jir::frontend;

    #[test]
    fn taint_api_gets_call_site_context() {
        let p = frontend::parse_program("class A { }").unwrap();
        let req = p.class_by_name("HttpServletRequest").unwrap();
        let gp = p.method_by_name(req, "getParameter").unwrap();
        let mut cfg = PolicyConfig::default();
        cfg.taint_methods.insert(gp);
        assert_eq!(cfg.choose(&p, gp, true), ContextChoice::CallSite);
    }

    #[test]
    fn factory_gets_call_site_context() {
        let p = frontend::parse_program("class A { }").unwrap();
        let resp = p.class_by_name("HttpServletResponse").unwrap();
        let gw = p.method_by_name(resp, "getWriter").unwrap();
        let cfg = PolicyConfig::default();
        assert_eq!(cfg.choose(&p, gw, true), ContextChoice::CallSite);
    }

    #[test]
    fn instance_methods_get_receiver_context() {
        let p = frontend::parse_program("class A { method void f() { } }").unwrap();
        let a = p.class_by_name("A").unwrap();
        let f = p.method_by_name(a, "f").unwrap();
        let cfg = PolicyConfig::default();
        assert_eq!(cfg.choose(&p, f, true), ContextChoice::Receiver);
    }

    #[test]
    fn statics_are_insensitive() {
        let p = frontend::parse_program("class A { static method void f() { } }").unwrap();
        let a = p.class_by_name("A").unwrap();
        let f = p.method_by_name(a, "f").unwrap();
        let cfg = PolicyConfig::default();
        assert_eq!(cfg.choose(&p, f, false), ContextChoice::Insensitive);
    }
}
