//! # taj-pointer — phase 1 of TAJ: pointer analysis & call graph
//!
//! A context-sensitive variant of Andersen's analysis with on-the-fly
//! call-graph construction, reproducing §3.1 of *TAJ: Effective Taint
//! Analysis of Web Applications* (PLDI 2009):
//!
//! - **1-object-sensitivity** for ordinary instance methods;
//! - **1-call-string** contexts for library factories and taint APIs;
//! - **field sensitivity** and SSA-based flow sensitivity for locals;
//! - **collection cloning** (unlimited-depth object sensitivity for
//!   collections, realized via per-context heap cloning on top of the
//!   model expansion from [`jir::expand`]);
//! - **reflection resolution** for constant `Class.forName` /
//!   `getMethod(s)` / `Method.invoke` chains (§4.2.3);
//! - **priority-driven bounded construction** under a node budget (§6.1).
//!
//! ```
//! use taj_pointer::{analyze, SolverConfig};
//!
//! let src = r#"
//!     class Main {
//!         static method void main() {
//!             Object o = new Object();
//!         }
//!     }
//! "#;
//! let mut program = jir::frontend::build_program(src)?;
//! let main_class = program.class_by_name("Main").unwrap();
//! program.entrypoints.push(program.method_by_name(main_class, "main").unwrap());
//! let result = analyze(&program, &SolverConfig::default());
//! assert!(result.stats.nodes >= 1);
//! # Ok::<(), jir::parser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod context;
pub mod escape;
pub mod heapgraph;
pub mod keys;
pub mod priority;
pub mod solver;

pub use callgraph::{CGNodeId, CallEdge, CallGraph};
pub use context::{ContextElem, ContextId, PolicyConfig, ROOT_CONTEXT};
pub use escape::{spawn_edges, EscapeAnalysis, SpawnEdge};
pub use heapgraph::HeapGraph;
pub use keys::{InstanceKey, InstanceKeyId, PointerKey, PointerKeyId, Site};
pub use solver::{
    analyze, analyze_prescanned, analyze_traced, InvokeBinding, PointsTo, PreScan, SolverConfig,
    SolverStats,
};
