//! The heap graph (§4.1.1): a bipartite view of the points-to solution
//! with instance-key nodes and pointer-key nodes, supporting the
//! reachability queries that taint-carrier detection needs.

use std::collections::HashMap;

use jir::util::BitSet;
use jir::FieldId;

use crate::keys::{InstanceKeyId, PointerKey};
use crate::solver::PointsTo;

/// Heap graph derived from a [`PointsTo`] solution.
///
/// Edges `P → I` mean pointer key `P` may point to instance key `I`;
/// edges `I → P` mean `P` is a field (or the array contents) of `I`.
#[derive(Debug)]
pub struct HeapGraph {
    /// For each instance key: its field pointer keys `(field, pts)`.
    fields_of: HashMap<InstanceKeyId, Vec<(Option<FieldId>, BitSet)>>,
}

impl HeapGraph {
    /// Builds the heap graph from a points-to solution.
    pub fn build(pts: &PointsTo) -> HeapGraph {
        let mut fields_of: HashMap<InstanceKeyId, Vec<(Option<FieldId>, BitSet)>> = HashMap::new();
        for (_, key, set) in pts.iter_pointer_keys() {
            match key {
                PointerKey::Field { ik, field } => {
                    fields_of.entry(*ik).or_default().push((Some(*field), set.clone()));
                }
                PointerKey::ArrayElem(ik) => {
                    fields_of.entry(*ik).or_default().push((None, set.clone()));
                }
                _ => {}
            }
        }
        HeapGraph { fields_of }
    }

    /// Instance keys directly reachable from `ik` through one field or
    /// array dereference.
    pub fn succs(&self, ik: InstanceKeyId) -> impl Iterator<Item = InstanceKeyId> + '_ {
        self.fields_of
            .get(&ik)
            .into_iter()
            .flatten()
            .flat_map(|(_, set)| set.iter().map(InstanceKeyId))
    }

    /// All instance keys reachable from `roots` within `max_depth`
    /// dereferences (inclusive of the roots themselves at depth 0).
    ///
    /// This implements the bounded nested-taint search of §6.2.3: the paper
    /// found 2 levels of field dereference sufficient in practice;
    /// `max_depth = None` removes the bound (the sound but expensive
    /// configuration).
    pub fn reachable(&self, roots: &BitSet, max_depth: Option<usize>) -> BitSet {
        let mut seen = roots.clone();
        let mut frontier: Vec<InstanceKeyId> = roots.iter().map(InstanceKeyId).collect();
        let mut depth = 0usize;
        while !frontier.is_empty() {
            if let Some(max) = max_depth {
                if depth >= max {
                    break;
                }
            }
            let mut next = Vec::new();
            for ik in frontier {
                for succ in self.succs(ik) {
                    if seen.insert(succ.0) {
                        next.push(succ);
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        seen
    }

    /// Number of instance keys that have outgoing field edges.
    pub fn len(&self) -> usize {
        self.fields_of.len()
    }

    /// Whether no instance key has fields.
    pub fn is_empty(&self) -> bool {
        self.fields_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PolicyConfig;
    use crate::solver::{analyze, SolverConfig};
    use jir::frontend;

    fn run(src: &str, entry_class: &str, entry_method: &str) -> (jir::Program, PointsTo) {
        let mut p = frontend::build_program(src).expect("builds");
        let c = p.class_by_name(entry_class).unwrap();
        let m = p.method_by_name(c, entry_method).unwrap();
        p.entrypoints.push(m);
        let cfg = SolverConfig { policy: PolicyConfig::default(), ..Default::default() };
        let pts = analyze(&p, &cfg);
        (p, pts)
    }

    #[test]
    fn nested_reachability_respects_depth() {
        let (_p, pts) = run(
            r#"
            class Inner { field Object o; ctor (Object o) { this.o = o; } }
            class Outer { field Inner inner; ctor (Inner i) { this.inner = i; } }
            class Main {
                static method void main() {
                    Object leaf = new Object();
                    Inner i = new Inner(leaf);
                    Outer o = new Outer(i);
                }
            }
            "#,
            "Main",
            "main",
        );
        let hg = HeapGraph::build(&pts);
        // Find the Outer allocation.
        let outer = pts
            .iter_instance_keys()
            .find(|(_, k)| matches!(k, crate::keys::InstanceKey::Alloc { .. }))
            .map(|(id, _)| id);
        assert!(outer.is_some());
        // From all allocs, depth 0 reaches only roots; depth 2 reaches the
        // leaf through Outer.inner.o.
        let roots: BitSet = pts
            .iter_instance_keys()
            .filter(|(_, k)| {
                matches!(k, crate::keys::InstanceKey::Alloc { class, .. }
                    if format!("{class:?}") != "")
            })
            .map(|(id, _)| id.0)
            .collect();
        let d0 = hg.reachable(&roots, Some(0));
        assert_eq!(d0.len(), roots.len());
        let d2 = hg.reachable(&roots, Some(2));
        assert!(d2.len() >= d0.len());
        let unbounded = hg.reachable(&roots, None);
        assert!(d2.is_subset(&unbounded));
    }
}
