//! Thread-escape analysis over the phase-1 points-to solution.
//!
//! The paper documents (§7.2, Figure 4) that CS thin slicing is unsound
//! for multithreaded applications — heap writes performed by a spawned
//! thread never propagate back across `Thread.start` — while the hybrid
//! slicer stays sound only by treating every store→load pair as
//! potentially inter-thread. Both slicers can do better with one cheap
//! post-pass over phase 1: the set of abstract objects that can actually
//! be *shared between threads*.
//!
//! An instance key escapes its creating thread iff it is reachable (by
//! field/array dereference in the [`HeapGraph`]) from
//!
//! 1. a receiver of a `Thread.start` call (the spawned `Runnable` and
//!    everything it can reach), or
//! 2. a static field (visible to every thread).
//!
//! Everything else is thread-local: a cross-thread heap dependence
//! through a non-escaping object is impossible, so dropping it is sound
//! and only removes false positives; conversely, re-adding spawn-edge
//! propagation *only* for escaping objects repairs the CS false
//! negatives without readmitting the full fact explosion.

use jir::inst::{Loc, Var};
use jir::method::Intrinsic;
use jir::util::BitSet;
use taj_supervise::{InterruptReason, Supervisor};

use crate::callgraph::CGNodeId;
use crate::heapgraph::HeapGraph;
use crate::keys::PointerKey;
use crate::solver::PointsTo;

/// One `Thread.start` call-graph edge: the spawning call site and the
/// spawned `run` node (already context-refined by the solver).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpawnEdge {
    /// Node containing the `t.start()` call.
    pub caller: CGNodeId,
    /// Location of the `t.start()` call inside `caller`.
    pub loc: Loc,
    /// The spawned `run` method's call-graph node.
    pub callee: CGNodeId,
}

/// Collects every `Thread.start` call-graph edge. The edge triple —
/// caller, call-site location, *and* spawned callee — is the canonical
/// key shared by the CS slicer's spawn-site handling, the MHP relation,
/// and this escape analysis.
pub fn spawn_edges(pts: &PointsTo) -> Vec<SpawnEdge> {
    pts.callgraph
        .edges
        .iter()
        .filter(|e| {
            pts.intrinsics_at(e.caller, e.loc).iter().any(|&(_, i)| i == Intrinsic::ThreadStart)
        })
        .map(|e| SpawnEdge { caller: e.caller, loc: e.loc, callee: e.callee })
        .collect()
}

/// The thread-escape solution: which abstract objects may be shared
/// across threads.
#[derive(Clone, Debug)]
pub struct EscapeAnalysis {
    spawn_edges: Vec<SpawnEdge>,
    /// Escape roots: spawn receivers plus every object a static points to.
    roots: BitSet,
    /// Roots closed under field/array reachability.
    escaping: BitSet,
    /// Total number of instance keys in the solution (for reporting).
    total_objects: usize,
}

impl EscapeAnalysis {
    /// Computes the escaping-object set from a points-to solution and its
    /// heap graph.
    pub fn compute(pts: &PointsTo, heap: &HeapGraph) -> EscapeAnalysis {
        let spawn_edges = spawn_edges(pts);
        let mut roots = BitSet::new();
        // Root set 1: receivers at spawn sites. The solver seeds the
        // spawned `run` node's `this` (Var 0) with exactly the receiver
        // instance keys, so read them back from the callee.
        for e in &spawn_edges {
            if let Some(receivers) = pts.local(e.callee, Var(0)) {
                roots.union_into(receivers);
            }
        }
        // Root set 2: objects stored in static fields.
        for (_, key, set) in pts.iter_pointer_keys() {
            if matches!(key, PointerKey::Static(_)) {
                roots.union_into(set);
            }
        }
        let escaping = heap.reachable(&roots, None);
        EscapeAnalysis { spawn_edges, roots, escaping, total_objects: pts.num_instance_keys() }
    }

    /// Supervised variant of [`EscapeAnalysis::compute`] (site
    /// `escape.compute`). On an interrupt the *conservative*
    /// everything-escapes solution is returned: consumers treat escaping
    /// objects as shared, so over-approximating loses precision but
    /// never soundness.
    pub fn compute_supervised(
        pts: &PointsTo,
        heap: &HeapGraph,
        supervisor: &Supervisor,
    ) -> (EscapeAnalysis, Option<InterruptReason>) {
        if let Err(reason) = supervisor.check("escape.compute") {
            return (Self::all_escaping(pts), Some(reason));
        }
        (Self::compute(pts, heap), None)
    }

    /// The conservative top element: every object is considered shared
    /// across threads.
    pub fn all_escaping(pts: &PointsTo) -> EscapeAnalysis {
        let mut escaping = BitSet::new();
        for ik in 0..pts.num_instance_keys() as u32 {
            escaping.insert(ik);
        }
        EscapeAnalysis {
            spawn_edges: spawn_edges(pts),
            roots: escaping.clone(),
            escaping,
            total_objects: pts.num_instance_keys(),
        }
    }

    /// An escape analysis for a single-threaded program with no statics:
    /// nothing escapes, no spawn edges.
    pub fn empty() -> EscapeAnalysis {
        EscapeAnalysis {
            spawn_edges: Vec::new(),
            roots: BitSet::new(),
            escaping: BitSet::new(),
            total_objects: 0,
        }
    }

    /// Does the given instance key escape its creating thread?
    pub fn escapes(&self, ik: u32) -> bool {
        self.escaping.contains(ik)
    }

    /// Do any of the given instance keys escape?
    pub fn any_escapes(&self, iks: &BitSet) -> bool {
        self.escaping.intersects(iks)
    }

    /// The full escaping set.
    pub fn escaping(&self) -> &BitSet {
        &self.escaping
    }

    /// The escape roots (spawn receivers + statics, before closure).
    pub fn roots(&self) -> &BitSet {
        &self.roots
    }

    /// All `Thread.start` edges in the call graph.
    pub fn spawn_edges(&self) -> &[SpawnEdge] {
        &self.spawn_edges
    }

    /// Number of distinct spawn call sites (not edges: a site spawning
    /// several receiver contexts counts once).
    pub fn num_spawn_sites(&self) -> usize {
        let mut sites: Vec<(CGNodeId, Loc)> =
            self.spawn_edges.iter().map(|e| (e.caller, e.loc)).collect();
        sites.sort();
        sites.dedup();
        sites.len()
    }

    /// Number of escaping objects.
    pub fn num_escaping(&self) -> usize {
        self.escaping.len()
    }

    /// Total objects in the underlying points-to solution.
    pub fn total_objects(&self) -> usize {
        self.total_objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{analyze, SolverConfig};

    fn run(src: &str) -> (jir::Program, PointsTo, HeapGraph) {
        let mut program = jir::frontend::build_program(src).expect("builds");
        let mains: Vec<jir::MethodId> = program
            .iter_classes()
            .map(|(cid, _)| cid)
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|cid| program.method_by_name(cid, "main"))
            .collect();
        program.entrypoints.extend(mains);
        let pts = analyze(&program, &SolverConfig::default());
        let heap = HeapGraph::build(&pts);
        (program, pts, heap)
    }

    fn class_of_ik(program: &jir::Program, pts: &PointsTo, ik: u32) -> String {
        pts.instance_key(crate::keys::InstanceKeyId(ik))
            .class_of(program)
            .map(|c| program.class(c).name.clone())
            .unwrap_or_default()
    }

    const THREADED: &str = r#"
        class Box { field String v; ctor () { } }
        class Inner { field Box held; ctor (Box b) { this.held = b; } }
        class Worker implements Runnable {
            field Inner shared;
            ctor (Inner s) { this.shared = s; }
            method void run() { Inner s = this.shared; }
        }
        class Main {
            static method void main() {
                Box b = new Box();
                Inner i = new Inner(b);
                Worker w = new Worker(i);
                Thread t = new Thread(w);
                t.start();
                Box local = new Box();
            }
        }
    "#;

    #[test]
    fn spawn_receivers_and_reachable_objects_escape() {
        let (program, pts, heap) = run(THREADED);
        let esc = EscapeAnalysis::compute(&pts, &heap);
        assert_eq!(esc.spawn_edges().len(), 1, "one Thread.start edge");
        assert_eq!(esc.num_spawn_sites(), 1);

        let class_names: Vec<String> =
            esc.escaping().iter().map(|ik| class_of_ik(&program, &pts, ik)).collect();
        // The worker and everything reachable from it escape.
        for expected in ["Worker", "Inner", "Box"] {
            assert!(
                class_names.iter().any(|n| n == expected),
                "{expected} should escape; escaping classes: {class_names:?}"
            );
        }
    }

    #[test]
    fn thread_local_objects_do_not_escape() {
        let (program, pts, heap) = run(THREADED);
        let esc = EscapeAnalysis::compute(&pts, &heap);
        // `local` is a second Box allocation never shared with the
        // thread: its instance key must not escape even though another
        // Box does.
        let boxes: Vec<u32> = pts
            .iter_instance_keys()
            .filter(|(_, k)| k.class_of(&program).is_some_and(|c| program.class(c).name == "Box"))
            .map(|(id, _)| id.0)
            .collect();
        assert!(boxes.len() >= 2, "two Box allocation sites: {boxes:?}");
        assert!(boxes.iter().any(|&ik| esc.escapes(ik)), "the shared Box escapes");
        assert!(boxes.iter().any(|&ik| !esc.escapes(ik)), "the local Box stays thread-local");
    }

    #[test]
    fn statics_escape_without_threads() {
        let (_program, pts, heap) = run(r#"
            class Holder { static field Object shared; }
            class Main {
                static method void main() {
                    Object o = new Object();
                    Holder.shared = o;
                    Object p = new Object();
                }
            }
        "#);
        let esc = EscapeAnalysis::compute(&pts, &heap);
        assert!(esc.spawn_edges().is_empty());
        assert!(esc.num_escaping() >= 1, "static-held object escapes");
        assert!(
            esc.num_escaping() < pts.num_instance_keys(),
            "the purely local object must not escape"
        );
    }

    #[test]
    fn single_threaded_no_statics_escapes_nothing() {
        let (_program, pts, heap) = run(r#"
            class Main {
                static method void main() {
                    Object o = new Object();
                }
            }
        "#);
        let esc = EscapeAnalysis::compute(&pts, &heap);
        assert!(esc.spawn_edges().is_empty());
        assert_eq!(esc.num_escaping(), 0, "{:?}", esc.escaping());
    }
}
