//! Abstract heap entities: instance keys (abstract objects) and pointer
//! keys (abstract pointers), following WALA's terminology used in the
//! paper (§4.1.1).

use jir::inst::{Loc, Var};
use jir::{ClassId, FieldId, MethodId, Program, TypeId};

use crate::callgraph::CGNodeId;
use crate::context::ContextId;

jir::index_type! {
    /// Interned id of an [`InstanceKey`].
    pub struct InstanceKeyId, "ik"
}

jir::index_type! {
    /// Interned id of a [`PointerKey`].
    pub struct PointerKeyId, "pk"
}

/// A static program location: `(method, loc)` — unique across the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Containing method.
    pub method: MethodId,
    /// Position within the method body.
    pub loc: Loc,
}

/// An abstract object.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum InstanceKey {
    /// Objects allocated at `site` under heap context `ctx`.
    ///
    /// Normal classes use the empty heap context; collection classes are
    /// cloned per allocating context — the paper's unlimited-depth object
    /// sensitivity for collections (§3.1). (After model expansion the
    /// contents of collections are plain fields of the collection object,
    /// so per-instance content disambiguation follows structurally.)
    Alloc {
        /// Allocation site.
        site: Site,
        /// Heap context.
        ctx: ContextId,
        /// Allocated class.
        class: ClassId,
    },
    /// Arrays allocated at `site`.
    AllocArray {
        /// Allocation site.
        site: Site,
        /// Element type.
        elem: TypeId,
    },
    /// The reflective `Class` object for a class (`Class.forName`).
    ClassObj(ClassId),
    /// A reflective `Method` object (`Class.getMethods`/`getMethod`).
    MethodObj(ClassId, MethodId),
    /// The array returned by `Class.getMethods` for a class.
    MethodArray(ClassId),
    /// A synthesizer-created object (framework entrypoint environments).
    Synthetic {
        /// Discriminating label.
        label: u32,
        /// Modeled class.
        class: ClassId,
    },
}

impl InstanceKey {
    /// The runtime class used for dispatch and cast filtering, if this key
    /// models a class instance.
    pub fn class_of(&self, program: &Program) -> Option<ClassId> {
        match self {
            InstanceKey::Alloc { class, .. } | InstanceKey::Synthetic { class, .. } => Some(*class),
            InstanceKey::ClassObj(_) => program.class_by_name("Class"),
            InstanceKey::MethodObj(..) => program.class_by_name("Method"),
            InstanceKey::AllocArray { .. } | InstanceKey::MethodArray(_) => None,
        }
    }

    /// Whether this key passes a flow [`jir::Filter`].
    pub fn passes(&self, program: &Program, filter: &jir::Filter) -> bool {
        match filter {
            jir::Filter::InstanceOf(target) => {
                match self.class_of(program) {
                    Some(c) => program.is_subtype(c, *target),
                    // Arrays only pass casts to the root object class.
                    None => Some(*target) == program.class_by_name("Object"),
                }
            }
            jir::Filter::MethodNameEquals(name) => match self {
                InstanceKey::MethodObj(_, m) => program.method(*m).name == *name,
                _ => false,
            },
        }
    }
}

/// An abstract pointer: a set of concrete pointers whose points-to sets the
/// analysis merges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PointerKey {
    /// A local register of a call-graph node (method × context).
    Local {
        /// Owning node.
        node: CGNodeId,
        /// Register.
        var: Var,
    },
    /// The return value of a node.
    Ret(CGNodeId),
    /// The exceptional (thrown) value escaping a node.
    Exc(CGNodeId),
    /// An instance field of an abstract object (field-sensitive heap).
    Field {
        /// Base object.
        ik: InstanceKeyId,
        /// Field.
        field: FieldId,
    },
    /// The merged contents of an abstract array.
    ArrayElem(InstanceKeyId),
    /// A static field.
    Static(FieldId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use jir::frontend;

    #[test]
    fn alloc_key_class_and_filter() {
        let p = frontend::parse_program("class A { } class B extends A { }").unwrap();
        let a = p.class_by_name("A").unwrap();
        let b = p.class_by_name("B").unwrap();
        let ik = InstanceKey::Alloc {
            site: Site { method: MethodId(0), loc: Loc::new(jir::BlockId(0), 0) },
            ctx: ContextId(0),
            class: b,
        };
        assert_eq!(ik.class_of(&p), Some(b));
        assert!(ik.passes(&p, &jir::Filter::InstanceOf(a)));
        assert!(ik.passes(&p, &jir::Filter::InstanceOf(b)));
        let obj = p.class_by_name("Object").unwrap();
        assert!(ik.passes(&p, &jir::Filter::InstanceOf(obj)));
    }

    #[test]
    fn method_name_filter() {
        let p = frontend::parse_program("class A { method void id() { } method void other() { } }")
            .unwrap();
        let a = p.class_by_name("A").unwrap();
        let id = p.method_by_name(a, "id").unwrap();
        let ik = InstanceKey::MethodObj(a, id);
        assert!(ik.passes(&p, &jir::Filter::MethodNameEquals("id".into())));
        assert!(!ik.passes(&p, &jir::Filter::MethodNameEquals("other".into())));
        // Non-method keys never pass a method-name filter.
        let cls = InstanceKey::ClassObj(a);
        assert!(!cls.passes(&p, &jir::Filter::MethodNameEquals("id".into())));
    }

    #[test]
    fn arrays_fail_narrow_casts() {
        let p = frontend::parse_program("class A { }").unwrap();
        let a = p.class_by_name("A").unwrap();
        let arr = InstanceKey::AllocArray {
            site: Site { method: MethodId(0), loc: Loc::new(jir::BlockId(0), 0) },
            elem: p.types.string(),
        };
        assert!(!arr.passes(&p, &jir::Filter::InstanceOf(a)));
    }
}
