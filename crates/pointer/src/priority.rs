//! The pending-node queue driving constraint adding: FIFO (chaotic
//! iteration) or the taint-locality priority scheme of §6.1.
//!
//! Priorities: a freshly created node gets `π = 0` if its method is a taint
//! source, else `π = maxNodes`. When a node `n` is processed, its
//! neighborhood `Tn` receives `π(t) := min(π(t), π(n)+1)`, propagated to a
//! fixpoint (the solver drives that part). Lower `π` pops first, so the
//! analysis explores code near taint sources before anything else.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::callgraph::CGNodeId;

/// Pending-node queue (see module docs).
#[derive(Debug)]
pub struct NodeQueue {
    priority_mode: bool,
    default_priority: usize,
    pi: Vec<usize>,
    heap: BinaryHeap<Reverse<(usize, u32)>>,
    fifo: VecDeque<CGNodeId>,
    popped: Vec<bool>,
}

impl NodeQueue {
    /// Creates a queue. `max_nodes` is the initial priority of non-source
    /// nodes in priority mode.
    pub fn new(priority_mode: bool, max_nodes: usize) -> Self {
        NodeQueue {
            priority_mode,
            default_priority: max_nodes,
            pi: Vec::new(),
            heap: BinaryHeap::new(),
            fifo: VecDeque::new(),
            popped: Vec::new(),
        }
    }

    /// Registers a new node and enqueues it. `is_source` seeds π = 0.
    pub fn push(&mut self, node: CGNodeId, is_source: bool) {
        let idx = node.index();
        if idx >= self.pi.len() {
            self.pi.resize(idx + 1, self.default_priority);
            self.popped.resize(idx + 1, false);
        }
        self.pi[idx] = if is_source { 0 } else { self.default_priority };
        if self.priority_mode {
            self.heap.push(Reverse((self.pi[idx], node.0)));
        } else {
            self.fifo.push_back(node);
        }
    }

    /// Dequeues the next node to process, or `None` when drained.
    pub fn pop(&mut self) -> Option<CGNodeId> {
        if self.priority_mode {
            while let Some(Reverse((p, raw))) = self.heap.pop() {
                let node = CGNodeId(raw);
                if self.popped[node.index()] {
                    continue; // stale duplicate
                }
                if p != self.pi[node.index()] {
                    continue; // superseded by a lower priority entry
                }
                self.popped[node.index()] = true;
                return Some(node);
            }
            None
        } else {
            let node = self.fifo.pop_front()?;
            self.popped[node.index()] = true;
            Some(node)
        }
    }

    /// Current priority of `node`.
    pub fn priority_of(&self, node: CGNodeId) -> usize {
        self.pi.get(node.index()).copied().unwrap_or(self.default_priority)
    }

    /// Applies `π(node) := min(π(node), p)`; returns whether it decreased.
    /// Re-enqueues pending nodes whose priority improved.
    pub fn lower_priority(&mut self, node: CGNodeId, p: usize) -> bool {
        let idx = node.index();
        if idx >= self.pi.len() {
            return false; // unknown node (dropped by budget)
        }
        if p < self.pi[idx] {
            self.pi[idx] = p;
            if self.priority_mode && !self.popped[idx] {
                self.heap.push(Reverse((p, node.0)));
            }
            true
        } else {
            false
        }
    }

    /// Number of nodes ever registered.
    pub fn len(&self) -> usize {
        self.pi.len()
    }

    /// Whether no node was ever registered.
    pub fn is_empty(&self) -> bool {
        self.pi.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = NodeQueue::new(false, 100);
        q.push(CGNodeId(0), false);
        q.push(CGNodeId(1), true);
        assert_eq!(q.pop(), Some(CGNodeId(0)));
        assert_eq!(q.pop(), Some(CGNodeId(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sources_pop_first_in_priority_mode() {
        let mut q = NodeQueue::new(true, 100);
        q.push(CGNodeId(0), false);
        q.push(CGNodeId(1), true);
        q.push(CGNodeId(2), false);
        assert_eq!(q.pop(), Some(CGNodeId(1)), "source has π=0");
    }

    #[test]
    fn lowering_priority_reorders() {
        let mut q = NodeQueue::new(true, 100);
        q.push(CGNodeId(0), false);
        q.push(CGNodeId(1), false);
        assert!(q.lower_priority(CGNodeId(1), 5));
        assert!(!q.lower_priority(CGNodeId(1), 7), "only decreases");
        assert_eq!(q.pop(), Some(CGNodeId(1)));
        assert_eq!(q.pop(), Some(CGNodeId(0)));
    }

    #[test]
    fn stale_entries_skipped() {
        let mut q = NodeQueue::new(true, 100);
        q.push(CGNodeId(0), false);
        q.lower_priority(CGNodeId(0), 3);
        q.lower_priority(CGNodeId(0), 1);
        assert_eq!(q.pop(), Some(CGNodeId(0)));
        assert_eq!(q.pop(), None, "duplicates are skipped");
    }

    #[test]
    fn priority_of_unknown_node_is_default() {
        let q = NodeQueue::new(true, 42);
        assert_eq!(q.priority_of(CGNodeId(9)), 42);
    }
}
