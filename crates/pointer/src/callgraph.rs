//! The context-qualified call graph built on the fly during pointer
//! analysis (§3.1).

use std::collections::HashMap;

use jir::inst::Loc;
use jir::MethodId;

use crate::context::ContextId;

jir::index_type! {
    /// Id of a call-graph node: a method analyzed in a specific context.
    pub struct CGNodeId, "cg"
}

/// One call edge: `caller` invokes `callee` from the instruction at `loc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallEdge {
    /// Calling node.
    pub caller: CGNodeId,
    /// Call-site location within the caller's method body.
    pub loc: Loc,
    /// Callee node.
    pub callee: CGNodeId,
}

/// The finished call graph: nodes, edges, and per-site target lists.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// `(method, context)` per node.
    pub nodes: Vec<(MethodId, ContextId)>,
    /// All call edges.
    pub edges: Vec<CallEdge>,
    /// Entry nodes (entrypoints in the root context).
    pub entry_nodes: Vec<CGNodeId>,
    site_targets: HashMap<(CGNodeId, Loc), Vec<CGNodeId>>,
    succs: Vec<Vec<CGNodeId>>,
    preds: Vec<Vec<CGNodeId>>,
}

impl CallGraph {
    /// Builds adjacency from raw parts (called by the solver).
    pub fn from_parts(
        nodes: Vec<(MethodId, ContextId)>,
        edges: Vec<CallEdge>,
        entry_nodes: Vec<CGNodeId>,
    ) -> Self {
        let mut site_targets: HashMap<(CGNodeId, Loc), Vec<CGNodeId>> = HashMap::new();
        let mut succs = vec![Vec::new(); nodes.len()];
        let mut preds = vec![Vec::new(); nodes.len()];
        for e in &edges {
            site_targets.entry((e.caller, e.loc)).or_default().push(e.callee);
            if !succs[e.caller.index()].contains(&e.callee) {
                succs[e.caller.index()].push(e.callee);
            }
            if !preds[e.callee.index()].contains(&e.caller) {
                preds[e.callee.index()].push(e.caller);
            }
        }
        CallGraph { nodes, edges, entry_nodes, site_targets, succs, preds }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The method of `node`.
    pub fn method_of(&self, node: CGNodeId) -> MethodId {
        self.nodes[node.index()].0
    }

    /// The context of `node`.
    pub fn context_of(&self, node: CGNodeId) -> ContextId {
        self.nodes[node.index()].1
    }

    /// Callee nodes resolved for the call at `(node, loc)`.
    pub fn targets(&self, node: CGNodeId, loc: Loc) -> &[CGNodeId] {
        self.site_targets.get(&(node, loc)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Unique successor nodes of `node`.
    pub fn succs(&self, node: CGNodeId) -> &[CGNodeId] {
        &self.succs[node.index()]
    }

    /// Unique predecessor nodes of `node`.
    pub fn preds(&self, node: CGNodeId) -> &[CGNodeId] {
        &self.preds[node.index()]
    }

    /// Iterates over node ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = CGNodeId> {
        (0..self.nodes.len()).map(CGNodeId::new)
    }

    /// All nodes analyzing `method` (over every context).
    pub fn nodes_of_method(&self, method: MethodId) -> Vec<CGNodeId> {
        self.iter_nodes().filter(|&n| self.method_of(n) == method).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jir::BlockId;

    #[test]
    fn adjacency_deduplicates() {
        let nodes = vec![(MethodId(0), ContextId(0)), (MethodId(1), ContextId(0))];
        let loc = Loc::new(BlockId(0), 0);
        let edges = vec![
            CallEdge { caller: CGNodeId(0), loc, callee: CGNodeId(1) },
            CallEdge { caller: CGNodeId(0), loc, callee: CGNodeId(1) },
        ];
        let cg = CallGraph::from_parts(nodes, edges, vec![CGNodeId(0)]);
        assert_eq!(cg.succs(CGNodeId(0)), &[CGNodeId(1)]);
        assert_eq!(cg.preds(CGNodeId(1)), &[CGNodeId(0)]);
        assert_eq!(cg.targets(CGNodeId(0), loc).len(), 2, "site targets keep multiplicity");
        assert_eq!(cg.len(), 2);
    }

    #[test]
    fn nodes_of_method_spans_contexts() {
        let nodes = vec![
            (MethodId(5), ContextId(0)),
            (MethodId(5), ContextId(1)),
            (MethodId(6), ContextId(0)),
        ];
        let cg = CallGraph::from_parts(nodes, vec![], vec![]);
        assert_eq!(cg.nodes_of_method(MethodId(5)).len(), 2);
    }
}
