//! # taj-store — persistent on-disk artifact store
//!
//! The daemon's in-memory artifact cache dies with the process: every
//! restart re-analyzes the world. This crate adds the durable tier
//! below it — a directory of content-addressed files, one per entry,
//! that multiple daemon processes can share. Phase-1 facts are the
//! expensive, reusable half of TAJ's pipeline (paper §1, §3); the store
//! is what lets a fleet of daemons amortize them across restarts and
//! across processes.
//!
//! Design constraints, in order:
//!
//! - **Never serve bad bytes.** Every entry carries a header with a
//!   format version, a writer fingerprint, the logical key, the payload
//!   length, and a 128-bit FNV checksum. Any mismatch — truncation,
//!   corruption, a different store version, a different analyzer build,
//!   a hash collision — is a *miss*: the file is quarantined (renamed
//!   aside with a `.quarantined` suffix) for post-mortem, never
//!   returned, and never a panic.
//! - **Atomic visibility.** Writes go to a temp file in the same
//!   directory and are published with `rename(2)`, so a reader (in this
//!   process or another) sees either the complete old entry or the
//!   complete new one, never a torn write.
//! - **Bounded footprint.** A byte budget is enforced by evicting the
//!   oldest-mtime entries (reads bump mtime, making mtime order LRU
//!   order). Eviction rescans the directory, so budgets hold even when
//!   several processes write to one store.
//!
//! The store is key→string: callers bring their own content addressing
//! (the daemon keys serialized reports by source/rules/config/format
//! hashes) and their own fingerprint describing what wrote the entry.

#![warn(missing_docs)]

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime};

/// On-disk format version; bumped on any incompatible layout change.
/// A version mismatch quarantines the entry rather than guessing.
pub const STORE_VERSION: u32 = 1;

const MAGIC: &str = "taj-store";
const ENTRY_EXT: &str = "taj";
const QUARANTINE_SUFFIX: &str = "quarantined";

/// 128-bit FNV-1a over arbitrary bytes — the same content address the
/// in-memory cache uses, so one hashing discipline covers both tiers.
pub fn content_hash(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Counter snapshot for `stats`/`metrics`: the disk tier's analogue of
/// the in-memory cache's `TierStats`, plus store-specific health
/// counters (quarantines, write errors) and the open/replay cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Lookups answered from a valid on-disk entry.
    pub hits: u64,
    /// Lookups that found no entry (or only an invalid one).
    pub misses: u64,
    /// Entries removed to keep the byte budget.
    pub evictions: u64,
    /// Invalid entries renamed aside instead of served.
    pub quarantined: u64,
    /// Failed writes (the store degrades to read-only, never errors out).
    pub write_errors: u64,
    /// Estimated bytes currently on disk (exact after each eviction scan).
    pub bytes_used: u64,
    /// Configured byte budget.
    pub bytes_budget: u64,
    /// Live entries (approximate under multi-process sharing).
    pub entries: u64,
    /// Entries found by the open-time directory replay.
    pub replayed_entries: u64,
    /// Microseconds spent scanning the directory at open.
    pub open_micros: u64,
}

/// The persistent store: a directory of `<keyhash>.taj` files.
///
/// `get` is lock-free (filesystem reads only); `put` serializes its
/// eviction scan behind a mutex. All counters are atomics, so the store
/// can be shared across threads behind an `Arc` without external
/// locking.
pub struct DiskStore {
    dir: PathBuf,
    budget: u64,
    fingerprint: u128,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
    write_errors: AtomicU64,
    bytes_used: AtomicU64,
    entries: AtomicU64,
    replayed: u64,
    open_micros: u64,
    tmp_seq: AtomicU64,
    evict_lock: Mutex<()>,
}

impl DiskStore {
    /// Opens (creating if needed) a store at `dir` bounded at
    /// `budget_bytes`. `fingerprint` identifies the writer's
    /// configuration — entries written under a different fingerprint
    /// are quarantined on read, so an upgraded analyzer never serves a
    /// stale build's bytes.
    ///
    /// The open-time replay scans the directory once to seed the byte
    /// and entry counters (and to sweep temp files left by a crashed
    /// writer); its cost is recorded in [`StoreStats::open_micros`].
    ///
    /// # Errors
    /// Propagates directory creation/read failures.
    pub fn open(
        dir: impl Into<PathBuf>,
        budget_bytes: u64,
        fingerprint: u128,
    ) -> io::Result<DiskStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let started = Instant::now();
        let mut bytes = 0u64;
        let mut entries = 0u64;
        for entry in fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(".tmp-") {
                // A crashed writer's unpublished temp file: never valid.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if name.ends_with(&format!(".{ENTRY_EXT}")) {
                if let Ok(meta) = entry.metadata() {
                    bytes += meta.len();
                    entries += 1;
                }
            }
        }
        let open_micros = started.elapsed().as_micros() as u64;
        Ok(DiskStore {
            dir,
            budget: budget_bytes,
            fingerprint,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            bytes_used: AtomicU64::new(bytes),
            entries: AtomicU64::new(entries),
            replayed: entries,
            open_micros,
            tmp_seq: AtomicU64::new(0),
            evict_lock: Mutex::new(()),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The writer fingerprint entries are stamped with.
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:032x}.{ENTRY_EXT}", content_hash(key.as_bytes())))
    }

    /// Looks up `key`. A valid entry is a hit (its mtime is bumped so
    /// eviction treats it as recently used); a missing file is a miss;
    /// an *invalid* file — truncated, corrupted, version- or
    /// fingerprint-mismatched, or a key collision — is a miss whose
    /// file is renamed to `<name>.quarantined` so it can never poison a
    /// later lookup.
    pub fn get(&self, key: &str) -> Option<String> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // Chaos site: a medium-level read error (bit rot the kernel did
        // not surface) manifests as bytes that fail validation.
        let decoded = if taj_supervise::fail_hook("store.get.read_error").is_some() {
            None
        } else {
            self.decode(key, &bytes)
        };
        match decoded {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Reads refresh mtime so LRU-by-mtime eviction spares hot
                // entries. Best-effort: a failed touch only skews LRU.
                if let Ok(f) = File::open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(payload)
            }
            None => {
                self.quarantine(&path, bytes.len() as u64);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Validates one entry's bytes against `key`; `None` means invalid.
    fn decode(&self, key: &str, bytes: &[u8]) -> Option<String> {
        let newline = bytes.iter().position(|&b| b == b'\n')?;
        let header = std::str::from_utf8(&bytes[..newline]).ok()?;
        let payload = &bytes[newline + 1..];
        // `key=` is the last field so logical keys may contain spaces.
        let mut parts = header.splitn(6, ' ');
        if parts.next() != Some(MAGIC) {
            return None;
        }
        if parts.next() != Some(format!("v{STORE_VERSION}").as_str()) {
            return None;
        }
        let fp = parts.next()?.strip_prefix("fp=")?;
        if u128::from_str_radix(fp, 16).ok()? != self.fingerprint {
            return None;
        }
        let len: usize = parts.next()?.strip_prefix("len=")?.parse().ok()?;
        let sum = parts.next()?.strip_prefix("sum=")?;
        let stored_key = parts.next()?.strip_prefix("key=")?;
        if stored_key != key || payload.len() != len {
            return None;
        }
        if u128::from_str_radix(sum, 16).ok()? != content_hash(payload) {
            return None;
        }
        String::from_utf8(payload.to_vec()).ok()
    }

    fn quarantine(&self, path: &Path, len: u64) {
        let mut aside = path.as_os_str().to_owned();
        aside.push(format!(".{QUARANTINE_SUFFIX}"));
        if fs::rename(path, &aside).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            let _ = self.bytes_used.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_sub(len))
            });
            let _ = self
                .entries
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| Some(n.saturating_sub(1)));
        }
    }

    /// Inserts (or replaces) `key` → `payload`, then evicts
    /// oldest-mtime entries until the byte budget holds (sparing the
    /// entry just written). Write failures are counted, not propagated:
    /// a full or read-only disk degrades the store to a cache miss
    /// machine, never an analysis failure.
    pub fn put(&self, key: &str, payload: &str) {
        debug_assert!(!key.contains('\n'), "store keys must be single-line");
        let path = self.entry_path(key);
        let header = format!(
            "{MAGIC} v{STORE_VERSION} fp={:032x} len={} sum={:032x} key={key}\n",
            self.fingerprint,
            payload.len(),
            content_hash(payload.as_bytes()),
        );
        let mut bytes = Vec::with_capacity(header.len() + payload.len());
        bytes.extend_from_slice(header.as_bytes());
        bytes.extend_from_slice(payload.as_bytes());
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let old_len = fs::metadata(&path).map(|m| m.len()).ok();
        // Chaos site: a torn write that still gets published — the
        // header's `len=`/`sum=` fields must catch it on the next read.
        let write_len = if taj_supervise::fail_hook("store.put.short_write").is_some() {
            bytes.len() / 2
        } else {
            bytes.len()
        };
        let published = fs::write(&tmp, &bytes[..write_len]).and_then(|()| fs::rename(&tmp, &path));
        if let Err(_e) = published {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            let _ = fs::remove_file(&tmp);
            return;
        }
        match old_len {
            Some(old) => {
                let _ = self.bytes_used.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                    Some(b.saturating_sub(old))
                });
            }
            None => {
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.bytes_used.fetch_add(write_len as u64, Ordering::Relaxed);
        if self.bytes_used.load(Ordering::Relaxed) > self.budget {
            self.evict(&path);
        }
    }

    /// Walks the directory, recomputes exact usage (healing any drift
    /// from sibling processes), and removes oldest-mtime entries until
    /// the budget holds. `keep` — the entry just written — is never a
    /// victim, so one oversized artifact still persists.
    fn evict(&self, keep: &Path) {
        let Ok(_guard) = self.evict_lock.lock() else { return };
        let Ok(dir) = fs::read_dir(&self.dir) else { return };
        let mut files: Vec<(PathBuf, SystemTime, u64)> = Vec::new();
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                files.push((path, meta.modified().unwrap_or(SystemTime::UNIX_EPOCH), meta.len()));
            }
        }
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        self.entries.store(files.len() as u64, Ordering::Relaxed);
        files.sort_by_key(|(_, mtime, _)| *mtime);
        for (path, _, len) in &files {
            if total <= self.budget {
                break;
            }
            if path == keep {
                continue;
            }
            if fs::remove_file(path).is_ok() {
                total -= len;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                let _ = self.entries.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    Some(n.saturating_sub(1))
                });
            }
        }
        self.bytes_used.store(total, Ordering::Relaxed);
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            bytes_used: self.bytes_used.load(Ordering::Relaxed),
            bytes_budget: self.budget,
            entries: self.entries.load(Ordering::Relaxed),
            replayed_entries: self.replayed,
            open_micros: self.open_micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "taj-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry_file(store: &DiskStore, key: &str) -> PathBuf {
        store.entry_path(key)
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::open(&dir, 1 << 20, 42).unwrap();
        assert_eq!(store.get("report:a"), None);
        store.put("report:a", "{\"x\":1}");
        assert_eq!(store.get("report:a").as_deref(), Some("{\"x\":1}"));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.quarantined), (1, 1, 0));
        assert_eq!(s.entries, 1);
        assert!(s.bytes_used > 0);
        // Replacement keeps one entry and reflects the new size.
        store.put("report:a", "{\"x\":2}");
        assert_eq!(store.get("report:a").as_deref(), Some("{\"x\":2}"));
        assert_eq!(store.stats().entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_with_spaces_round_trip() {
        let dir = temp_dir("spaces");
        let store = DiskStore::open(&dir, 1 << 20, 1).unwrap();
        let key = "report:deadbeef:My Config Name:sarif";
        store.put(key, "payload");
        assert_eq!(store.get(key).as_deref(), Some("payload"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_replays_entries_and_serves_them() {
        let dir = temp_dir("reopen");
        {
            let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
            store.put("k1", "v1");
            store.put("k2", "v2");
        }
        let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
        let s = store.stats();
        assert_eq!(s.replayed_entries, 2);
        assert_eq!(s.entries, 2);
        assert!(s.bytes_used > 0);
        assert_eq!(store.get("k1").as_deref(), Some("v1"));
        assert_eq!(store.get("k2").as_deref(), Some("v2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined_not_served() {
        let dir = temp_dir("truncate");
        let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
        store.put("k", "a long payload that will be cut short");
        let path = entry_file(&store, "k");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(store.get("k"), None, "truncated entry must miss");
        let s = store.stats();
        assert_eq!(s.quarantined, 1);
        assert!(!path.exists(), "invalid entry renamed aside");
        let aside = dir.join(format!(
            "{}.{}",
            path.file_name().unwrap().to_string_lossy(),
            QUARANTINE_SUFFIX
        ));
        assert!(aside.exists(), "quarantine file kept for post-mortem");
        // A later lookup is a clean miss, and the slot is writable again.
        assert_eq!(store.get("k"), None);
        store.put("k", "fresh");
        assert_eq!(store.get("k").as_deref(), Some("fresh"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_is_quarantined() {
        let dir = temp_dir("corrupt");
        let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
        store.put("k", "payload-bytes");
        let path = entry_file(&store, "k");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip one payload byte: checksum must catch it
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get("k"), None);
        assert_eq!(store.stats().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_quarantined() {
        let dir = temp_dir("fingerprint");
        {
            let old = DiskStore::open(&dir, 1 << 20, 1).unwrap();
            old.put("k", "written by an old build");
        }
        let new = DiskStore::open(&dir, 1 << 20, 2).unwrap();
        assert_eq!(new.get("k"), None, "other fingerprint must not be served");
        assert_eq!(new.stats().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_file_is_quarantined_without_panic() {
        let dir = temp_dir("garbage");
        let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
        let path = entry_file(&store, "k");
        fs::write(&path, b"\xff\xfe not a store entry at all").unwrap();
        assert_eq!(store.get("k"), None);
        assert_eq!(store.stats().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicts_oldest_mtime_first_and_spares_the_new_entry() {
        let dir = temp_dir("evict");
        // Each entry is ~215 bytes (header + 100-byte payload): the
        // budget fits two entries but not three.
        let payload = "x".repeat(100);
        let store = DiskStore::open(&dir, 460, 7).unwrap();
        store.put("old", &payload);
        store.put("mid", &payload);
        // Backdate "mid" *below* "old", then make "old" the LRU victim's
        // peer: explicit mtimes beat sleeping for clock granularity.
        let now = SystemTime::now();
        File::open(entry_file(&store, "old"))
            .unwrap()
            .set_modified(now - Duration::from_secs(100))
            .unwrap();
        File::open(entry_file(&store, "mid"))
            .unwrap()
            .set_modified(now - Duration::from_secs(50))
            .unwrap();
        store.put("new", &payload);
        let s = store.stats();
        assert!(s.evictions >= 1, "{s:?}");
        assert!(s.bytes_used <= 460, "{s:?}");
        assert_eq!(store.get("old"), None, "oldest mtime evicted first");
        assert_eq!(store.get("new").as_deref(), Some(payload.as_str()), "new entry spared");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_entry_still_persists() {
        let dir = temp_dir("oversized");
        let store = DiskStore::open(&dir, 10, 7).unwrap();
        store.put("big", "a payload far beyond the ten-byte budget");
        assert_eq!(
            store.get("big").as_deref(),
            Some("a payload far beyond the ten-byte budget"),
            "the just-written entry is never its own victim"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = temp_dir("tmpsweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".tmp-999-0"), b"half a write").unwrap();
        let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
        assert!(!dir.join(".tmp-999-0").exists(), "crashed writer's tmp swept");
        assert_eq!(store.stats().replayed_entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Fault-injection coverage for the chaos sites: every injected
    /// disk fault must end in a quarantine (a miss) and a writable
    /// slot, never a panic or served bytes. Serialized via
    /// `FailScenario::setup`'s global lock.
    #[cfg(feature = "taj_failpoints")]
    mod chaos {
        use super::*;
        use taj_supervise::failpoints::{self, FailAction, FailScenario};

        #[test]
        fn short_write_is_quarantined_on_read_not_served() {
            let _scenario = FailScenario::setup();
            let dir = temp_dir("fp-shortwrite");
            let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
            failpoints::configure("store.put.short_write", FailAction::Cancel);
            store.put("k", "a payload long enough that half of it is torn off");
            failpoints::remove("store.put.short_write");
            assert_eq!(store.get("k"), None, "torn entry must miss, not serve");
            let s = store.stats();
            assert_eq!(s.quarantined, 1, "{s:?}");
            // The slot heals: a clean rewrite serves again.
            store.put("k", "fresh");
            assert_eq!(store.get("k").as_deref(), Some("fresh"));
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn read_error_is_quarantined_then_recovers() {
            let _scenario = FailScenario::setup();
            let dir = temp_dir("fp-readerror");
            let store = DiskStore::open(&dir, 1 << 20, 7).unwrap();
            store.put("k", "good payload");
            failpoints::configure("store.get.read_error", FailAction::Cancel);
            assert_eq!(store.get("k"), None, "injected read error must miss");
            failpoints::remove("store.get.read_error");
            let s = store.stats();
            assert_eq!((s.quarantined, s.hits), (1, 0), "{s:?}");
            // Conservative by design: the entry was quarantined (we
            // cannot tell bit rot from a bad read), so the next lookup
            // is a clean miss and the slot is writable.
            assert_eq!(store.get("k"), None);
            store.put("k", "rewritten");
            assert_eq!(store.get("k").as_deref(), Some("rewritten"));
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn two_stores_share_one_directory() {
        // Two handles on one dir model two daemon processes: a write
        // through one is immediately a valid hit through the other.
        let dir = temp_dir("shared");
        let a = DiskStore::open(&dir, 1 << 20, 7).unwrap();
        let b = DiskStore::open(&dir, 1 << 20, 7).unwrap();
        a.put("k", "written by A");
        assert_eq!(b.get("k").as_deref(), Some("written by A"));
        assert_eq!(b.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
