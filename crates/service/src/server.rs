//! The daemon: socket listener, connection handlers, job dispatch.
//!
//! One handler thread per connection reads NDJSON requests sequentially;
//! `analyze` (and the debug jobs) are dispatched to the shared worker
//! pool, so parallelism comes from concurrent connections, bounded by the
//! pool size. Networking is std-only: `TcpListener`/`UnixListener` set to
//! non-blocking accept with a short poll so the accept loop can observe
//! the shutdown flag without needing an async runtime.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::Value;
use taj_core::{
    analyze_with_phase1_opts, parse_rules, prepare, run_phase1_incremental, run_phase1_traced,
    Phase1, PreparedProgram, Recorder, RuleSet, RunOptions, SummaryStore, Supervisor, TajConfig,
    TajError,
};

use taj_obs::metrics::{Exposition, Histogram};
use taj_obs::{AttrValue, FlightRecorder, RequestRecord, TraceEvent};
use taj_store::DiskStore;

use crate::cache::{
    content_hash, phase1_bytes, prepared_bytes, summary_bytes, Artifact, ArtifactCache,
    ArtifactKey, TierStats, TIER_NAMES,
};
use crate::pool::{Job, WorkerPool};
use crate::protocol::{
    batch_item_err, batch_item_err_retry, batch_item_ok, batch_result_raw, err_response,
    err_response_retry, err_response_traced_retry, ok_response_raw, ok_response_raw_traced,
    ok_response_raw_traced_delta, parse_request, AnalyzeDeltaRequest, AnalyzeRequest, BatchRequest,
    Command, ErrorCode, OutputFormat, ProtocolError, PROTOCOL_VERSION,
};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// A Unix domain socket at this path (created on bind, removed on
    /// shutdown).
    Unix(PathBuf),
    /// A TCP address such as `127.0.0.1:0` (port 0 picks an ephemeral
    /// port, reported by [`ServerHandle::addr`]).
    Tcp(String),
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address.
    pub bind: Bind,
    /// Worker threads (0 means "pick from available parallelism").
    pub workers: usize,
    /// Cache byte budget.
    pub cache_bytes: usize,
    /// Default per-request deadline; `None` waits indefinitely.
    pub default_timeout_ms: Option<u64>,
    /// Enables the `debug_sleep`/`debug_panic` test commands.
    pub debug: bool,
    /// Directory for the persistent artifact store — the durable tier
    /// below the in-memory cache. `None` disables persistence.
    pub store_dir: Option<PathBuf>,
    /// Byte budget of the on-disk store (LRU-mtime eviction).
    pub store_bytes: u64,
    /// Admission-queue bound: jobs submitted but not yet picked up by a
    /// worker. `0` means "size from the worker count" (4× workers).
    /// When the queue is full, new work is rejected immediately with an
    /// `overloaded` error carrying a `retry_after_ms` hint, instead of
    /// queueing until every deadline has expired.
    pub max_queue: usize,
    /// Flight-recorder capacity: completed analyze-class requests whose
    /// span trees are retained in a bounded ring for after-the-fact
    /// forensics (`trace <id>` / `last_traces`). `0` disables capture;
    /// recording never perturbs result bytes.
    pub flight_records: usize,
    /// Requests slower than this many milliseconds are appended to the
    /// structured slow-request log on stderr (degraded, panicked, shed,
    /// and timed-out requests are always logged). `None` disables the
    /// latency trigger.
    pub slow_ms: Option<u64>,
}

impl ServeOptions {
    /// Sensible defaults on a TCP ephemeral port: workers from available
    /// parallelism (clamped to 2..=8), a 64 MiB cache, no timeout, no
    /// persistent store.
    pub fn tcp_ephemeral() -> ServeOptions {
        ServeOptions {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 0,
            cache_bytes: 64 << 20,
            default_timeout_ms: None,
            debug: false,
            store_dir: None,
            store_bytes: 256 << 20,
            max_queue: 0,
            flight_records: DEFAULT_FLIGHT_RECORDS,
            slow_ms: None,
        }
    }
}

/// Default flight-recorder ring capacity (requests retained).
pub const DEFAULT_FLIGHT_RECORDS: usize = 256;

/// Fingerprint stamped into on-disk entries: the crate version plus the
/// protocol version. A daemon build whose serialized reports could
/// differ gets a different fingerprint, so its store entries are
/// quarantined rather than served by the wrong build.
pub fn store_fingerprint() -> u128 {
    content_hash(
        format!("taj-service {} proto {PROTOCOL_VERSION}", env!("CARGO_PKG_VERSION")).as_bytes(),
    )
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get()).clamp(2, 8)
}

/// The address actually bound.
#[derive(Clone, Debug)]
pub enum BoundAddr {
    /// Unix socket path.
    Unix(PathBuf),
    /// Resolved TCP address (ephemeral port filled in).
    Tcp(SocketAddr),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            BoundAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Counters shared by every connection handler.
#[derive(Default)]
struct ServiceCounters {
    requests: AtomicU64,
    analyze_requests: AtomicU64,
    batch_requests: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    prepare_runs: AtomicU64,
    phase1_runs: AtomicU64,
    phase2_runs: AtomicU64,
    degraded_runs: AtomicU64,
    requests_shed: AtomicU64,
    delta_requests: AtomicU64,
    /// `analyze_delta` requests whose empty edit region let them reuse
    /// the base program's phase-1 artifact outright.
    delta_phase1_reused: AtomicU64,
    /// Method summaries re-solved across all `analyze_delta` requests.
    delta_methods_resolved: AtomicU64,
    /// Method summaries total (resolved + reused) across all
    /// `analyze_delta` requests; the resolved/total ratio is the work
    /// the incremental path saved.
    delta_methods_total: AtomicU64,
}

/// Server state shared between the accept loop, handlers, and workers.
struct ServiceState {
    cache: Mutex<ArtifactCache>,
    /// The durable tier below the in-memory cache: serialized reports
    /// keyed by the same content addresses, shared across restarts and
    /// across daemon processes pointed at one directory.
    store: Option<Arc<DiskStore>>,
    jobs: Mutex<Option<Sender<(Job, Supervisor)>>>,
    shutdown: Arc<AtomicBool>,
    counters: ServiceCounters,
    panicked: Arc<AtomicU64>,
    reclaimed: Arc<AtomicU64>,
    workers: usize,
    default_timeout_ms: Option<u64>,
    debug: bool,
    /// Admission bound: jobs submitted but not yet picked up by a worker.
    max_queue: usize,
    /// Current admission-queue depth (incremented at submit, decremented
    /// when a worker picks the job up).
    queue_depth: AtomicU64,
    started: Instant,
    /// Time a dispatched job spent queued before a worker picked it up.
    queue_wait: Histogram,
    /// Time a dispatched job spent running on its worker.
    run_time: Histogram,
    /// Source of generated analyze trace ids (when the client sends none).
    trace_seq: AtomicU64,
    /// Bounded ring of completed request span trees (the flight
    /// recorder). Capture happens on connection threads at response-build
    /// time — O(1) per request, never on the worker pool.
    flight: FlightRecorder,
    /// Slow-request log threshold (ms); `None` disables the latency
    /// trigger (degraded/panicked/shed/timed-out requests still log).
    slow_ms: Option<u64>,
}

/// A running daemon.
pub struct ServerHandle {
    addr: BoundAddr,
    state: Arc<ServiceState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with any ephemeral TCP port resolved).
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Asks the daemon to drain and exit, as if a `shutdown` request
    /// arrived.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop to exit and the worker pool to drain.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Binds a listener (non-blocking, so accept loops can poll a shutdown
/// flag) and resolves the bound address. Shared by the daemon and the
/// router front-end.
pub(crate) fn bind_listener(bind: &Bind) -> io::Result<(Listener, BoundAddr)> {
    let (listener, addr) = match bind {
        Bind::Tcp(spec) => {
            let l = TcpListener::bind(spec.as_str())?;
            let a = l.local_addr()?;
            (Listener::Tcp(l), BoundAddr::Tcp(a))
        }
        Bind::Unix(path) => {
            // A stale socket file from a crashed daemon would fail bind.
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)?;
            (Listener::Unix(l), BoundAddr::Unix(path.clone()))
        }
    };
    match &listener {
        Listener::Tcp(l) => l.set_nonblocking(true)?,
        Listener::Unix(l) => l.set_nonblocking(true)?,
    }
    Ok((listener, addr))
}

/// Per-line request handler: returns the response line and whether the
/// connection should close afterwards.
pub(crate) type LineHandler = Arc<dyn Fn(&str) -> (String, bool) + Send + Sync>;

/// Binds and starts the daemon, returning once it is accepting.
///
/// # Errors
/// Propagates bind/listen failures.
pub fn serve(options: ServeOptions) -> io::Result<ServerHandle> {
    let workers = if options.workers == 0 { default_workers() } else { options.workers };
    let (listener, addr) = bind_listener(&options.bind)?;
    let store = match &options.store_dir {
        Some(dir) => {
            Some(Arc::new(DiskStore::open(dir, options.store_bytes, store_fingerprint())?))
        }
        None => None,
    };
    let pool = WorkerPool::new(workers);
    let state = Arc::new(ServiceState {
        cache: Mutex::new(ArtifactCache::new(options.cache_bytes)),
        store,
        jobs: Mutex::new(None),
        shutdown: Arc::new(AtomicBool::new(false)),
        counters: ServiceCounters::default(),
        panicked: pool.panic_counter(),
        reclaimed: pool.reclaim_counter(),
        workers: pool.size(),
        default_timeout_ms: options.default_timeout_ms,
        debug: options.debug,
        max_queue: if options.max_queue == 0 {
            pool.size().saturating_mul(4)
        } else {
            options.max_queue
        },
        queue_depth: AtomicU64::new(0),
        started: Instant::now(),
        queue_wait: Histogram::latency(),
        run_time: Histogram::latency(),
        trace_seq: AtomicU64::new(0),
        flight: FlightRecorder::new(options.flight_records),
        slow_ms: options.slow_ms,
    });
    // Handlers submit through a dedicated channel forwarded to the pool,
    // so the accept loop can cut off new submissions (drop the forwarder)
    // while queued jobs still drain.
    let (job_tx, job_rx) = channel::<(Job, Supervisor)>();
    *state.jobs.lock().expect("jobs lock") = Some(job_tx);
    let forward_pool = pool;
    let forwarder = std::thread::Builder::new()
        .name("taj-job-forwarder".to_string())
        .spawn(move || {
            while let Ok((job, supervisor)) = job_rx.recv() {
                if forward_pool.submit_supervised(job, supervisor).is_err() {
                    break;
                }
            }
            forward_pool.shutdown();
        })
        .expect("spawn forwarder");

    let accept_state = Arc::clone(&state);
    let accept_addr = addr.clone();
    let handler: LineHandler = {
        let state = Arc::clone(&state);
        Arc::new(move |line: &str| handle_line(line, &state))
    };
    let accept_thread = std::thread::Builder::new()
        .name("taj-accept".to_string())
        .spawn(move || {
            accept_loop(&listener, &accept_state.shutdown, &handler);
            // Stop accepting new jobs, then wait for the queue to drain.
            accept_state.jobs.lock().expect("jobs lock").take();
            let _ = forwarder.join();
            if let BoundAddr::Unix(path) = &accept_addr {
                let _ = std::fs::remove_file(path);
            }
        })
        .expect("spawn accept loop");

    Ok(ServerHandle { addr, state, accept_thread: Some(accept_thread) })
}

pub(crate) fn accept_loop(listener: &Listener, shutdown: &Arc<AtomicBool>, handler: &LineHandler) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Fault-injection site (no-op in default builds): a `Delay`
        // action here stalls the accept loop deterministically, modeling
        // a listener starved by the OS or a slow-accepting peer.
        let _ = taj_supervise::fail_hook("service.accept.stall");
        let accepted: io::Result<Box<dyn Conn>> = match listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // One-line requests/responses: Nagle + delayed ACK would
                // add ~40ms per hop to every exchange.
                let _ = s.set_nodelay(true);
                Box::new(s) as Box<dyn Conn>
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>),
        };
        match accepted {
            Ok(conn) => {
                let handler = Arc::clone(handler);
                let _ = std::thread::Builder::new()
                    .name("taj-conn".to_string())
                    .spawn(move || handle_conn(conn, &handler));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Minimal duplex-stream abstraction over TCP and Unix sockets.
pub(crate) trait Conn: Read + Write + Send {
    fn reader(&self) -> io::Result<Box<dyn Read + Send>>;
}

impl Conn for TcpStream {
    fn reader(&self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Conn for UnixStream {
    fn reader(&self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

fn handle_conn(mut conn: Box<dyn Conn>, handler: &LineHandler) {
    let Ok(read_half) = conn.reader() else { return };
    let mut lines = BufReader::new(read_half).lines();
    while let Some(Ok(line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let (response, close_after) = handler(&line);
        // Fault-injection site (no-op in default builds): when tripped,
        // write only half the response and drop the connection — the
        // client must treat the torn line as an I/O error, never as a
        // parseable answer.
        if taj_supervise::fail_hook("service.conn.write").is_some() {
            let half = &response.as_bytes()[..response.len() / 2];
            let _ = conn.write_all(half);
            let _ = conn.flush();
            return;
        }
        if conn.write_all(response.as_bytes()).is_err() || conn.write_all(b"\n").is_err() {
            return;
        }
        let _ = conn.flush();
        if close_after {
            return;
        }
    }
}

/// Processes one request line; returns the response and whether the
/// connection should close afterwards (shutdown acknowledged).
fn handle_line(line: &str, state: &Arc<ServiceState>) -> (String, bool) {
    state.counters.requests.fetch_add(1, Ordering::SeqCst);
    let request = match parse_request(line, state.debug) {
        Ok(r) => r,
        Err((code, msg)) => {
            state.counters.errors.fetch_add(1, Ordering::SeqCst);
            return (err_response(&Value::Null, code, &msg), false);
        }
    };
    let id = request.id;
    let outcome = match request.command {
        Command::Configs => Ok(configs_value()),
        Command::Stats => stats_raw(state),
        Command::Metrics => metrics_raw(state),
        Command::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            return (ok_response_raw(&id, "{\"draining\":true}"), true);
        }
        Command::Analyze(req) => {
            state.counters.analyze_requests.fetch_add(1, Ordering::SeqCst);
            // Echo the client's trace id, or mint one; either way every
            // analyze response (success or error) carries it in the
            // envelope, never in the cacheable result bytes.
            let trace_id = req.trace_id.clone().unwrap_or_else(|| mint_trace_id(state));
            let parent = req.trace_parent.clone();
            let threads = req.threads;
            let timeout_ms = req.timeout_ms.or(state.default_timeout_ms);
            let rec = request_recorder(state);
            let started = Instant::now();
            let outcome = dispatch(state, timeout_ms, rec.clone(), {
                let state = Arc::clone(state);
                let rec = rec.clone();
                move |sup: &Supervisor| run_analyze(&state, &req, sup, &rec)
            });
            return match outcome {
                Ok(raw) => {
                    let line = ok_response_raw_traced(&id, &trace_id, &raw);
                    capture_flight(
                        state,
                        &rec,
                        &trace_id,
                        parent.as_deref(),
                        threads,
                        started,
                        "ok",
                        None,
                    );
                    (line, false)
                }
                Err((code, msg)) => {
                    state.counters.errors.fetch_add(1, Ordering::SeqCst);
                    if code == ErrorCode::Timeout {
                        state.counters.timeouts.fetch_add(1, Ordering::SeqCst);
                    }
                    let hint = shed_retry_hint(state, code);
                    let line = err_response_traced_retry(&id, &trace_id, code, &msg, hint);
                    capture_flight(
                        state,
                        &rec,
                        &trace_id,
                        parent.as_deref(),
                        threads,
                        started,
                        outcome_of(code),
                        Some(code),
                    );
                    (line, false)
                }
            };
        }
        Command::AnalyzeDelta(req) => {
            state.counters.delta_requests.fetch_add(1, Ordering::SeqCst);
            let trace_id = req.request.trace_id.clone().unwrap_or_else(|| mint_trace_id(state));
            let parent = req.request.trace_parent.clone();
            let threads = req.request.threads;
            let timeout_ms = req.request.timeout_ms.or(state.default_timeout_ms);
            let rec = request_recorder(state);
            let started = Instant::now();
            // The envelope needs both the result and the delta metadata,
            // so the job builds the full response line itself (the
            // result bytes inside it stay byte-par with plain `analyze`).
            let outcome = dispatch(state, timeout_ms, rec.clone(), {
                let state = Arc::clone(state);
                let id = id.clone();
                let trace_id = trace_id.clone();
                let rec = rec.clone();
                move |sup: &Supervisor| {
                    let (delta, raw) = run_analyze_delta(&state, &req, sup, &rec)?;
                    Ok(ok_response_raw_traced_delta(&id, &trace_id, &delta, &raw))
                }
            });
            return match outcome {
                Ok(line) => {
                    capture_flight(
                        state,
                        &rec,
                        &trace_id,
                        parent.as_deref(),
                        threads,
                        started,
                        "ok",
                        None,
                    );
                    (line, false)
                }
                Err((code, msg)) => {
                    state.counters.errors.fetch_add(1, Ordering::SeqCst);
                    if code == ErrorCode::Timeout {
                        state.counters.timeouts.fetch_add(1, Ordering::SeqCst);
                    }
                    let hint = shed_retry_hint(state, code);
                    let line = err_response_traced_retry(&id, &trace_id, code, &msg, hint);
                    capture_flight(
                        state,
                        &rec,
                        &trace_id,
                        parent.as_deref(),
                        threads,
                        started,
                        outcome_of(code),
                        Some(code),
                    );
                    (line, false)
                }
            };
        }
        Command::Batch(batch) => {
            state.counters.batch_requests.fetch_add(1, Ordering::SeqCst);
            return (ok_response_raw(&id, &run_batch(state, batch)), false);
        }
        Command::Trace { trace_id } => trace_raw(state, &trace_id),
        Command::LastTraces { limit } => Ok(last_traces_raw(state, limit)),
        Command::DebugSleep { ms, timeout_ms } => {
            let timeout_ms = timeout_ms.or(state.default_timeout_ms);
            dispatch(state, timeout_ms, Recorder::disabled(), move |sup: &Supervisor| {
                debug_sleep(ms, sup)
            })
        }
        Command::DebugPanic => {
            dispatch(state, state.default_timeout_ms, Recorder::disabled(), |_: &Supervisor| {
                panic!("debug_panic requested")
            })
        }
    };
    match outcome {
        Ok(raw) => (ok_response_raw(&id, &raw), false),
        Err((code, msg)) => {
            state.counters.errors.fetch_add(1, Ordering::SeqCst);
            if code == ErrorCode::Timeout {
                state.counters.timeouts.fetch_add(1, Ordering::SeqCst);
            }
            (err_response_retry(&id, code, &msg, shed_retry_hint(state, code)), false)
        }
    }
}

/// The `retry_after_ms` hint attached to `overloaded` rejections: scales
/// with the backlog per worker (each queued job is roughly one job-time
/// of delay), capped at one second so the hint never parks clients
/// longer than the queue could possibly take to drain. Other error
/// codes get no hint.
fn shed_retry_hint(state: &Arc<ServiceState>, code: ErrorCode) -> Option<u64> {
    if code != ErrorCode::Overloaded {
        return None;
    }
    let depth = state.queue_depth.load(Ordering::SeqCst);
    let per_worker = depth / state.workers.max(1) as u64 + 1;
    Some((25 * per_worker).min(1_000))
}

/// Submits `work` to the pool and waits for its result, applying the
/// per-request deadline. The job runs under a [`Supervisor`] carrying
/// that deadline; when the wait times out, the supervisor is *cancelled*
/// so the cooperative checks inside the analysis bring the worker home
/// within one check interval instead of leaking it to the orphaned job
/// (the pool counts the reclaim). A worker panic surfaces as
/// `worker_panic` (the result channel drops without a message); the
/// deadline as `timeout`.
fn dispatch<F>(
    state: &Arc<ServiceState>,
    timeout_ms: Option<u64>,
    rec: Recorder,
    work: F,
) -> Result<String, ProtocolError>
where
    F: FnOnce(&Supervisor) -> Result<String, ProtocolError> + Send + 'static,
{
    await_job(submit_job(state, timeout_ms, rec, work)?)
}

/// A job submitted to the pool but not yet collected. Splitting
/// submission from collection lets `batch` push every item into the pool
/// before waiting on any of them, so items run concurrently while the
/// envelope is still assembled in order.
struct PendingJob {
    rx: std::sync::mpsc::Receiver<Result<String, ProtocolError>>,
    supervisor: Supervisor,
    timeout_ms: Option<u64>,
    submitted: Instant,
}

fn submit_job<F>(
    state: &Arc<ServiceState>,
    timeout_ms: Option<u64>,
    rec: Recorder,
    work: F,
) -> Result<PendingJob, ProtocolError>
where
    F: FnOnce(&Supervisor) -> Result<String, ProtocolError> + Send + 'static,
{
    if state.shutdown.load(Ordering::SeqCst) {
        return Err((ErrorCode::ShuttingDown, "daemon is draining".to_string()));
    }
    // Admission control: reject immediately when the queue of not-yet-
    // started jobs is full. Rejecting here — before a supervisor or a
    // result channel exists — keeps a shed request O(1), so an
    // overloaded daemon stays responsive instead of queueing work it
    // will only time out on. `fetch_add` then check keeps the gate
    // race-free: concurrent submitters each reserve a slot and the
    // losers give theirs back.
    let depth = state.queue_depth.fetch_add(1, Ordering::SeqCst);
    if depth >= state.max_queue as u64 {
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        state.counters.requests_shed.fetch_add(1, Ordering::SeqCst);
        return Err((
            ErrorCode::Overloaded,
            format!("admission queue full ({} queued, max {})", depth, state.max_queue),
        ));
    }
    let supervisor = match timeout_ms {
        Some(ms) => Supervisor::new().with_deadline(Duration::from_millis(ms)),
        None => Supervisor::new(),
    };
    let (tx, rx) = channel::<Result<String, ProtocolError>>();
    // This catch runs before the pool's own per-job catch, so count the
    // panic here — the shared counter backs the `worker_panics` stat.
    let panicked = Arc::clone(&state.panicked);
    let job_sup = supervisor.clone();
    let metrics_state = Arc::clone(state);
    let submitted = Instant::now();
    let job: Job = Box::new(move || {
        // The job has left the admission queue: free its slot first so
        // admission tracks queued-not-started work, not running work.
        metrics_state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        // The gap between submission and this first instruction is queue
        // wait: how long the job sat behind other work in the pool.
        let wait = submitted.elapsed();
        metrics_state.queue_wait.observe(wait.as_secs_f64());
        if rec.is_enabled() {
            let wait_us = wait.as_micros() as u64;
            rec.record(TraceEvent {
                name: "queue.wait",
                start_us: rec.now_us().saturating_sub(wait_us),
                dur_us: Some(wait_us),
                attrs: Vec::new(),
            });
        }
        let started = Instant::now();
        let run_start_us = rec.now_us();
        let result = catch_unwind(AssertUnwindSafe(|| work(&job_sup))).unwrap_or_else(|_| {
            panicked.fetch_add(1, Ordering::SeqCst);
            Err((ErrorCode::WorkerPanic, "analysis worker panicked".into()))
        });
        let run = started.elapsed();
        metrics_state.run_time.observe(run.as_secs_f64());
        if rec.is_enabled() {
            rec.record(TraceEvent {
                name: "run",
                start_us: run_start_us,
                dur_us: Some(run.as_micros() as u64),
                attrs: Vec::new(),
            });
        }
        let _ = tx.send(result);
    });
    let sent = match state.jobs.lock() {
        Ok(jobs) => match jobs.as_ref() {
            Some(sender) => sender
                .send((job, supervisor.clone()))
                .map_err(|_| (ErrorCode::ShuttingDown, "daemon is draining".to_string())),
            None => Err((ErrorCode::ShuttingDown, "daemon is draining".to_string())),
        },
        Err(_) => Err(poisoned()),
    };
    if let Err(e) = sent {
        // The job never entered the queue: give its admission slot back.
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        return Err(e);
    }
    Ok(PendingJob { rx, supervisor, timeout_ms, submitted })
}

fn await_job(pending: PendingJob) -> Result<String, ProtocolError> {
    // The deadline is measured from submission, so a batch that collects
    // items one by one does not grant later items extra time.
    let received = match pending.timeout_ms {
        Some(ms) => {
            let deadline = pending.submitted + Duration::from_millis(ms);
            let remaining = deadline.saturating_duration_since(Instant::now());
            pending.rx.recv_timeout(remaining)
        }
        None => pending.rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
    };
    match received {
        Ok(result) => result,
        Err(RecvTimeoutError::Timeout) => {
            // Nobody is listening for the result any more: tell the job
            // to stop so its worker is reclaimed instead of leaked.
            pending.supervisor.cancel();
            Err((
                ErrorCode::Timeout,
                format!("request exceeded its {}ms deadline", pending.timeout_ms.unwrap_or(0)),
            ))
        }
        // The job dropped its sender without replying: the closure itself
        // panicked outside our catch (should be unreachable, but stay
        // structured rather than hanging).
        Err(RecvTimeoutError::Disconnected) => {
            Err((ErrorCode::WorkerPanic, "analysis worker panicked".to_string()))
        }
    }
}

fn mint_trace_id(state: &Arc<ServiceState>) -> String {
    format!("taj-{:016x}", state.trace_seq.fetch_add(1, Ordering::SeqCst) + 1)
}

/// The per-request recorder: wall-clock when the flight recorder is on,
/// disabled (a single pointer test on every span site) otherwise.
fn request_recorder(state: &Arc<ServiceState>) -> Recorder {
    if state.flight.is_enabled() {
        Recorder::new()
    } else {
        Recorder::disabled()
    }
}

/// Flight-record outcome classification for failed requests.
fn outcome_of(code: ErrorCode) -> &'static str {
    match code {
        ErrorCode::Timeout => "timeout",
        ErrorCode::WorkerPanic => "panic",
        ErrorCode::Overloaded => "shed",
        _ => "error",
    }
}

/// Records a `cache.probe` instant event. The attribute vector is only
/// allocated when the per-request recorder is live.
fn probe_event(rec: &Recorder, tier: &'static str, hit: bool) {
    if rec.is_enabled() {
        rec.event("cache.probe", vec![("tier", tier.into()), ("hit", hit.into())]);
    }
}

/// Builds and captures the flight record for a finished analyze-class
/// request, and appends the structured slow-request log line when
/// triggered (slower than `--slow-ms`, degraded, panicked, shed, or
/// timed out). Runs on the connection thread after the response envelope
/// is already built: one O(1) ring push, never on the worker pool.
#[allow(clippy::too_many_arguments)]
fn capture_flight(
    state: &Arc<ServiceState>,
    rec: &Recorder,
    trace_id: &str,
    parent: Option<&str>,
    threads: Option<u64>,
    started: Instant,
    outcome: &'static str,
    error_code: Option<ErrorCode>,
) {
    if !state.flight.is_enabled() {
        return;
    }
    let elapsed = started.elapsed();
    let elapsed_us = elapsed.as_micros() as u64;
    let mut events = rec.events();
    // Derived attribution: which cache tier answered (last winning
    // probe), and whether the analysis degraded (the driver emits
    // `degrade` events on every ladder step).
    let mut cache_tier: Option<AttrValue> = None;
    let mut degraded = false;
    for ev in &events {
        match ev.name {
            "cache.probe" => {
                let hit = ev.attrs.iter().any(|(k, v)| *k == "hit" && *v == AttrValue::Bool(true));
                if hit {
                    if let Some((_, tier)) = ev.attrs.iter().find(|(k, _)| *k == "tier") {
                        cache_tier = Some(tier.clone());
                    }
                }
            }
            "degrade" => degraded = true,
            _ => {}
        }
    }
    let mut attrs: Vec<(&'static str, AttrValue)> = vec![
        ("degraded", AttrValue::Bool(degraded)),
        ("cache_tier", cache_tier.unwrap_or_else(|| "none".into())),
    ];
    if let Some(t) = threads {
        attrs.push(("threads", AttrValue::U64(t)));
    }
    if let Some(code) = error_code {
        attrs.push(("code", code.as_str().into()));
    }
    // A synthetic root span anchors the fragment's timeline and carries
    // the propagated parent span id, so stitched traces show which
    // upstream hop this request continued.
    let mut root_attrs: Vec<(&'static str, AttrValue)> = Vec::new();
    if let Some(p) = parent {
        root_attrs.push(("parent", p.into()));
    }
    events.insert(
        0,
        TraceEvent { name: "request", start_us: 0, dur_us: Some(elapsed_us), attrs: root_attrs },
    );
    let record =
        RequestRecord { trace_id: trace_id.to_string(), outcome, elapsed_us, attrs, events };
    let slow = state.slow_ms.is_some_and(|ms| elapsed >= Duration::from_millis(ms));
    if slow || degraded || matches!(outcome, "timeout" | "panic" | "shed") {
        eprintln!("{{\"slow_request\":{}}}", record.summary_json());
    }
    state.flight.push(record);
}

/// `trace <id>` body: this daemon's span fragment for one retained trace.
fn trace_raw(state: &Arc<ServiceState>, trace_id: &str) -> Result<String, ProtocolError> {
    let Some(record) = state.flight.get(trace_id) else {
        return Err((
            ErrorCode::BadRequest,
            format!("trace `{trace_id}` not found (flight recorder off, or record evicted)"),
        ));
    };
    let id_json = serde_json::to_string(&Value::String(trace_id.to_string()))
        .unwrap_or_else(|_| "\"\"".to_string());
    Ok(format!("{{\"trace_id\":{},\"fragments\":[{}]}}", id_json, record.fragment_json("daemon")))
}

/// `last_traces` body: ring summaries, newest first.
fn last_traces_raw(state: &Arc<ServiceState>, limit: Option<u64>) -> String {
    let limit = limit.map_or(usize::MAX, |n| n as usize);
    let records = state.flight.recent(limit);
    let mut out = format!("{{\"count\":{},\"traces\":[", records.len());
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&record.summary_json());
    }
    out.push_str("]}");
    out
}

/// Executes a `batch` envelope: every well-formed item is submitted to
/// the pool up front, so items run concurrently up to the pool size, and
/// results are collected in item order so the response array lines up
/// with the request array. Per-item failures — parse errors, analysis
/// errors, deadlines — land in that item's slot; they never fail the
/// envelope.
fn run_batch(state: &Arc<ServiceState>, batch: BatchRequest) -> String {
    struct Item {
        rec: Recorder,
        parent: Option<String>,
        threads: Option<u64>,
        started: Instant,
    }
    enum Slot {
        Pending { trace_id: String, job: PendingJob, item: Item },
        Done(String),
    }
    let envelope_timeout = batch.timeout_ms;
    let mut slots = Vec::with_capacity(batch.items.len());
    for item in batch.items {
        match item {
            Ok(req) => {
                state.counters.analyze_requests.fetch_add(1, Ordering::SeqCst);
                let trace_id = req.trace_id.clone().unwrap_or_else(|| mint_trace_id(state));
                let timeout_ms = req.timeout_ms.or(envelope_timeout).or(state.default_timeout_ms);
                let rec = request_recorder(state);
                let item = Item {
                    rec: rec.clone(),
                    parent: req.trace_parent.clone(),
                    threads: req.threads,
                    started: Instant::now(),
                };
                let job = submit_job(state, timeout_ms, rec.clone(), {
                    let state = Arc::clone(state);
                    move |sup: &Supervisor| run_analyze(&state, &req, sup, &rec)
                });
                match job {
                    Ok(job) => slots.push(Slot::Pending { trace_id, job, item }),
                    Err((code, msg)) => {
                        state.counters.errors.fetch_add(1, Ordering::SeqCst);
                        // A shed item carries the same retry hint a shed
                        // standalone request would; its siblings in the
                        // envelope still run.
                        let hint = shed_retry_hint(state, code);
                        capture_flight(
                            state,
                            &item.rec,
                            &trace_id,
                            item.parent.as_deref(),
                            item.threads,
                            item.started,
                            outcome_of(code),
                            Some(code),
                        );
                        slots.push(Slot::Done(batch_item_err_retry(&trace_id, code, &msg, hint)));
                    }
                }
            }
            Err((code, msg)) => {
                state.counters.errors.fetch_add(1, Ordering::SeqCst);
                let trace_id = mint_trace_id(state);
                slots.push(Slot::Done(batch_item_err(&trace_id, code, &msg)));
            }
        }
    }
    let mut rendered = Vec::with_capacity(slots.len());
    for slot in slots {
        rendered.push(match slot {
            Slot::Done(s) => s,
            Slot::Pending { trace_id, job, item } => match await_job(job) {
                Ok(raw) => {
                    capture_flight(
                        state,
                        &item.rec,
                        &trace_id,
                        item.parent.as_deref(),
                        item.threads,
                        item.started,
                        "ok",
                        None,
                    );
                    batch_item_ok(&trace_id, &raw)
                }
                Err((code, msg)) => {
                    state.counters.errors.fetch_add(1, Ordering::SeqCst);
                    if code == ErrorCode::Timeout {
                        state.counters.timeouts.fetch_add(1, Ordering::SeqCst);
                    }
                    capture_flight(
                        state,
                        &item.rec,
                        &trace_id,
                        item.parent.as_deref(),
                        item.threads,
                        item.started,
                        outcome_of(code),
                        Some(code),
                    );
                    batch_item_err(&trace_id, code, &msg)
                }
            },
        });
    }
    batch_result_raw(&rendered)
}

/// The `debug_sleep` job body: sleeps in short cancellation-aware chunks
/// so an abandoned sleeper frees its worker quickly, while an undisturbed
/// one still reports the full requested duration (the drain tests rely on
/// that).
fn debug_sleep(ms: u64, supervisor: &Supervisor) -> Result<String, ProtocolError> {
    let deadline = Instant::now() + Duration::from_millis(ms);
    loop {
        if supervisor.is_cancelled() {
            return Err((ErrorCode::Timeout, "sleep cancelled".to_string()));
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
    Ok(format!("{{\"slept_ms\":{ms}}}"))
}

fn poisoned() -> ProtocolError {
    (ErrorCode::WorkerPanic, "server state poisoned".to_string())
}

/// The cache-aware analysis pipeline: report cache → prepared cache →
/// phase-1 cache → phase 2. Artifacts are built outside the cache lock
/// and shared via `Arc`, so hits are pointer copies.
fn run_analyze(
    state: &Arc<ServiceState>,
    req: &AnalyzeRequest,
    supervisor: &Supervisor,
    rec: &Recorder,
) -> Result<String, ProtocolError> {
    // Fault-injection site at the service boundary (no-op in default
    // builds): lets tests fail an analyze job before it touches the
    // cache or pipeline.
    if let Some(reason) = taj_supervise::fail_hook("service.run_analyze") {
        let code = if reason.is_budget() { ErrorCode::OutOfMemory } else { ErrorCode::Timeout };
        return Err((code, format!("failpoint interrupt: {}", reason.as_str())));
    }
    let config = TajConfig::by_name(&req.config)
        .ok_or_else(|| (ErrorCode::UnknownConfig, format!("unknown config `{}`", req.config)))?;
    let src = content_hash(req.source.as_bytes());
    let rules_hash = req.rules.as_ref().map_or(0, |r| content_hash(r.as_bytes()));

    let report_key = ArtifactKey::Report {
        src,
        rules: rules_hash,
        config: config.name.to_string(),
        format: req.format,
        degrade: req.degrade,
    };
    // NB: every lookup is bound to a local before matching — a `match`
    // on `lock_cache(..)?.get(..)` would keep the MutexGuard temporary
    // alive across the miss arm's re-lock and self-deadlock.
    let cached_report = lock_cache(state)?.get(&report_key);
    let report_hit = matches!(&cached_report, Some(Artifact::Report(_)));
    probe_event(rec, "report", report_hit);
    if let Some(Artifact::Report(cached)) = cached_report {
        return Ok((*cached).clone());
    }

    // Durable tier: a disk hit bypasses the whole pipeline, exactly like
    // an in-memory report hit, and is promoted into the memory cache so
    // repeats stay off the disk too.
    let disk_key = format!(
        "report:{src:032x}:{rules_hash:032x}:{}:{:?}:{}",
        config.name, req.format, req.degrade
    );
    if let Some(store) = &state.store {
        let disk_hit = store.get(&disk_key);
        probe_event(rec, "disk", disk_hit.is_some());
        if let Some(serialized) = disk_hit {
            let bytes = serialized.len();
            lock_cache(state)?.insert(
                report_key,
                Artifact::Report(Arc::new(serialized.clone())),
                bytes,
            );
            return Ok(serialized);
        }
    }

    // Prepared program (parse + modeling + SSA).
    let prepared_key = ArtifactKey::Prepared { src, rules: rules_hash };
    let cached_prepared = lock_cache(state)?.get(&prepared_key);
    probe_event(rec, "prepared", matches!(&cached_prepared, Some(Artifact::Prepared(_))));
    let prepared = match cached_prepared {
        Some(Artifact::Prepared(p)) => p,
        _ => {
            let rules = match &req.rules {
                Some(text) => {
                    parse_rules(text).map_err(|e| (ErrorCode::BadRules, e.to_string()))?
                }
                None => RuleSet::default_rules(),
            };
            let p = prepare(&req.source, None, rules).map_err(|e| match e {
                TajError::Parse(p) => (ErrorCode::ParseError, p.to_string()),
                other => (ErrorCode::ParseError, other.to_string()),
            })?;
            state.counters.prepare_runs.fetch_add(1, Ordering::SeqCst);
            let p = Arc::new(p);
            lock_cache(state)?.insert(
                prepared_key,
                Artifact::Prepared(Arc::clone(&p)),
                prepared_bytes(req.source.len()),
            );
            p
        }
    };

    // Phase 1, keyed by the call-graph settings it is valid for.
    let phase1_key = ArtifactKey::Phase1 {
        src,
        rules: rules_hash,
        max_cg_nodes: config.max_cg_nodes,
        priority: config.priority,
    };
    let cached_phase1 = lock_cache(state)?.get(&phase1_key);
    let phase1_hit = matches!(&cached_phase1, Some(Artifact::Phase1(p)) if p.matches(&config));
    probe_event(rec, "phase1", phase1_hit);
    let phase1 = match cached_phase1 {
        Some(Artifact::Phase1(p)) if p.matches(&config) => p,
        _ => {
            let p = Arc::new(run_phase1_traced(&prepared, &config, supervisor, rec));
            state.counters.phase1_runs.fetch_add(1, Ordering::SeqCst);
            // An interrupted phase 1 is a deadline artifact, not a
            // property of the input: caching it would poison every later
            // request for this source.
            if p.interrupted.is_none() {
                let bytes = phase1_bytes(&p);
                lock_cache(state)?.insert(phase1_key, Artifact::Phase1(Arc::clone(&p)), bytes);
            }
            p
        }
    };

    finish_analyze(state, req, supervisor, rec, &config, &prepared, &phase1, report_key, &disk_key)
}

/// The shared back half of [`run_analyze`] and [`run_analyze_delta`]:
/// phase 2, serialization, and deterministic-only report caching. Phase 2
/// always runs on a report-cache miss; it is the cheap half.
#[allow(clippy::too_many_arguments)]
fn finish_analyze(
    state: &Arc<ServiceState>,
    req: &AnalyzeRequest,
    supervisor: &Supervisor,
    rec: &Recorder,
    config: &TajConfig,
    prepared: &Arc<PreparedProgram>,
    phase1: &Arc<Phase1>,
    report_key: ArtifactKey,
    disk_key: &str,
) -> Result<String, ProtocolError> {
    let opts = RunOptions {
        supervisor: supervisor.clone(),
        degrade: req.degrade,
        threads: req.threads.map_or(0, |n| n as usize),
        recorder: rec.clone(),
    };
    let report =
        analyze_with_phase1_opts(prepared, phase1, config, &opts).map_err(|e| match e {
            TajError::OutOfMemory { path_edges } => (
                ErrorCode::OutOfMemory,
                format!("analysis ran out of memory budget ({path_edges} path edges)"),
            ),
            other => (ErrorCode::ParseError, other.to_string()),
        })?;
    state.counters.phase2_runs.fetch_add(1, Ordering::SeqCst);
    if report.degradation.degraded {
        state.counters.degraded_runs.fetch_add(1, Ordering::SeqCst);
    }

    let serialized = match req.format {
        OutputFormat::Report => serde_json::to_string(&report)
            .map_err(|e| (ErrorCode::BadRequest, format!("serialization failed: {e}")))?,
        // `to_sarif` pretty-prints; recompact it so the response stays a
        // single NDJSON line.
        OutputFormat::Sarif => taj_core::to_sarif(&report)
            .and_then(|s| serde_json::from_str(&s))
            .and_then(|v| serde_json::to_string(&v))
            .map_err(|e| (ErrorCode::BadRequest, format!("SARIF serialization failed: {e}")))?,
    };
    // Budget-driven degradation is deterministic (same input → same
    // ladder) and safe to cache; deadline/cancel degradation depends on
    // wall-clock luck, so serving it from cache would pin a transient
    // truncation forever.
    let deterministic = !report.degradation.degraded
        || report.degradation.steps.iter().all(|s| s.reason.contains("budget"));
    if deterministic {
        let bytes = serialized.len();
        // Identical requests can race to this point (e.g. a batch
        // carrying the same program twice): both miss the report cache,
        // both compute, and their timing fields differ. First writer
        // wins — the loser returns the winner's bytes so repeats stay
        // byte-identical regardless of interleaving.
        let mut cache = lock_cache(state)?;
        if let Some(Artifact::Report(existing)) = cache.peek(&report_key) {
            return Ok((*existing).clone());
        }
        cache.insert(report_key, Artifact::Report(Arc::new(serialized.clone())), bytes);
        drop(cache);
        if let Some(store) = &state.store {
            store.put(disk_key, &serialized);
        }
    }
    Ok(serialized)
}

/// Renders the `delta` envelope object: where phase 1 came from and how
/// much summary work the incremental path re-solved vs. reused.
fn delta_value(source: &str, phase1_reused: bool, resolved: usize, total: usize) -> String {
    format!(
        "{{\"source\":\"{source}\",\"phase1_reused\":{phase1_reused},\
         \"methods_resolved\":{resolved},\"methods_total\":{total}}}"
    )
}

/// The incremental pipeline behind `analyze_delta`: summarize the base
/// program per method, diff the edited program against those summaries,
/// and reuse whatever the delta plan proves still valid — up to the
/// whole phase-1 artifact when the edit region is empty. Returns the
/// `delta` envelope object plus the serialized result; the result bytes
/// are byte-identical to what a plain `analyze` of the edited source
/// would return.
fn run_analyze_delta(
    state: &Arc<ServiceState>,
    req: &AnalyzeDeltaRequest,
    supervisor: &Supervisor,
    rec: &Recorder,
) -> Result<(String, String), ProtocolError> {
    let areq = &req.request;
    let config = TajConfig::by_name(&areq.config)
        .ok_or_else(|| (ErrorCode::UnknownConfig, format!("unknown config `{}`", areq.config)))?;
    let src = content_hash(areq.source.as_bytes());
    let base_src = content_hash(req.base_source.as_bytes());
    let rules_hash = areq.rules.as_ref().map_or(0, |r| content_hash(r.as_bytes()));

    // A cached report for the *edited* source answers immediately — no
    // summary work to report, because none ran.
    let report_key = ArtifactKey::Report {
        src,
        rules: rules_hash,
        config: config.name.to_string(),
        format: areq.format,
        degrade: areq.degrade,
    };
    let cached_report = lock_cache(state)?.get(&report_key);
    probe_event(rec, "report", matches!(&cached_report, Some(Artifact::Report(_))));
    if let Some(Artifact::Report(cached)) = cached_report {
        return Ok((delta_value("report-cache", false, 0, 0), (*cached).clone()));
    }
    let disk_key = format!(
        "report:{src:032x}:{rules_hash:032x}:{}:{:?}:{}",
        config.name, areq.format, areq.degrade
    );
    if let Some(store) = &state.store {
        let disk_hit = store.get(&disk_key);
        probe_event(rec, "disk", disk_hit.is_some());
        if let Some(serialized) = disk_hit {
            let bytes = serialized.len();
            lock_cache(state)?.insert(
                report_key,
                Artifact::Report(Arc::new(serialized.clone())),
                bytes,
            );
            return Ok((delta_value("report-cache", false, 0, 0), serialized));
        }
    }

    let parse_ruleset = || match &areq.rules {
        Some(text) => parse_rules(text).map_err(|e| (ErrorCode::BadRules, e.to_string())),
        None => Ok(RuleSet::default_rules()),
    };
    let prepare_source = |source: &str,
                          key: ArtifactKey,
                          len: usize|
     -> Result<Arc<PreparedProgram>, ProtocolError> {
        let cached = lock_cache(state)?.get(&key);
        match cached {
            Some(Artifact::Prepared(p)) => Ok(p),
            _ => {
                let p = prepare(source, None, parse_ruleset()?).map_err(|e| match e {
                    TajError::Parse(p) => (ErrorCode::ParseError, p.to_string()),
                    other => (ErrorCode::ParseError, other.to_string()),
                })?;
                state.counters.prepare_runs.fetch_add(1, Ordering::SeqCst);
                let p = Arc::new(p);
                lock_cache(state)?.insert(
                    key,
                    Artifact::Prepared(Arc::clone(&p)),
                    prepared_bytes(len),
                );
                Ok(p)
            }
        }
    };

    // Base summaries, from the summary tier when a previous delta (or a
    // chained edit, which inserted its *edited* store under this key)
    // already built them. Summaries are rendered from the prepared
    // program, so the whitelist baked in by `prepare` is part of the key.
    let base_summary_key = ArtifactKey::Summary { src: base_src, rules: rules_hash };
    let cached_summaries = lock_cache(state)?.get(&base_summary_key);
    probe_event(rec, "summary", matches!(&cached_summaries, Some(Artifact::Summary(_))));
    let base_summaries = match cached_summaries {
        Some(Artifact::Summary(s)) => s,
        _ => {
            let base_prepared_key = ArtifactKey::Prepared { src: base_src, rules: rules_hash };
            let base_prepared =
                prepare_source(&req.base_source, base_prepared_key, req.base_source.len())?;
            let s = Arc::new(SummaryStore::build(&base_prepared.program));
            let bytes = summary_bytes(&s);
            lock_cache(state)?.insert(base_summary_key, Artifact::Summary(Arc::clone(&s)), bytes);
            s
        }
    };

    // The edited program and its delta plan against the base summaries.
    let prepared_key = ArtifactKey::Prepared { src, rules: rules_hash };
    let prepared = prepare_source(&areq.source, prepared_key, areq.source.len())?;
    let (edited_store, plan) = SummaryStore::build_delta(&prepared.program, &base_summaries);
    let edited_store = Arc::new(edited_store);
    // Cache the edited store under its own source hash so a *chain* of
    // edits diffs each step against its immediate predecessor warm.
    let bytes = summary_bytes(&edited_store);
    lock_cache(state)?.insert(
        ArtifactKey::Summary { src, rules: rules_hash },
        Artifact::Summary(Arc::clone(&edited_store)),
        bytes,
    );
    state.counters.delta_methods_total.fetch_add(plan.methods_total as u64, Ordering::SeqCst);

    // Phase 1: the edited source's own cache entry beats everything;
    // otherwise an empty edit region whose programs fingerprint-equal
    // lets the base artifact stand in wholesale; otherwise re-solve the
    // dirty region (the summaries still prime the solver's startup scan).
    let phase1_key = ArtifactKey::Phase1 {
        src,
        rules: rules_hash,
        max_cg_nodes: config.max_cg_nodes,
        priority: config.priority,
    };
    let cached_phase1 = lock_cache(state)?.get(&phase1_key);
    let mut phase1: Option<Arc<Phase1>> = None;
    let mut prepared_for_slice = Arc::clone(&prepared);
    let mut source = "cache";
    let mut reused_base = false;
    if let Some(Artifact::Phase1(p)) = cached_phase1 {
        if p.matches(&config) {
            phase1 = Some(p);
        }
    }
    probe_event(rec, "phase1", phase1.is_some());
    if phase1.is_none()
        && plan.region_empty()
        && edited_store.program_fingerprint == base_summaries.program_fingerprint
    {
        // Fingerprint equality means the two programs interned to
        // identical IDs, so the base phase-1 artifact *is* the edited
        // program's phase-1 artifact. Slice against the base prepared
        // program so phase 1 and the program it references stay one
        // consistent pair.
        let base_phase1_key = ArtifactKey::Phase1 {
            src: base_src,
            rules: rules_hash,
            max_cg_nodes: config.max_cg_nodes,
            priority: config.priority,
        };
        let base_hit = lock_cache(state)?.get(&base_phase1_key);
        if let Some(Artifact::Phase1(p)) = base_hit {
            if p.matches(&config) && p.interrupted.is_none() {
                let bytes = phase1_bytes(&p);
                lock_cache(state)?.insert(
                    phase1_key.clone(),
                    Artifact::Phase1(Arc::clone(&p)),
                    bytes,
                );
                let base_prepared_key = ArtifactKey::Prepared { src: base_src, rules: rules_hash };
                prepared_for_slice =
                    prepare_source(&req.base_source, base_prepared_key, req.base_source.len())?;
                phase1 = Some(p);
                source = "reused-base";
                reused_base = true;
                state.counters.delta_phase1_reused.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let resolved = match &phase1 {
        Some(_) => 0,
        None => plan.methods_resolved(),
    };
    let phase1 = match phase1 {
        Some(p) => p,
        None => {
            let p = Arc::new(run_phase1_incremental(
                &prepared,
                &config,
                supervisor,
                rec,
                &edited_store,
                &plan,
            ));
            state.counters.phase1_runs.fetch_add(1, Ordering::SeqCst);
            source = "solved";
            // An interrupted phase 1 is a deadline artifact, not a
            // property of the input: never cache it.
            if p.interrupted.is_none() {
                let bytes = phase1_bytes(&p);
                lock_cache(state)?.insert(phase1_key, Artifact::Phase1(Arc::clone(&p)), bytes);
            }
            p
        }
    };
    state.counters.delta_methods_resolved.fetch_add(resolved as u64, Ordering::SeqCst);

    let serialized = finish_analyze(
        state,
        areq,
        supervisor,
        rec,
        &config,
        &prepared_for_slice,
        &phase1,
        report_key,
        &disk_key,
    )?;
    Ok((delta_value(source, reused_base, resolved, plan.methods_total), serialized))
}

fn lock_cache(
    state: &Arc<ServiceState>,
) -> Result<std::sync::MutexGuard<'_, ArtifactCache>, ProtocolError> {
    state.cache.lock().map_err(|_| poisoned())
}

/// The cache-free analysis pipeline: the same stages (and the same error
/// mapping) as [`run_analyze`] minus every cache tier. The router's
/// local failover uses it — a router holds no daemon state, so there is
/// nothing to cache into.
pub(crate) fn analyze_uncached(
    req: &AnalyzeRequest,
    supervisor: &Supervisor,
) -> Result<String, ProtocolError> {
    let config = TajConfig::by_name(&req.config)
        .ok_or_else(|| (ErrorCode::UnknownConfig, format!("unknown config `{}`", req.config)))?;
    let rules = match &req.rules {
        Some(text) => parse_rules(text).map_err(|e| (ErrorCode::BadRules, e.to_string()))?,
        None => RuleSet::default_rules(),
    };
    let prepared = prepare(&req.source, None, rules).map_err(|e| match e {
        TajError::Parse(p) => (ErrorCode::ParseError, p.to_string()),
        other => (ErrorCode::ParseError, other.to_string()),
    })?;
    let phase1 = run_phase1_traced(&prepared, &config, supervisor, &Recorder::disabled());
    let opts = RunOptions {
        supervisor: supervisor.clone(),
        degrade: req.degrade,
        threads: req.threads.map_or(0, |n| n as usize),
        ..RunOptions::default()
    };
    let report =
        analyze_with_phase1_opts(&prepared, &phase1, &config, &opts).map_err(|e| match e {
            TajError::OutOfMemory { path_edges } => (
                ErrorCode::OutOfMemory,
                format!("analysis ran out of memory budget ({path_edges} path edges)"),
            ),
            other => (ErrorCode::ParseError, other.to_string()),
        })?;
    match req.format {
        OutputFormat::Report => serde_json::to_string(&report)
            .map_err(|e| (ErrorCode::BadRequest, format!("serialization failed: {e}"))),
        OutputFormat::Sarif => taj_core::to_sarif(&report)
            .and_then(|s| serde_json::from_str(&s))
            .and_then(|v| serde_json::to_string(&v))
            .map_err(|e| (ErrorCode::BadRequest, format!("SARIF serialization failed: {e}"))),
    }
}

pub(crate) fn configs_value() -> String {
    let mut items = Vec::new();
    for c in TajConfig::all() {
        let mut o = Value::object();
        o.insert("name", Value::String(c.name.to_string()));
        o.insert("algorithm", Value::String(format!("{:?}", c.algorithm)));
        o.insert("escape_analysis", Value::Bool(c.escape_analysis));
        items.push(o);
    }
    serde_json::to_string(&Value::Array(items)).unwrap_or_else(|_| "[]".to_string())
}

fn tier_value(t: &TierStats) -> Value {
    let mut o = Value::object();
    o.insert("hits", Value::UInt(u128::from(t.hits)));
    o.insert("misses", Value::UInt(u128::from(t.misses)));
    o.insert("evictions", Value::UInt(u128::from(t.evictions)));
    o.insert("bytes_used", Value::UInt(t.bytes_used as u128));
    o.insert("entries", Value::UInt(t.entries as u128));
    o
}

/// `stats` body: flat daemon counters plus the aggregate `cache` object
/// and the per-tier `cache_tiers` breakdown.
fn stats_raw(state: &Arc<ServiceState>) -> Result<String, ProtocolError> {
    let c = &state.counters;
    let (cache, tiers) = {
        let guard = lock_cache(state)?;
        (guard.stats(), guard.tier_stats())
    };
    let mut o = Value::object();
    o.insert("protocol_version", Value::UInt(u128::from(PROTOCOL_VERSION)));
    o.insert("uptime_ms", Value::UInt(state.started.elapsed().as_millis()));
    // Build identity: lets a mixed-version fleet (store fingerprint-skew
    // quarantines) be diagnosed from `stats` alone.
    let mut build_o = Value::object();
    build_o.insert("version", Value::String(env!("CARGO_PKG_VERSION").to_string()));
    build_o.insert("fingerprint", Value::String(format!("{:032x}", store_fingerprint())));
    o.insert("build", build_o);
    let mut flight_o = Value::object();
    flight_o.insert("capacity", Value::UInt(state.flight.capacity() as u128));
    flight_o.insert("retained", Value::UInt(state.flight.len() as u128));
    o.insert("flight", flight_o);
    o.insert("workers", Value::UInt(state.workers as u128));
    o.insert("requests", Value::UInt(u128::from(c.requests.load(Ordering::SeqCst))));
    o.insert(
        "analyze_requests",
        Value::UInt(u128::from(c.analyze_requests.load(Ordering::SeqCst))),
    );
    o.insert("batch_requests", Value::UInt(u128::from(c.batch_requests.load(Ordering::SeqCst))));
    o.insert("errors", Value::UInt(u128::from(c.errors.load(Ordering::SeqCst))));
    o.insert("timeouts", Value::UInt(u128::from(c.timeouts.load(Ordering::SeqCst))));
    o.insert("requests_shed", Value::UInt(u128::from(c.requests_shed.load(Ordering::SeqCst))));
    o.insert("queue_depth", Value::UInt(u128::from(state.queue_depth.load(Ordering::SeqCst))));
    o.insert("max_queue", Value::UInt(state.max_queue as u128));
    o.insert("worker_panics", Value::UInt(u128::from(state.panicked.load(Ordering::SeqCst))));
    o.insert("workers_reclaimed", Value::UInt(u128::from(state.reclaimed.load(Ordering::SeqCst))));
    o.insert("prepare_runs", Value::UInt(u128::from(c.prepare_runs.load(Ordering::SeqCst))));
    o.insert("phase1_runs", Value::UInt(u128::from(c.phase1_runs.load(Ordering::SeqCst))));
    o.insert("phase2_runs", Value::UInt(u128::from(c.phase2_runs.load(Ordering::SeqCst))));
    o.insert("degraded_runs", Value::UInt(u128::from(c.degraded_runs.load(Ordering::SeqCst))));
    o.insert("delta_requests", Value::UInt(u128::from(c.delta_requests.load(Ordering::SeqCst))));
    o.insert(
        "delta_phase1_reused",
        Value::UInt(u128::from(c.delta_phase1_reused.load(Ordering::SeqCst))),
    );
    o.insert(
        "delta_methods_resolved",
        Value::UInt(u128::from(c.delta_methods_resolved.load(Ordering::SeqCst))),
    );
    o.insert(
        "delta_methods_total",
        Value::UInt(u128::from(c.delta_methods_total.load(Ordering::SeqCst))),
    );
    let mut cache_o = Value::object();
    cache_o.insert("hits", Value::UInt(u128::from(cache.hits)));
    cache_o.insert("misses", Value::UInt(u128::from(cache.misses)));
    cache_o.insert("evictions", Value::UInt(u128::from(cache.evictions)));
    cache_o.insert("bytes_used", Value::UInt(cache.bytes_used as u128));
    cache_o.insert("bytes_budget", Value::UInt(cache.bytes_budget as u128));
    cache_o.insert("entries", Value::UInt(cache.entries as u128));
    o.insert("cache", cache_o);
    let mut tiers_o = Value::object();
    tiers_o.insert("prepared", tier_value(&tiers.prepared));
    tiers_o.insert("phase1", tier_value(&tiers.phase1));
    tiers_o.insert("report", tier_value(&tiers.report));
    tiers_o.insert("summary", tier_value(&tiers.summary));
    o.insert("cache_tiers", tiers_o);
    let mut store_o = Value::object();
    match &state.store {
        Some(store) => {
            let s = store.stats();
            store_o.insert("enabled", Value::Bool(true));
            store_o.insert("hits", Value::UInt(u128::from(s.hits)));
            store_o.insert("misses", Value::UInt(u128::from(s.misses)));
            store_o.insert("evictions", Value::UInt(u128::from(s.evictions)));
            store_o.insert("quarantined", Value::UInt(u128::from(s.quarantined)));
            store_o.insert("write_errors", Value::UInt(u128::from(s.write_errors)));
            store_o.insert("bytes_used", Value::UInt(u128::from(s.bytes_used)));
            store_o.insert("bytes_budget", Value::UInt(u128::from(s.bytes_budget)));
            store_o.insert("entries", Value::UInt(u128::from(s.entries)));
            store_o.insert("replayed_entries", Value::UInt(u128::from(s.replayed_entries)));
            store_o.insert("open_micros", Value::UInt(u128::from(s.open_micros)));
        }
        None => {
            store_o.insert("enabled", Value::Bool(false));
        }
    }
    o.insert("store", store_o);
    serde_json::to_string(&o).map_err(|e| (ErrorCode::BadRequest, e.to_string()))
}

/// `metrics` body: the Prometheus text exposition, wrapped in a small
/// JSON object so it still fits the one-line NDJSON response framing.
/// `taj client metrics` unwraps it back to plain text.
fn metrics_raw(state: &Arc<ServiceState>) -> Result<String, ProtocolError> {
    let exposition = metrics_exposition(state)?;
    let mut o = Value::object();
    o.insert("content_type", Value::String("text/plain; version=0.0.4".to_string()));
    o.insert("exposition", Value::String(exposition));
    serde_json::to_string(&o).map_err(|e| (ErrorCode::BadRequest, e.to_string()))
}

fn metrics_exposition(state: &Arc<ServiceState>) -> Result<String, ProtocolError> {
    let c = &state.counters;
    let (cache, tiers) = {
        let guard = lock_cache(state)?;
        (guard.stats(), guard.tier_stats())
    };
    let tier_stats: [(TierStats, &str); 4] = [
        (tiers.prepared, TIER_NAMES[0]),
        (tiers.phase1, TIER_NAMES[1]),
        (tiers.report, TIER_NAMES[2]),
        (tiers.summary, TIER_NAMES[3]),
    ];
    let mut exp = Exposition::new();
    exp.family("taj_uptime_seconds", "Seconds since the daemon started.", "gauge");
    exp.sample("taj_uptime_seconds", &[], state.started.elapsed().as_secs_f64());
    exp.family(
        "taj_build_info",
        "Build identity: crate version and store fingerprint (value is always 1).",
        "gauge",
    );
    let fingerprint = format!("{:032x}", store_fingerprint());
    exp.sample(
        "taj_build_info",
        &[("version", env!("CARGO_PKG_VERSION")), ("fingerprint", &fingerprint)],
        1.0,
    );
    exp.family("taj_flight_records", "Request records retained by the flight recorder.", "gauge");
    exp.sample("taj_flight_records", &[], state.flight.len() as f64);
    exp.family("taj_workers", "Worker pool size.", "gauge");
    exp.sample("taj_workers", &[], state.workers as f64);
    exp.family("taj_max_queue", "Admission-queue bound (jobs queued, not running).", "gauge");
    exp.sample("taj_max_queue", &[], state.max_queue as f64);
    exp.family("taj_queue_depth", "Jobs submitted but not yet picked up by a worker.", "gauge");
    exp.sample("taj_queue_depth", &[], state.queue_depth.load(Ordering::SeqCst) as f64);
    let counters: [(&str, &str, u64); 16] = [
        ("taj_requests_total", "Requests received.", c.requests.load(Ordering::SeqCst)),
        (
            "taj_requests_shed_total",
            "Requests rejected with `overloaded` by admission control.",
            c.requests_shed.load(Ordering::SeqCst),
        ),
        (
            "taj_analyze_requests_total",
            "Analyze requests received.",
            c.analyze_requests.load(Ordering::SeqCst),
        ),
        (
            "taj_batch_requests_total",
            "Batch envelopes received.",
            c.batch_requests.load(Ordering::SeqCst),
        ),
        ("taj_errors_total", "Requests answered with an error.", c.errors.load(Ordering::SeqCst)),
        (
            "taj_timeouts_total",
            "Requests that exceeded their deadline.",
            c.timeouts.load(Ordering::SeqCst),
        ),
        (
            "taj_worker_panics_total",
            "Jobs that panicked on a worker.",
            state.panicked.load(Ordering::SeqCst),
        ),
        (
            "taj_workers_reclaimed_total",
            "Workers reclaimed from abandoned jobs.",
            state.reclaimed.load(Ordering::SeqCst),
        ),
        (
            "taj_prepare_runs_total",
            "Prepare executions (cache misses).",
            c.prepare_runs.load(Ordering::SeqCst),
        ),
        (
            "taj_phase1_runs_total",
            "Phase-1 executions (cache misses).",
            c.phase1_runs.load(Ordering::SeqCst),
        ),
        ("taj_phase2_runs_total", "Phase-2 executions.", c.phase2_runs.load(Ordering::SeqCst)),
        (
            "taj_degraded_runs_total",
            "Analyses that degraded down the precision ladder.",
            c.degraded_runs.load(Ordering::SeqCst),
        ),
        (
            "taj_delta_requests_total",
            "Incremental (analyze_delta) requests received.",
            c.delta_requests.load(Ordering::SeqCst),
        ),
        (
            "taj_delta_phase1_reused_total",
            "Incremental requests that reused the base phase-1 artifact.",
            c.delta_phase1_reused.load(Ordering::SeqCst),
        ),
        (
            "taj_delta_methods_resolved_total",
            "Method summaries re-solved by incremental requests.",
            c.delta_methods_resolved.load(Ordering::SeqCst),
        ),
        (
            "taj_delta_methods_total",
            "Method summaries seen (resolved + reused) by incremental requests.",
            c.delta_methods_total.load(Ordering::SeqCst),
        ),
    ];
    for (name, help, value) in counters {
        exp.family(name, help, "counter");
        exp.sample(name, &[], value as f64);
    }
    // The disk store joins the cache families as a fourth `tier="disk"`
    // series; a daemon without a store emits zeros so the exposition
    // shape is identical either way (scrapers never see families appear
    // mid-flight).
    let store = state.store.as_ref().map(|s| s.stats()).unwrap_or_default();
    exp.family("taj_cache_hits_total", "Cache hits, by artifact tier.", "counter");
    for (t, name) in tier_stats {
        exp.sample("taj_cache_hits_total", &[("tier", name)], t.hits as f64);
    }
    exp.sample("taj_cache_hits_total", &[("tier", "disk")], store.hits as f64);
    exp.family("taj_cache_misses_total", "Cache misses, by artifact tier.", "counter");
    for (t, name) in tier_stats {
        exp.sample("taj_cache_misses_total", &[("tier", name)], t.misses as f64);
    }
    exp.sample("taj_cache_misses_total", &[("tier", "disk")], store.misses as f64);
    exp.family("taj_cache_evictions_total", "Cache evictions, by artifact tier.", "counter");
    for (t, name) in tier_stats {
        exp.sample("taj_cache_evictions_total", &[("tier", name)], t.evictions as f64);
    }
    exp.sample("taj_cache_evictions_total", &[("tier", "disk")], store.evictions as f64);
    exp.family("taj_cache_entries", "Live cache entries, by artifact tier.", "gauge");
    for (t, name) in tier_stats {
        exp.sample("taj_cache_entries", &[("tier", name)], t.entries as f64);
    }
    exp.sample("taj_cache_entries", &[("tier", "disk")], store.entries as f64);
    exp.family("taj_cache_bytes_used", "Estimated cache bytes, by artifact tier.", "gauge");
    for (t, name) in tier_stats {
        exp.sample("taj_cache_bytes_used", &[("tier", name)], t.bytes_used as f64);
    }
    exp.sample("taj_cache_bytes_used", &[("tier", "disk")], store.bytes_used as f64);
    exp.family("taj_cache_bytes_budget", "Configured cache byte budget.", "gauge");
    exp.sample("taj_cache_bytes_budget", &[], cache.bytes_budget as f64);
    exp.family("taj_store_enabled", "Whether a persistent store is mounted.", "gauge");
    exp.sample("taj_store_enabled", &[], if state.store.is_some() { 1.0 } else { 0.0 });
    exp.family(
        "taj_store_quarantined_total",
        "Invalid on-disk entries renamed aside instead of served.",
        "counter",
    );
    exp.sample("taj_store_quarantined_total", &[], store.quarantined as f64);
    exp.family("taj_store_write_errors_total", "Failed on-disk store writes.", "counter");
    exp.sample("taj_store_write_errors_total", &[], store.write_errors as f64);
    exp.family("taj_store_bytes_budget", "Configured on-disk store byte budget.", "gauge");
    exp.sample("taj_store_bytes_budget", &[], store.bytes_budget as f64);
    exp.family(
        "taj_store_replayed_entries",
        "Entries found by the open-time directory replay.",
        "gauge",
    );
    exp.sample("taj_store_replayed_entries", &[], store.replayed_entries as f64);
    exp.family("taj_store_open_seconds", "Time the open-time directory replay took.", "gauge");
    exp.sample("taj_store_open_seconds", &[], store.open_micros as f64 / 1e6);
    exp.histogram(
        "taj_request_queue_wait_seconds",
        "Time dispatched jobs spent queued before a worker picked them up.",
        &[],
        &state.queue_wait.snapshot(),
    );
    exp.histogram(
        "taj_request_run_seconds",
        "Time dispatched jobs spent running on their worker.",
        &[],
        &state.run_time.snapshot(),
    );
    Ok(exp.finish())
}
