//! Content-addressed artifact cache with LRU byte-budget eviction.
//!
//! Three artifact kinds are cached, mirroring the pipeline stages the
//! daemon can skip on a hit:
//!
//! - **Prepared** programs (`prepare`: parse + modeling passes + SSA),
//!   keyed by `(source hash, rules hash)`;
//! - **Phase-1** results (pointer analysis + call graph + escape/MHP),
//!   keyed by the prepared key plus the call-graph settings
//!   `(max_cg_nodes, priority)` — the exact validity domain of
//!   [`taj_core::Phase1::matches`];
//! - **Reports**: the serialized response body, keyed by the prepared key
//!   plus configuration name and output format, so a repeat request is
//!   answered byte-identically without re-running phase 2.
//!
//! Values are held behind [`Arc`], so a hit hands out a shared pointer —
//! never a deep copy of a multi-megabyte analysis product.

use std::collections::HashMap;
use std::sync::Arc;

use taj_core::{Phase1, PreparedProgram, SummaryStore};

use crate::protocol::OutputFormat;

/// 128-bit FNV-1a over arbitrary bytes: the content address. 128 bits
/// keeps accidental collisions out of reach for any realistic corpus
/// (unlike 64-bit hashes, where a few billion sources would collide).
/// Canonically defined in `taj-store` so the in-memory tiers and the
/// on-disk tier share one addressing discipline.
pub use taj_store::content_hash;

/// Cache key: which artifact, for which content, under which settings.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactKey {
    /// A prepared program.
    Prepared {
        /// Hash of the source text.
        src: u128,
        /// Hash of the rules text (0 for the default rule set).
        rules: u128,
    },
    /// A phase-1 result.
    Phase1 {
        /// Hash of the source text.
        src: u128,
        /// Hash of the rules text (0 for the default rule set).
        rules: u128,
        /// Call-graph node budget of the configuration.
        max_cg_nodes: Option<usize>,
        /// Priority-driven call-graph construction flag.
        priority: bool,
    },
    /// A serialized response body.
    Report {
        /// Hash of the source text.
        src: u128,
        /// Hash of the rules text (0 for the default rule set).
        rules: u128,
        /// Configuration name.
        config: String,
        /// Output rendering.
        format: OutputFormat,
        /// Whether the request allowed ladder degradation — a degraded
        /// report and a hard `out_of_memory` failure for the same input
        /// must not share a slot.
        degrade: bool,
    },
    /// A per-method summary store (`taj_core::SummaryStore`), the diff
    /// base for `analyze_delta`. Keyed like a prepared program — rules
    /// matter because `prepare` applies the rule set's whitelist before
    /// the summaries are rendered.
    Summary {
        /// Hash of the source text.
        src: u128,
        /// Hash of the rules text (0 for the default rule set).
        rules: u128,
    },
}

/// A cached artifact, shared by `Arc` — a hit never deep-copies.
#[derive(Clone)]
pub enum Artifact {
    /// Prepared program.
    Prepared(Arc<PreparedProgram>),
    /// Phase-1 result.
    Phase1(Arc<Phase1>),
    /// Serialized response body.
    Report(Arc<String>),
    /// Per-method summary store.
    Summary(Arc<SummaryStore>),
}

struct Entry {
    value: Artifact,
    bytes: usize,
    last_used: u64,
}

/// Counter snapshot for the `stats` command and tests, aggregated over
/// all three tiers. Per-tier breakdowns come from
/// [`ArtifactCache::tier_stats`].
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (including post-eviction re-lookups).
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently held.
    pub bytes_used: usize,
    /// Configured byte budget.
    pub bytes_budget: usize,
    /// Live entries.
    pub entries: usize,
}

/// Counters for a single cache tier (prepared, phase-1, or report).
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct TierStats {
    /// Lookups that found a live entry in this tier.
    pub hits: u64,
    /// Lookups that found nothing in this tier.
    pub misses: u64,
    /// Entries of this tier evicted for the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently held by this tier.
    pub bytes_used: usize,
    /// Live entries in this tier.
    pub entries: usize,
}

/// Per-tier counter snapshot: one [`TierStats`] per pipeline stage the
/// cache can skip. A phase-1 hit saves far more work than a report hit,
/// so the aggregate numbers alone cannot tell whether the cache is
/// earning its memory.
#[derive(Clone, Copy, Debug, Default, serde::Serialize)]
pub struct CacheTiers {
    /// Prepared programs (parse + modeling + SSA).
    pub prepared: TierStats,
    /// Phase-1 results (pointer analysis + escape/MHP).
    pub phase1: TierStats,
    /// Serialized response bodies.
    pub report: TierStats,
    /// Per-method summary stores (`analyze_delta` diff bases).
    pub summary: TierStats,
}

/// Stable tier names, index-aligned with `tier_index`. The summary tier
/// is appended so the original three indices stay stable.
pub const TIER_NAMES: [&str; 4] = ["prepared", "phase1", "report", "summary"];

fn tier_index(key: &ArtifactKey) -> usize {
    match key {
        ArtifactKey::Prepared { .. } => 0,
        ArtifactKey::Phase1 { .. } => 1,
        ArtifactKey::Report { .. } => 2,
        ArtifactKey::Summary { .. } => 3,
    }
}

/// The LRU byte-budget cache. Not internally synchronized — the server
/// wraps it in a `Mutex` and keeps critical sections to lookup/insert
/// (analysis itself runs outside the lock).
pub struct ArtifactCache {
    budget: usize,
    map: HashMap<ArtifactKey, Entry>,
    tick: u64,
    tiers: [TierStats; 4],
    bytes: usize,
}

impl ArtifactCache {
    /// Creates a cache bounded at `budget_bytes` (estimated bytes).
    pub fn new(budget_bytes: usize) -> ArtifactCache {
        ArtifactCache {
            budget: budget_bytes,
            map: HashMap::new(),
            tick: 0,
            tiers: [TierStats::default(); 4],
            bytes: 0,
        }
    }

    /// Looks up `key`, bumping its recency and the hit/miss counters of
    /// its tier.
    pub fn get(&mut self, key: &ArtifactKey) -> Option<Artifact> {
        self.tick += 1;
        let tier = &mut self.tiers[tier_index(key)];
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                tier.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                tier.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching the hit/miss counters or recency.
    /// The insert path uses this to stay first-writer-wins: a racing
    /// loser must return the winner's bytes, but the race is not a cache
    /// hit or miss from the caller's point of view — it already counted
    /// its miss on the way in.
    pub fn peek(&self, key: &ArtifactKey) -> Option<Artifact> {
        self.map.get(key).map(|entry| entry.value.clone())
    }

    /// Inserts (or replaces) an entry, then evicts least-recently-used
    /// entries until the byte budget holds. The just-inserted entry is
    /// never evicted, so a single oversized artifact still caches (it
    /// simply occupies the whole budget until displaced).
    pub fn insert(&mut self, key: ArtifactKey, value: Artifact, bytes: usize) {
        self.tick += 1;
        let idx = tier_index(&key);
        if let Some(old) =
            self.map.insert(key.clone(), Entry { value, bytes, last_used: self.tick })
        {
            self.bytes -= old.bytes;
            self.tiers[idx].bytes_used -= old.bytes;
            self.tiers[idx].entries -= 1;
        }
        self.bytes += bytes;
        self.tiers[idx].bytes_used += bytes;
        self.tiers[idx].entries += 1;
        while self.bytes > self.budget && self.map.len() > 1 {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(v) => {
                    if let Some(e) = self.map.remove(&v) {
                        let vt = &mut self.tiers[tier_index(&v)];
                        vt.bytes_used -= e.bytes;
                        vt.entries -= 1;
                        vt.evictions += 1;
                        self.bytes -= e.bytes;
                    }
                }
                None => break,
            }
        }
    }

    /// Current counters, aggregated over all tiers.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.tiers.iter().map(|t| t.hits).sum(),
            misses: self.tiers.iter().map(|t| t.misses).sum(),
            evictions: self.tiers.iter().map(|t| t.evictions).sum(),
            bytes_used: self.bytes,
            bytes_budget: self.budget,
            entries: self.map.len(),
        }
    }

    /// Current counters, per tier.
    pub fn tier_stats(&self) -> CacheTiers {
        CacheTiers {
            prepared: self.tiers[0],
            phase1: self.tiers[1],
            report: self.tiers[2],
            summary: self.tiers[3],
        }
    }
}

/// Estimated footprint of a prepared program, driven by source size (the
/// IR scales roughly linearly with it).
pub fn prepared_bytes(source_len: usize) -> usize {
    4096 + source_len * 12
}

/// Estimated footprint of a phase-1 result, driven by the solver's own
/// size counters.
pub fn phase1_bytes(phase1: &Phase1) -> usize {
    let s = &phase1.pts.stats;
    4096 + s.pointer_keys * 96 + s.instance_keys * 96 + s.call_edges * 48 + s.nodes * 64
}

/// Estimated footprint of a summary store, delegating to its own
/// per-method accounting.
pub fn summary_bytes(store: &SummaryStore) -> usize {
    4096 + store.approx_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_key(src: u128, config: &str) -> ArtifactKey {
        ArtifactKey::Report {
            src,
            rules: 0,
            config: config.to_string(),
            format: OutputFormat::Report,
            degrade: false,
        }
    }

    fn report(text: &str) -> Artifact {
        Artifact::Report(Arc::new(text.to_string()))
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = ArtifactCache::new(1 << 20);
        assert!(c.get(&report_key(1, "hybrid")).is_none());
        c.insert(report_key(1, "hybrid"), report("r"), 100);
        assert!(c.get(&report_key(1, "hybrid")).is_some());
        assert!(c.get(&report_key(2, "hybrid")).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        assert_eq!(s.bytes_used, 100);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn keys_distinguish_configs_and_settings() {
        // Same source under different configurations must occupy distinct
        // slots — a hit for one config must never serve another's bytes.
        let mut c = ArtifactCache::new(1 << 20);
        c.insert(report_key(1, "hybrid"), report("a"), 10);
        c.insert(report_key(1, "cs"), report("b"), 10);
        let k_sarif = ArtifactKey::Report {
            src: 1,
            rules: 0,
            config: "hybrid".to_string(),
            format: OutputFormat::Sarif,
            degrade: false,
        };
        c.insert(k_sarif.clone(), report("c"), 10);
        let p1 = ArtifactKey::Phase1 { src: 1, rules: 0, max_cg_nodes: None, priority: false };
        let p2 = ArtifactKey::Phase1 { src: 1, rules: 0, max_cg_nodes: Some(3500), priority: true };
        assert_ne!(p1, p2);
        assert_eq!(c.stats().entries, 3);
        match c.get(&report_key(1, "hybrid")) {
            Some(Artifact::Report(r)) => assert_eq!(*r, "a"),
            other => panic!("expected hybrid report, got {}", other.is_some()),
        }
        match c.get(&k_sarif) {
            Some(Artifact::Report(r)) => assert_eq!(*r, "c"),
            _ => panic!("expected sarif report"),
        }
    }

    #[test]
    fn lru_eviction_under_byte_budget() {
        let mut c = ArtifactCache::new(250);
        c.insert(report_key(1, "hybrid"), report("a"), 100);
        c.insert(report_key(2, "hybrid"), report("b"), 100);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(&report_key(1, "hybrid")).is_some());
        c.insert(report_key(3, "hybrid"), report("c"), 100);
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes_used <= 250, "{s:?}");
        assert!(c.get(&report_key(2, "hybrid")).is_none(), "LRU entry evicted");
        assert!(c.get(&report_key(1, "hybrid")).is_some(), "recently-used entry kept");
        assert!(c.get(&report_key(3, "hybrid")).is_some(), "new entry kept");
    }

    #[test]
    fn oversized_entry_still_caches() {
        let mut c = ArtifactCache::new(50);
        c.insert(report_key(1, "hybrid"), report("big"), 500);
        assert!(c.get(&report_key(1, "hybrid")).is_some());
        c.insert(report_key(2, "hybrid"), report("next"), 500);
        // The older oversized entry is displaced, the new one kept.
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&report_key(2, "hybrid")).is_some());
        assert!(c.get(&report_key(1, "hybrid")).is_none());
    }

    #[test]
    fn replacement_updates_bytes() {
        let mut c = ArtifactCache::new(1000);
        c.insert(report_key(1, "hybrid"), report("a"), 400);
        c.insert(report_key(1, "hybrid"), report("a2"), 100);
        assert_eq!(c.stats().bytes_used, 100);
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn tier_stats_attribute_to_the_right_tier() {
        let mut c = ArtifactCache::new(1 << 20);
        let pk = ArtifactKey::Prepared { src: 1, rules: 0 };
        assert!(c.get(&pk).is_none());
        c.insert(pk.clone(), report("p"), 10);
        assert!(c.get(&pk).is_some());
        c.insert(report_key(1, "hybrid"), report("r"), 20);
        let t = c.tier_stats();
        assert_eq!((t.prepared.hits, t.prepared.misses), (1, 1));
        assert_eq!((t.prepared.entries, t.prepared.bytes_used), (1, 10));
        assert_eq!((t.report.entries, t.report.bytes_used), (1, 20));
        assert_eq!((t.phase1.hits, t.phase1.misses, t.phase1.entries), (0, 0, 0));
        let agg = c.stats();
        assert_eq!((agg.hits, agg.misses), (1, 1));
        assert_eq!((agg.bytes_used, agg.entries), (30, 2));
    }

    #[test]
    fn eviction_attributes_to_the_victims_tier() {
        let mut c = ArtifactCache::new(150);
        c.insert(ArtifactKey::Prepared { src: 1, rules: 0 }, report("p"), 100);
        c.insert(report_key(2, "hybrid"), report("r"), 100);
        let t = c.tier_stats();
        assert_eq!(t.prepared.evictions, 1, "the prepared entry was the LRU victim");
        assert_eq!(t.report.evictions, 0);
        assert_eq!((t.prepared.entries, t.prepared.bytes_used), (0, 0));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn summary_tier_counter_arithmetic() {
        // Same counter-arithmetic discipline as the router shard
        // counters: every lookup/insert/eviction on the summary tier
        // lands in `tiers[3]` and nowhere else, and aggregates stay the
        // exact sum over all four tiers.
        let mut c = ArtifactCache::new(1 << 20);
        let sk = ArtifactKey::Summary { src: 7, rules: 0 };
        assert!(c.get(&sk).is_none());
        c.insert(sk.clone(), report("s"), 40);
        assert!(c.get(&sk).is_some());
        // A summary key never aliases a prepared key of the same hashes.
        let pk = ArtifactKey::Prepared { src: 7, rules: 0 };
        assert_ne!(sk, pk);
        assert!(c.get(&pk).is_none());
        let t = c.tier_stats();
        assert_eq!((t.summary.hits, t.summary.misses), (1, 1));
        assert_eq!((t.summary.entries, t.summary.bytes_used), (1, 40));
        assert_eq!((t.prepared.hits, t.prepared.misses), (0, 1));
        assert_eq!((t.phase1.hits, t.phase1.misses, t.report.hits, t.report.misses), (0, 0, 0, 0));
        let agg = c.stats();
        assert_eq!((agg.hits, agg.misses), (1, 2));
        assert_eq!((agg.bytes_used, agg.entries), (40, 1));
    }

    #[test]
    fn summary_eviction_attributes_to_summary_tier() {
        let mut c = ArtifactCache::new(150);
        c.insert(ArtifactKey::Summary { src: 1, rules: 0 }, report("s"), 100);
        c.insert(report_key(2, "hybrid"), report("r"), 100);
        let t = c.tier_stats();
        assert_eq!(t.summary.evictions, 1, "the summary entry was the LRU victim");
        assert_eq!((t.summary.entries, t.summary.bytes_used), (0, 0));
        assert_eq!(t.report.evictions, 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn tier_names_align_with_tier_indices() {
        assert_eq!(TIER_NAMES, ["prepared", "phase1", "report", "summary"]);
        assert_eq!(tier_index(&ArtifactKey::Prepared { src: 0, rules: 0 }), 0);
        assert_eq!(
            tier_index(&ArtifactKey::Phase1 {
                src: 0,
                rules: 0,
                max_cg_nodes: None,
                priority: false
            }),
            1
        );
        assert_eq!(tier_index(&report_key(0, "hybrid")), 2);
        assert_eq!(tier_index(&ArtifactKey::Summary { src: 0, rules: 0 }), 3);
    }

    #[test]
    fn content_hash_separates_similar_inputs() {
        assert_ne!(content_hash(b"class A {}"), content_hash(b"class B {}"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_eq!(content_hash(b"same"), content_hash(b"same"));
    }
}
