//! The wire protocol: newline-delimited JSON (NDJSON) requests and
//! responses.
//!
//! Every request is one JSON object on one line with a `cmd` field and an
//! optional `id` the server echoes back. The protocol is **strict**:
//! unknown commands and unknown fields are rejected with `bad_request`
//! rather than silently ignored, so client typos cannot change semantics.
//!
//! See `docs/service.md` for the full request/response schemas.

use serde::Value;

/// Protocol version reported by `stats`.
pub const PROTOCOL_VERSION: u64 = 2;

/// Upper bound on `batch` items per envelope: enough to amortize
/// dispatch over a corpus, small enough that one envelope cannot pin
/// the connection handler (and the response line) for minutes.
pub const MAX_BATCH_ITEMS: usize = 1024;

/// Machine-readable error categories carried in `error.code`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, missing/mistyped fields, or unknown fields.
    BadRequest,
    /// `cmd` is not one the server accepts.
    UnknownCommand,
    /// `config` does not name a known configuration.
    UnknownConfig,
    /// The `rules` text failed to parse.
    BadRules,
    /// The submitted source failed the jweb frontend.
    ParseError,
    /// The CS slicer exceeded its path-edge (memory) budget.
    OutOfMemory,
    /// The request exceeded its deadline; the job may still be running.
    Timeout,
    /// The analysis worker panicked; the daemon itself survives.
    WorkerPanic,
    /// The daemon is draining after `shutdown` and takes no new work.
    ShuttingDown,
    /// The admission queue is full; retry after the hinted delay. The
    /// error object carries `retry_after_ms` so clients can back off to
    /// when capacity is expected rather than guessing.
    Overloaded,
}

impl ErrorCode {
    /// Stable string form used on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownCommand => "unknown_command",
            ErrorCode::UnknownConfig => "unknown_config",
            ErrorCode::BadRules => "bad_rules",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::OutOfMemory => "out_of_memory",
            ErrorCode::Timeout => "timeout",
            ErrorCode::WorkerPanic => "worker_panic",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Overloaded => "overloaded",
        }
    }

    /// Whether a client may safely retry the request after a backoff.
    /// Overload and drain rejections happen *before* any work starts,
    /// so retrying can never duplicate effects.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::ShuttingDown)
    }
}

/// Result rendering for `analyze`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OutputFormat {
    /// The full [`taj_core::TajReport`] as JSON (default).
    Report,
    /// SARIF 2.1.0, as a JSON document.
    Sarif,
}

impl OutputFormat {
    fn from_wire(s: &str) -> Option<OutputFormat> {
        match s {
            "report" => Some(OutputFormat::Report),
            "sarif" => Some(OutputFormat::Sarif),
            _ => None,
        }
    }
}

/// A parsed `analyze` request.
#[derive(Clone, Debug)]
pub struct AnalyzeRequest {
    /// jweb source text to analyze.
    pub source: String,
    /// Named configuration (see `taj configs`); defaults to `hybrid`.
    pub config: String,
    /// Optional rules-file text replacing the default rule set.
    pub rules: Option<String>,
    /// Result rendering.
    pub format: OutputFormat,
    /// Per-request deadline override (ms).
    pub timeout_ms: Option<u64>,
    /// Degrade down the precision ladder on budget exhaustion instead of
    /// failing with `out_of_memory`.
    pub degrade: bool,
    /// Phase-2 worker threads (`0`/absent = one per core). An execution
    /// parameter only: reports are byte-identical at every value, so it
    /// is deliberately *not* part of the report-cache key.
    pub threads: Option<u64>,
    /// Client-chosen trace id echoed back in the response envelope; the
    /// server generates one when absent. Lives in the envelope (not the
    /// cached result bytes), so it never perturbs cache identity.
    pub trace_id: Option<String>,
    /// Parent span id from the propagated trace context (`trace.parent`):
    /// the upstream hop — e.g. `router` — whose span this request's root
    /// span continues. Recorded as an attribute on the flight-recorder
    /// root span, never part of cache identity.
    pub trace_parent: Option<String>,
}

/// A parsed `analyze_delta` request: a normal analyze field set plus the
/// `base_source` the daemon diffs against. The base identifies which
/// cached summary store (and phase-1 artifacts) to reuse; the *result*
/// is always for `request.source` and is byte-identical to what a plain
/// `analyze` of that source would return.
#[derive(Clone, Debug)]
pub struct AnalyzeDeltaRequest {
    /// jweb source text of the base program (the pre-edit version).
    pub base_source: String,
    /// The analyze request proper, for the edited source.
    pub request: AnalyzeRequest,
}

/// A parsed `batch` request: every item decoded independently, so one
/// malformed item becomes that item's error response instead of
/// failing the envelope (the same isolation analysis failures get).
#[derive(Clone, Debug)]
pub struct BatchRequest {
    /// Per-item decode outcomes, in envelope order.
    pub items: Vec<Result<AnalyzeRequest, ProtocolError>>,
    /// Envelope-level deadline default for items without their own.
    pub timeout_ms: Option<u64>,
}

/// One decoded request command.
#[derive(Clone, Debug)]
pub enum Command {
    /// Run (or serve from cache) a taint analysis.
    Analyze(AnalyzeRequest),
    /// Incremental re-analysis: diff the edited source against a base
    /// program's per-method summaries and re-solve only the dirty
    /// region. Result bytes are identical to a plain `analyze` of the
    /// edited source; the work saved is reported in the envelope's
    /// `delta` object.
    AnalyzeDelta(AnalyzeDeltaRequest),
    /// Run N analyses from one envelope, answered by one ordered
    /// response envelope with per-item status.
    Batch(BatchRequest),
    /// List the available configuration names.
    Configs,
    /// Report daemon + cache counters.
    Stats,
    /// Render daemon counters as a Prometheus text exposition.
    Metrics,
    /// Fetch one flight-recorder record (span fragments) by trace id.
    Trace {
        /// The trace id to look up.
        trace_id: String,
    },
    /// List the most recent flight-recorder records, newest first.
    LastTraces {
        /// Cap on returned records (default: the whole ring).
        limit: Option<u64>,
    },
    /// Drain in-flight jobs and exit.
    Shutdown,
    /// Debug only: a worker job that sleeps `ms` (for timeout tests).
    DebugSleep {
        /// Sleep duration in milliseconds.
        ms: u64,
        /// Per-request deadline override (ms).
        timeout_ms: Option<u64>,
    },
    /// Debug only: a worker job that panics (for isolation tests).
    DebugPanic,
}

/// A full request: client-chosen `id` (echoed back) plus the command.
#[derive(Clone, Debug)]
pub struct Request {
    /// The client's correlation id (`null` when absent).
    pub id: Value,
    /// The decoded command.
    pub command: Command,
}

/// A protocol-level rejection: code plus human-readable message.
pub type ProtocolError = (ErrorCode, String);

fn bad(msg: impl Into<String>) -> ProtocolError {
    (ErrorCode::BadRequest, msg.into())
}

fn get_str(obj: &Value, key: &str) -> Result<Option<String>, ProtocolError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(bad(format!("field `{key}` must be a string"))),
    }
}

fn get_bool(obj: &Value, key: &str) -> Result<Option<bool>, ProtocolError> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(bad(format!("field `{key}` must be a boolean"))),
    }
}

fn get_u64(obj: &Value, key: &str) -> Result<Option<u64>, ProtocolError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(bad(format!("field `{key}` must be a non-negative integer"))),
        },
    }
}

/// Rejects any top-level key outside `allowed` — the strictness that lets
/// clients trust a typo'd field will fail loudly instead of being dropped.
fn check_fields(obj: &Value, allowed: &[&str]) -> Result<(), ProtocolError> {
    if let Value::Object(entries) = obj {
        for (k, _) in entries {
            if !allowed.contains(&k.as_str()) {
                return Err(bad(format!("unknown field `{k}`")));
            }
        }
    }
    Ok(())
}

/// Parses the analyze field set out of `value` — shared by the
/// `analyze` command and each `batch` item (which allows the same
/// fields minus the envelope-level `id`/`cmd`).
fn parse_analyze_body(
    value: &Value,
    extra_allowed: &[&str],
) -> Result<AnalyzeRequest, ProtocolError> {
    let mut allowed: Vec<&str> = extra_allowed.to_vec();
    allowed.extend_from_slice(&[
        "source",
        "config",
        "rules",
        "format",
        "timeout_ms",
        "degrade",
        "threads",
        "trace_id",
        "trace",
    ]);
    check_fields(value, &allowed)?;
    let source = get_str(value, "source")?.ok_or_else(|| bad("missing `source`"))?;
    let config = get_str(value, "config")?.unwrap_or_else(|| "hybrid".to_string());
    let rules = get_str(value, "rules")?;
    let format = match get_str(value, "format")? {
        None => OutputFormat::Report,
        Some(f) => OutputFormat::from_wire(&f)
            .ok_or_else(|| bad(format!("unknown format `{f}` (report|sarif)")))?,
    };
    let timeout_ms = get_u64(value, "timeout_ms")?;
    let degrade = get_bool(value, "degrade")?.unwrap_or(false);
    let threads = get_u64(value, "threads")?;
    let mut trace_id = get_str(value, "trace_id")?;
    let mut trace_parent = None;
    if let Some(trace) = value.get("trace") {
        if !matches!(trace, Value::Object(_)) {
            return Err(bad("field `trace` must be an object"));
        }
        check_fields(trace, &["trace_id", "parent"])?;
        let ctx_id =
            get_str(trace, "trace_id")?.ok_or_else(|| bad("trace context missing `trace_id`"))?;
        trace_id = Some(ctx_id);
        trace_parent = get_str(trace, "parent")?;
    }
    Ok(AnalyzeRequest {
        source,
        config,
        rules,
        format,
        timeout_ms,
        degrade,
        threads,
        trace_id,
        trace_parent,
    })
}

/// Parses one request line. `debug` enables the `debug_*` commands.
///
/// # Errors
/// Returns a [`ProtocolError`] on malformed JSON, a non-object payload,
/// unknown commands/fields, or mistyped field values.
pub fn parse_request(line: &str, debug: bool) -> Result<Request, ProtocolError> {
    let value = serde_json::from_str(line).map_err(|e| bad(format!("malformed JSON: {e}")))?;
    if !matches!(value, Value::Object(_)) {
        return Err(bad("request must be a JSON object"));
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let cmd = get_str(&value, "cmd")?.ok_or_else(|| bad("missing `cmd` field"))?;
    let command = match cmd.as_str() {
        "analyze" => Command::Analyze(parse_analyze_body(&value, &["id", "cmd"])?),
        "analyze_delta" => {
            let request = parse_analyze_body(&value, &["id", "cmd", "base_source"])?;
            let base_source =
                get_str(&value, "base_source")?.ok_or_else(|| bad("missing `base_source`"))?;
            Command::AnalyzeDelta(AnalyzeDeltaRequest { base_source, request })
        }
        "batch" => {
            check_fields(&value, &["id", "cmd", "items", "timeout_ms"])?;
            let timeout_ms = get_u64(&value, "timeout_ms")?;
            let items_value = value.get("items").ok_or_else(|| bad("missing `items`"))?;
            let Value::Array(raw_items) = items_value else {
                return Err(bad("field `items` must be an array"));
            };
            if raw_items.len() > MAX_BATCH_ITEMS {
                return Err(bad(format!(
                    "batch has {} items (max {MAX_BATCH_ITEMS})",
                    raw_items.len()
                )));
            }
            let items = raw_items
                .iter()
                .map(|item| {
                    if !matches!(item, Value::Object(_)) {
                        return Err(bad("batch item must be a JSON object"));
                    }
                    parse_analyze_body(item, &[])
                })
                .collect();
            Command::Batch(BatchRequest { items, timeout_ms })
        }
        "configs" => {
            check_fields(&value, &["id", "cmd"])?;
            Command::Configs
        }
        "stats" => {
            check_fields(&value, &["id", "cmd"])?;
            Command::Stats
        }
        "metrics" => {
            check_fields(&value, &["id", "cmd"])?;
            Command::Metrics
        }
        "trace" => {
            check_fields(&value, &["id", "cmd", "trace_id"])?;
            let trace_id = get_str(&value, "trace_id")?.ok_or_else(|| bad("missing `trace_id`"))?;
            Command::Trace { trace_id }
        }
        "last_traces" => {
            check_fields(&value, &["id", "cmd", "limit"])?;
            Command::LastTraces { limit: get_u64(&value, "limit")? }
        }
        "shutdown" => {
            check_fields(&value, &["id", "cmd"])?;
            Command::Shutdown
        }
        "debug_sleep" if debug => {
            check_fields(&value, &["id", "cmd", "ms", "timeout_ms"])?;
            let ms = get_u64(&value, "ms")?.ok_or_else(|| bad("missing `ms`"))?;
            Command::DebugSleep { ms, timeout_ms: get_u64(&value, "timeout_ms")? }
        }
        "debug_panic" if debug => {
            check_fields(&value, &["id", "cmd"])?;
            Command::DebugPanic
        }
        other => return Err((ErrorCode::UnknownCommand, format!("unknown command `{other}`"))),
    };
    Ok(Request { id, command })
}

fn id_json(id: &Value) -> String {
    serde_json::to_string(id).unwrap_or_else(|_| "null".to_string())
}

/// Builds a success response embedding `raw_result`, an already-serialized
/// JSON fragment. Splicing the raw bytes (instead of re-parsing) is what
/// makes cache hits byte-identical to the miss that populated them.
pub fn ok_response_raw(id: &Value, raw_result: &str) -> String {
    format!("{{\"id\":{},\"ok\":true,\"result\":{}}}", id_json(id), raw_result)
}

/// Builds a success response from a [`Value`] result.
pub fn ok_response(id: &Value, result: &Value) -> String {
    let raw = serde_json::to_string(result).unwrap_or_else(|_| "null".to_string());
    ok_response_raw(id, &raw)
}

fn trace_id_json(trace_id: &str) -> String {
    serde_json::to_string(&Value::String(trace_id.to_string()))
        .unwrap_or_else(|_| "\"\"".to_string())
}

/// Splices a trace-context object (`"trace":{"trace_id":…,"parent":…}`)
/// into a raw request line, textually, right after the opening brace.
/// The router uses this to stamp forwarded lines: every byte the client
/// sent is preserved verbatim (no parse → re-serialize round trip), so
/// routed responses stay byte-identical to direct ones. Returns the line
/// unchanged when it does not start with `{` (the daemon will reject it
/// with the same error either way).
pub fn stamp_trace(line: &str, trace_id: &str, parent: &str) -> String {
    let Some(brace) = line.find('{') else { return line.to_string() };
    if line[..brace].trim() != "" {
        return line.to_string();
    }
    let rest = &line[brace + 1..];
    let separator = if rest.trim_start().starts_with('}') { "" } else { "," };
    format!(
        "{}{{\"trace\":{{\"trace_id\":{},\"parent\":{}}}{}{}",
        &line[..brace],
        trace_id_json(trace_id),
        trace_id_json(parent),
        separator,
        rest
    )
}

/// [`ok_response_raw`] with a `trace_id` in the envelope. The trace id
/// stays *outside* `result` so cached result bytes are trace-id-free and
/// a cache hit can still echo the requester's own id.
pub fn ok_response_raw_traced(id: &Value, trace_id: &str, raw_result: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"trace_id\":{},\"result\":{}}}",
        id_json(id),
        trace_id_json(trace_id),
        raw_result
    )
}

/// [`ok_response_raw_traced`] with an additional `delta` object in the
/// envelope, used by `analyze_delta` responses. The delta metadata
/// (dirty/re-solved counts, artifact provenance) lives *outside*
/// `result` for the same reason `trace_id` does: the result bytes must
/// stay byte-par with a plain `analyze` of the same source, cache hits
/// included. `delta_json` is an already-serialized JSON object.
pub fn ok_response_raw_traced_delta(
    id: &Value,
    trace_id: &str,
    delta_json: &str,
    raw_result: &str,
) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"trace_id\":{},\"delta\":{},\"result\":{}}}",
        id_json(id),
        trace_id_json(trace_id),
        delta_json,
        raw_result
    )
}

/// The wire error object: `{code, message}` plus `retry_after_ms` when
/// the server can hint at when capacity returns (only `overloaded`
/// rejections carry one today).
fn error_value(code: ErrorCode, message: &str, retry_after_ms: Option<u64>) -> Value {
    let mut error = Value::object();
    error.insert("code", Value::String(code.as_str().to_string()));
    error.insert("message", Value::String(message.to_string()));
    if let Some(ms) = retry_after_ms {
        error.insert("retry_after_ms", Value::UInt(u128::from(ms)));
    }
    error
}

/// [`err_response`] with a `trace_id` in the envelope, so failed analyze
/// requests are correlatable too.
pub fn err_response_traced(id: &Value, trace_id: &str, code: ErrorCode, message: &str) -> String {
    err_response_traced_retry(id, trace_id, code, message, None)
}

/// [`err_response_traced`] carrying a `retry_after_ms` backoff hint.
pub fn err_response_traced_retry(
    id: &Value,
    trace_id: &str,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut obj = Value::object();
    obj.insert("id", id.clone());
    obj.insert("ok", Value::Bool(false));
    obj.insert("trace_id", Value::String(trace_id.to_string()));
    obj.insert("error", error_value(code, message, retry_after_ms));
    serde_json::to_string(&obj).unwrap_or_else(|_| err_response(id, code, message))
}

/// One successful `batch` item: same shape as a standalone traced
/// analyze response minus the envelope `id` (the envelope carries it).
/// Splices `raw_result` so batch hits stay byte-identical to singles.
pub fn batch_item_ok(trace_id: &str, raw_result: &str) -> String {
    format!("{{\"ok\":true,\"trace_id\":{},\"result\":{}}}", trace_id_json(trace_id), raw_result)
}

/// One failed `batch` item, carrying its own error code/message so one
/// bad program never fails its siblings.
pub fn batch_item_err(trace_id: &str, code: ErrorCode, message: &str) -> String {
    batch_item_err_retry(trace_id, code, message, None)
}

/// [`batch_item_err`] carrying a `retry_after_ms` backoff hint, so a
/// shed batch item tells its client when to resubmit just like a shed
/// standalone request.
pub fn batch_item_err_retry(
    trace_id: &str,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let error = error_value(code, message, retry_after_ms);
    let error_json = serde_json::to_string(&error).unwrap_or_else(|_| "{}".to_string());
    format!("{{\"ok\":false,\"trace_id\":{},\"error\":{}}}", trace_id_json(trace_id), error_json)
}

/// The `batch` result body: item responses in envelope order.
pub fn batch_result_raw(items: &[String]) -> String {
    let mut out = String::with_capacity(32 + items.iter().map(String::len).sum::<usize>());
    out.push_str("{\"count\":");
    out.push_str(&items.len().to_string());
    out.push_str(",\"items\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push_str("]}");
    out
}

/// Builds an error response: `{"id":..,"ok":false,"error":{code,message}}`.
pub fn err_response(id: &Value, code: ErrorCode, message: &str) -> String {
    err_response_retry(id, code, message, None)
}

/// [`err_response`] carrying a `retry_after_ms` backoff hint.
pub fn err_response_retry(
    id: &Value,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let error = error_value(code, message, retry_after_ms);
    let mut obj = Value::object();
    obj.insert("id", id.clone());
    obj.insert("ok", Value::Bool(false));
    obj.insert("error", error);
    serde_json::to_string(&obj).unwrap_or_else(|_| {
        "{\"id\":null,\"ok\":false,\"error\":{\"code\":\"bad_request\",\"message\":\"\"}}"
            .to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_analyze() {
        let r = parse_request(r#"{"id": 7, "cmd": "analyze", "source": "class A {}"}"#, false)
            .expect("parses");
        assert_eq!(r.id.as_u64(), Some(7));
        match r.command {
            Command::Analyze(a) => {
                assert_eq!(a.config, "hybrid");
                assert_eq!(a.format, OutputFormat::Report);
                assert!(a.rules.is_none() && a.timeout_ms.is_none());
                assert!(!a.degrade, "degradation is opt-in");
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn degrade_flag_parses_and_rejects_non_bool() {
        let r = parse_request(r#"{"cmd":"analyze","source":"x","degrade":true}"#, false).unwrap();
        match r.command {
            Command::Analyze(a) => assert!(a.degrade),
            other => panic!("wrong command: {other:?}"),
        }
        let e = parse_request(r#"{"cmd":"analyze","source":"x","degrade":1}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
    }

    #[test]
    fn rejects_unknown_fields_and_commands() {
        let e = parse_request(r#"{"cmd": "stats", "bogus": 1}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        let e = parse_request(r#"{"cmd": "frobnicate"}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::UnknownCommand);
        let e = parse_request("{oops", false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        let e = parse_request("[1,2]", false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
    }

    #[test]
    fn debug_commands_gated() {
        let e = parse_request(r#"{"cmd": "debug_panic"}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::UnknownCommand);
        let r = parse_request(r#"{"cmd": "debug_panic"}"#, true).expect("debug mode accepts");
        assert!(matches!(r.command, Command::DebugPanic));
        let r = parse_request(r#"{"cmd": "debug_sleep", "ms": 50}"#, true).unwrap();
        assert!(matches!(r.command, Command::DebugSleep { ms: 50, timeout_ms: None }));
    }

    #[test]
    fn mistyped_fields_rejected() {
        let e = parse_request(r#"{"cmd": "analyze", "source": 5}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        let e = parse_request(r#"{"cmd": "analyze", "source": "x", "timeout_ms": "soon"}"#, false)
            .unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        let e = parse_request(r#"{"cmd": "analyze", "source": "x", "format": "xml"}"#, false)
            .unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
    }

    #[test]
    fn metrics_command_parses_strictly() {
        let r = parse_request(r#"{"cmd":"metrics"}"#, false).unwrap();
        assert!(matches!(r.command, Command::Metrics));
        let e = parse_request(r#"{"cmd":"metrics","tier":"report"}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
    }

    #[test]
    fn trace_id_parses_and_lands_in_the_envelope() {
        let r =
            parse_request(r#"{"cmd":"analyze","source":"x","trace_id":"t-42"}"#, false).unwrap();
        match r.command {
            Command::Analyze(a) => assert_eq!(a.trace_id.as_deref(), Some("t-42")),
            other => panic!("wrong command: {other:?}"),
        }
        let e = parse_request(r#"{"cmd":"analyze","source":"x","trace_id":7}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);

        let ok = ok_response_raw_traced(&Value::UInt(3), "t-42", "{\"a\":1}");
        let v = serde_json::from_str(&ok).unwrap();
        assert_eq!(v["trace_id"], "t-42");
        assert_eq!(v["result"]["a"], 1u64);
        let err = err_response_traced(&Value::Null, "t-42", ErrorCode::Timeout, "too slow");
        let v = serde_json::from_str(&err).unwrap();
        assert_eq!(v["trace_id"], "t-42");
        assert_eq!(v["error"]["code"], "timeout");
    }

    #[test]
    fn trace_context_parses_and_overrides_trace_id() {
        let r = parse_request(
            r#"{"cmd":"analyze","source":"x","trace":{"trace_id":"taj-r-1","parent":"router"}}"#,
            false,
        )
        .unwrap();
        match r.command {
            Command::Analyze(a) => {
                assert_eq!(a.trace_id.as_deref(), Some("taj-r-1"));
                assert_eq!(a.trace_parent.as_deref(), Some("router"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // The context object wins over a bare trace_id field.
        let r = parse_request(
            r#"{"cmd":"analyze","source":"x","trace_id":"old","trace":{"trace_id":"new"}}"#,
            false,
        )
        .unwrap();
        match r.command {
            Command::Analyze(a) => {
                assert_eq!(a.trace_id.as_deref(), Some("new"));
                assert!(a.trace_parent.is_none());
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Strictness: non-object, missing trace_id, unknown keys.
        for line in [
            r#"{"cmd":"analyze","source":"x","trace":"t"}"#,
            r#"{"cmd":"analyze","source":"x","trace":{"parent":"router"}}"#,
            r#"{"cmd":"analyze","source":"x","trace":{"trace_id":"t","span":1}}"#,
        ] {
            let e = parse_request(line, false).unwrap_err();
            assert_eq!(e.0, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn trace_and_last_traces_commands_parse_strictly() {
        let r = parse_request(r#"{"id":1,"cmd":"trace","trace_id":"taj-1"}"#, false).unwrap();
        assert!(matches!(r.command, Command::Trace { trace_id } if trace_id == "taj-1"));
        let e = parse_request(r#"{"cmd":"trace"}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest, "trace requires trace_id");
        let e = parse_request(r#"{"cmd":"trace","trace_id":"t","x":1}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);

        let r = parse_request(r#"{"cmd":"last_traces"}"#, false).unwrap();
        assert!(matches!(r.command, Command::LastTraces { limit: None }));
        let r = parse_request(r#"{"cmd":"last_traces","limit":5}"#, false).unwrap();
        assert!(matches!(r.command, Command::LastTraces { limit: Some(5) }));
        let e = parse_request(r#"{"cmd":"last_traces","limit":"all"}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
    }

    #[test]
    fn stamp_trace_preserves_every_client_byte() {
        let line = r#"{"id": 7, "cmd": "analyze", "source": "class A {}"}"#;
        let stamped = stamp_trace(line, "taj-r-9", "router");
        assert_eq!(
            stamped,
            r#"{"trace":{"trace_id":"taj-r-9","parent":"router"},"id": 7, "cmd": "analyze", "source": "class A {}"}"#
        );
        // The stamped line still parses, and the context is picked up.
        let r = parse_request(&stamped, false).unwrap();
        match r.command {
            Command::Analyze(a) => {
                assert_eq!(a.source, "class A {}", "client bytes untouched");
                assert_eq!(a.trace_id.as_deref(), Some("taj-r-9"));
                assert_eq!(a.trace_parent.as_deref(), Some("router"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Degenerate shapes stay parseable / unchanged.
        assert_eq!(stamp_trace("{}", "t", "p"), r#"{"trace":{"trace_id":"t","parent":"p"}}"#);
        assert_eq!(stamp_trace("not json", "t", "p"), "not json");
        assert_eq!(stamp_trace("[1]", "t", "p"), "[1]");
    }

    #[test]
    fn analyze_delta_parses_strictly() {
        let r = parse_request(
            r#"{"id":1,"cmd":"analyze_delta","base_source":"class A {}","source":"class A { field int x; }","config":"cs","degrade":true}"#,
            false,
        )
        .expect("parses");
        match r.command {
            Command::AnalyzeDelta(d) => {
                assert_eq!(d.base_source, "class A {}");
                assert_eq!(d.request.source, "class A { field int x; }");
                assert_eq!(d.request.config, "cs");
                assert!(d.request.degrade);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // base_source is mandatory …
        let e = parse_request(r#"{"cmd":"analyze_delta","source":"x"}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        // … must be a string …
        let e = parse_request(r#"{"cmd":"analyze_delta","source":"x","base_source":3}"#, false)
            .unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        // … and the field set stays strict.
        let e = parse_request(
            r#"{"cmd":"analyze_delta","source":"x","base_source":"y","bogus":1}"#,
            false,
        )
        .unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        // Plain analyze does NOT accept base_source.
        let e = parse_request(r#"{"cmd":"analyze","source":"x","base_source":"y"}"#, false)
            .unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
    }

    #[test]
    fn delta_envelope_keeps_result_bytes_par_with_analyze() {
        let raw = "{\"findings\":[]}";
        let plain = ok_response_raw_traced(&Value::UInt(3), "t-1", raw);
        let delta = ok_response_raw_traced_delta(
            &Value::UInt(3),
            "t-1",
            "{\"methods_resolved\":2,\"methods_total\":10}",
            raw,
        );
        let vp = serde_json::from_str(&plain).unwrap();
        let vd = serde_json::from_str(&delta).unwrap();
        // The `result` value is spliced identically; only the envelope
        // grows a `delta` object.
        assert_eq!(
            serde_json::to_string(&vp["result"]).unwrap(),
            serde_json::to_string(&vd["result"]).unwrap()
        );
        assert_eq!(vd["delta"]["methods_resolved"], 2u64);
        assert_eq!(vd["delta"]["methods_total"], 10u64);
        assert_eq!(vd["trace_id"], "t-1");
    }

    #[test]
    fn batch_parses_with_per_item_isolation() {
        let line = r#"{"id":9,"cmd":"batch","timeout_ms":5000,"items":[
            {"source":"class A {}","config":"cs"},
            {"source":7},
            {"source":"class B {}","bogus":true},
            {"source":"class C {}"}]}"#
            .replace('\n', " ");
        let r = parse_request(&line, false).expect("envelope parses");
        let Command::Batch(batch) = r.command else { panic!("wrong command") };
        assert_eq!(batch.timeout_ms, Some(5000));
        assert_eq!(batch.items.len(), 4);
        assert_eq!(batch.items[0].as_ref().unwrap().config, "cs");
        assert!(batch.items[1].is_err(), "mistyped source is that item's error");
        assert!(batch.items[2].is_err(), "unknown field is that item's error");
        assert_eq!(batch.items[3].as_ref().unwrap().config, "hybrid");
    }

    #[test]
    fn batch_envelope_strictness() {
        let e = parse_request(r#"{"cmd":"batch"}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest, "missing items");
        let e = parse_request(r#"{"cmd":"batch","items":{}}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest, "items must be an array");
        let e = parse_request(r#"{"cmd":"batch","items":[],"extra":1}"#, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest, "unknown envelope field");
        let r = parse_request(r#"{"cmd":"batch","items":[]}"#, false).unwrap();
        let Command::Batch(batch) = r.command else { panic!("wrong command") };
        assert!(batch.items.is_empty(), "empty batch is legal");
        let big: Vec<String> =
            (0..MAX_BATCH_ITEMS + 1).map(|_| r#"{"source":"x"}"#.to_string()).collect();
        let line = format!(r#"{{"cmd":"batch","items":[{}]}}"#, big.join(","));
        let e = parse_request(&line, false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest, "oversized batch rejected");
    }

    #[test]
    fn batch_response_builders_compose() {
        let items = vec![
            batch_item_ok("t-1", "{\"a\":1}"),
            batch_item_err("t-2", ErrorCode::ParseError, "bad program"),
        ];
        let raw = batch_result_raw(&items);
        let envelope = ok_response_raw(&Value::UInt(4), &raw);
        let v = serde_json::from_str(&envelope).unwrap();
        assert_eq!(v["result"]["count"], 2u64);
        assert_eq!(v["result"]["items"][0]["ok"], true);
        assert_eq!(v["result"]["items"][0]["trace_id"], "t-1");
        assert_eq!(v["result"]["items"][0]["result"]["a"], 1u64);
        assert_eq!(v["result"]["items"][1]["ok"], false);
        assert_eq!(v["result"]["items"][1]["error"]["code"], "parse_error");
    }

    #[test]
    fn overloaded_errors_carry_a_retry_hint() {
        let err =
            err_response_retry(&Value::UInt(1), ErrorCode::Overloaded, "queue full", Some(40));
        let v = serde_json::from_str(&err).unwrap();
        assert_eq!(v["error"]["code"], "overloaded");
        assert_eq!(v["error"]["retry_after_ms"], 40u64);
        let traced = err_response_traced_retry(
            &Value::Null,
            "t-9",
            ErrorCode::Overloaded,
            "queue full",
            Some(25),
        );
        let v = serde_json::from_str(&traced).unwrap();
        assert_eq!(v["trace_id"], "t-9");
        assert_eq!(v["error"]["retry_after_ms"], 25u64);
        let item = batch_item_err_retry("t-b", ErrorCode::Overloaded, "queue full", Some(10));
        let v = serde_json::from_str(&item).unwrap();
        assert_eq!(v["error"]["retry_after_ms"], 10u64);
        // Errors without a hint keep the old two-field object.
        let plain = err_response(&Value::Null, ErrorCode::Timeout, "slow");
        assert!(!plain.contains("retry_after_ms"), "{plain}");
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::ShuttingDown.is_retryable());
        assert!(!ErrorCode::Timeout.is_retryable());
    }

    #[test]
    fn responses_round_trip() {
        let ok = ok_response_raw(&Value::UInt(3), "{\"a\":1}");
        let v = serde_json::from_str(&ok).unwrap();
        assert_eq!(v["ok"], true);
        assert_eq!(v["result"]["a"], 1u64);
        let err = err_response(&Value::Null, ErrorCode::Timeout, "too slow");
        let v = serde_json::from_str(&err).unwrap();
        assert_eq!(v["ok"], false);
        assert_eq!(v["error"]["code"], "timeout");
    }
}
