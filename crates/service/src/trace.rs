//! Cross-process trace stitching: merges per-process span fragments
//! (the payload of the `trace <id>` NDJSON command) into one Chrome
//! `trace_event`-format JSON document, with a distinct pid per fragment,
//! so Perfetto / `chrome://tracing` shows the router and every shard
//! that touched a request as side-by-side process tracks on a shared
//! timeline.
//!
//! A fragment is the wire object a daemon or router produces for one
//! retained request record:
//!
//! ```json
//! {"process":"shard0","outcome":"ok","elapsed_us":1234,
//!  "attrs":{"cache_tier":"report","degraded":false},
//!  "spans":[{"name":"queue.wait","ts":0,"dur":40},
//!           {"name":"cache.probe","ts":41,"args":{"tier":"report","hit":true}}]}
//! ```
//!
//! Spans carrying a `dur` become complete (`"ph":"X"`) events; the rest
//! become global instant events. Each fragment also contributes a
//! `process_name` metadata event labeling its track
//! `<process> [<outcome>]`, and the fragment's `attrs` ride along on a
//! zero-duration `request.attrs` instant so outcome attribution is
//! visible inside the trace viewer too.

use serde::Value;

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

/// Merges fragment objects into Chrome trace JSON. Fragments are
/// assigned pids 1..N in input order; malformed fragments (not objects,
/// or without a `spans` array) still get their process track so a
/// partial fetch is visible rather than silently dropped.
pub fn stitch_fragments(fragments: &[Value]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for (i, fragment) in fragments.iter().enumerate() {
        let pid = (i + 1) as u128;
        let process = fragment.get("process").and_then(Value::as_str).unwrap_or("unknown");
        let outcome = fragment.get("outcome").and_then(Value::as_str).unwrap_or("unknown");

        let mut meta = Value::object();
        meta.insert("name", s("process_name"));
        meta.insert("ph", s("M"));
        meta.insert("pid", Value::UInt(pid));
        meta.insert("tid", Value::UInt(1));
        let mut meta_args = Value::object();
        meta_args.insert("name", s(&format!("{process} [{outcome}]")));
        meta.insert("args", meta_args);
        events.push(meta);

        if let Some(attrs) = fragment.get("attrs") {
            let mut ev = Value::object();
            ev.insert("name", s("request.attrs"));
            ev.insert("cat", s("taj"));
            ev.insert("pid", Value::UInt(pid));
            ev.insert("tid", Value::UInt(1));
            ev.insert("ts", Value::UInt(0));
            ev.insert("ph", s("i"));
            ev.insert("s", s("g"));
            ev.insert("args", attrs.clone());
            events.push(ev);
        }

        let spans = match fragment.get("spans") {
            Some(Value::Array(spans)) => spans.as_slice(),
            _ => &[],
        };
        for span in spans {
            let mut ev = Value::object();
            ev.insert("name", span.get("name").cloned().unwrap_or_else(|| s("unnamed")));
            ev.insert("cat", s("taj"));
            ev.insert("pid", Value::UInt(pid));
            ev.insert("tid", Value::UInt(1));
            ev.insert("ts", span.get("ts").cloned().unwrap_or(Value::UInt(0)));
            match span.get("dur") {
                Some(dur) => {
                    ev.insert("ph", s("X"));
                    ev.insert("dur", dur.clone());
                }
                None => {
                    ev.insert("ph", s("i"));
                    ev.insert("s", s("g"));
                }
            }
            if let Some(args) = span.get("args") {
                ev.insert("args", args.clone());
            }
            events.push(ev);
        }
    }
    let mut out = Value::object();
    out.insert("traceEvents", Value::Array(events));
    out.insert("displayTimeUnit", s("ms"));
    serde_json::to_string(&out).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
}

/// Extracts the `fragments` array from a parsed `trace <id>` result
/// object; empty when the shape is unexpected.
pub fn fragments_of(result: &Value) -> Vec<Value> {
    match result.get("fragments") {
        Some(Value::Array(fragments)) => fragments.clone(),
        _ => Vec::new(),
    }
}

/// Relabels a fragment's `process` field (e.g. a daemon's generic
/// `daemon` label to the router's `shard0`). Non-object fragments are
/// left untouched.
pub fn relabel_process(fragment: &mut Value, process: &str) {
    if let Value::Object(_) = fragment {
        fragment.insert("process", s(process));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fragment(process: &str) -> Value {
        let text = format!(
            "{{\"process\":\"{process}\",\"outcome\":\"ok\",\"elapsed_us\":10,\
             \"attrs\":{{\"degraded\":false}},\
             \"spans\":[{{\"name\":\"queue.wait\",\"ts\":1,\"dur\":4}},\
             {{\"name\":\"cache.probe\",\"ts\":6,\"args\":{{\"tier\":\"report\",\"hit\":false}}}}]}}"
        );
        serde_json::from_str(&text).expect("fragment json")
    }

    #[test]
    fn stitch_assigns_one_pid_per_fragment_with_process_names() {
        let json = stitch_fragments(&[fragment("router"), fragment("shard0")]);
        let v: Value = serde_json::from_str(&json).expect("stitched json");
        let Some(Value::Array(events)) = v.get("traceEvents") else {
            panic!("missing traceEvents: {json}")
        };
        let metas: Vec<&Value> =
            events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("M")).collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0]["args"]["name"].as_str(), Some("router [ok]"));
        assert_eq!(metas[1]["args"]["name"].as_str(), Some("shard0 [ok]"));
        assert_eq!(metas[0]["pid"].as_u64(), Some(1));
        assert_eq!(metas[1]["pid"].as_u64(), Some(2));
        // Spans carry their fragment's pid; durationful spans are "X".
        let waits: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("queue.wait"))
            .collect();
        assert_eq!(waits.len(), 2);
        assert_eq!(waits[0]["ph"].as_str(), Some("X"));
        assert_eq!(waits[0]["dur"].as_u64(), Some(4));
        assert_ne!(waits[0]["pid"].as_u64(), waits[1]["pid"].as_u64());
        // Instant spans keep their args and gain global scope.
        let probe = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("cache.probe"))
            .expect("cache.probe event");
        assert_eq!(probe["ph"].as_str(), Some("i"));
        assert_eq!(probe["args"]["tier"].as_str(), Some("report"));
    }

    #[test]
    fn fragments_round_trip_through_trace_result_shape() {
        let result: Value = serde_json::from_str(
            "{\"trace_id\":\"taj-1\",\"fragments\":[{\"process\":\"daemon\",\"spans\":[]}]}",
        )
        .expect("result json");
        let mut fragments = fragments_of(&result);
        assert_eq!(fragments.len(), 1);
        relabel_process(&mut fragments[0], "shard3");
        assert_eq!(fragments[0]["process"].as_str(), Some("shard3"));
        let json = stitch_fragments(&fragments);
        assert!(json.contains("shard3 [unknown]"), "{json}");
    }
}
