//! A fixed `std::thread` worker pool fed by an MPMC job queue.
//!
//! The queue is a plain `mpsc` channel whose receiver is shared behind a
//! `Mutex` — the standard std-only MPMC construction: any idle worker
//! locks the receiver, takes one job, releases, runs. Panics inside a job
//! are caught per-job so a poisoned analysis never kills its worker (let
//! alone the daemon); the panic is counted and the job's result channel
//! simply drops, which the submitter observes as a disconnect.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use taj_supervise::Supervisor;

/// A unit of work. Jobs communicate results over their own channels.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// What travels down the queue: a plain job, or a job paired with the
/// supervision handle its submitter can cancel it through.
enum Task {
    Plain(Job),
    Supervised(Job, Supervisor),
}

/// Submission error: the pool has been shut down.
#[derive(Debug)]
pub struct PoolClosed;

/// The worker pool. Dropping it without [`WorkerPool::shutdown`] detaches
/// the workers (they drain the queue and exit).
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    completed: Arc<AtomicU64>,
    panicked: Arc<AtomicU64>,
    reclaimed: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `size.max(1)` workers.
    pub fn new(size: usize) -> WorkerPool {
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let completed = Arc::new(AtomicU64::new(0));
        let panicked = Arc::new(AtomicU64::new(0));
        let reclaimed = Arc::new(AtomicU64::new(0));
        let workers = (0..size.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let completed = Arc::clone(&completed);
                let panicked = Arc::clone(&panicked);
                let reclaimed = Arc::clone(&reclaimed);
                std::thread::Builder::new()
                    .name(format!("taj-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &completed, &panicked, &reclaimed))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { sender: Some(sender), workers, completed, panicked, reclaimed }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job for the next idle worker.
    ///
    /// # Errors
    /// [`PoolClosed`] after [`WorkerPool::shutdown`].
    pub fn submit(&self, job: Job) -> Result<(), PoolClosed> {
        match &self.sender {
            Some(s) => s.send(Task::Plain(job)).map_err(|_| PoolClosed),
            None => Err(PoolClosed),
        }
    }

    /// Enqueues a cancellable job. When it finishes with its supervisor
    /// cancelled — the submitter gave up on it (deadline) and the
    /// cooperative checks brought it home early — the reclaim counter is
    /// bumped: that worker would have been leaked to the abandoned job
    /// until it ran to natural completion.
    ///
    /// # Errors
    /// [`PoolClosed`] after [`WorkerPool::shutdown`].
    pub fn submit_supervised(&self, job: Job, supervisor: Supervisor) -> Result<(), PoolClosed> {
        match &self.sender {
            Some(s) => s.send(Task::Supervised(job, supervisor)).map_err(|_| PoolClosed),
            None => Err(PoolClosed),
        }
    }

    /// Jobs run to completion (including ones whose body panicked).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::SeqCst)
    }

    /// Jobs whose body panicked.
    pub fn panicked(&self) -> u64 {
        self.panicked.load(Ordering::SeqCst)
    }

    /// Shared handle to the panic counter (for server stats).
    pub fn panic_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.panicked)
    }

    /// Supervised jobs that finished after their supervisor was cancelled
    /// (workers returned to the pool instead of leaking to abandoned work).
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::SeqCst)
    }

    /// Shared handle to the reclaim counter (for server stats).
    pub fn reclaim_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.reclaimed)
    }

    /// Closes the queue and joins every worker after it drains: queued and
    /// in-flight jobs all complete — the daemon's graceful-drain
    /// primitive.
    pub fn shutdown(mut self) {
        self.sender = None; // disconnect: workers exit once the queue is empty
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    receiver: &Arc<Mutex<Receiver<Task>>>,
    completed: &Arc<AtomicU64>,
    panicked: &Arc<AtomicU64>,
    reclaimed: &Arc<AtomicU64>,
) {
    loop {
        let task = {
            let guard = match receiver.lock() {
                Ok(g) => g,
                Err(_) => return, // queue mutex poisoned: no more work is coming
            };
            guard.recv()
        };
        match task {
            Ok(task) => {
                let (job, supervisor) = match task {
                    Task::Plain(job) => (job, None),
                    Task::Supervised(job, sup) => (job, Some(sup)),
                };
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    panicked.fetch_add(1, Ordering::SeqCst);
                }
                if supervisor.is_some_and(|s| s.is_cancelled()) {
                    reclaimed.fetch_add(1, Ordering::SeqCst);
                }
                completed.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => return, // sender dropped and queue drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::RecvTimeoutError;
    use std::time::Duration;

    #[test]
    fn runs_jobs_on_multiple_workers() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = channel();
        for i in 0..32u64 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(i).unwrap())).unwrap();
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1);
        let completed = Arc::clone(&pool.completed);
        let panicked = pool.panic_counter();
        pool.submit(Box::new(|| panic!("job goes boom"))).unwrap();
        let (tx, rx) = channel();
        pool.submit(Box::new(move || tx.send(41u8).unwrap())).unwrap();
        // The single worker survived the panic and ran the next job.
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(41));
        // Counters are only final once the worker is joined — `send`
        // happens inside the job, before its completion accounting.
        pool.shutdown();
        assert_eq!(panicked.load(Ordering::SeqCst), 1);
        assert_eq!(completed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(()).unwrap();
            }))
            .unwrap();
        }
        drop(tx);
        pool.shutdown(); // must block until all 8 ran
        assert_eq!(rx.try_iter().count(), 8);
    }

    #[test]
    fn cancelled_supervised_job_counts_as_reclaimed() {
        let pool = WorkerPool::new(1);
        let reclaimed = pool.reclaim_counter();
        // A supervised job whose submitter gave up (cancelled) before it
        // finished: the worker comes back and is counted as reclaimed.
        let cancelled = taj_supervise::Supervisor::new();
        cancelled.cancel();
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        pool.submit_supervised(Box::new(move || tx.send(1u8).unwrap()), cancelled).unwrap();
        // A supervised job that completes normally is not "reclaimed".
        pool.submit_supervised(Box::new(move || tx2.send(2u8).unwrap()), Supervisor::new())
            .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(2));
        pool.shutdown();
        assert_eq!(reclaimed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let pool = WorkerPool::new(1);
        let counter = pool.panic_counter();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        // A fresh pool that is immediately closed rejects submissions.
        let mut pool = WorkerPool::new(1);
        pool.sender = None;
        assert!(pool.submit(Box::new(|| {})).is_err());
        let (tx, rx) = channel::<()>();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }
}
