//! The shard router: a thin front-end that speaks the same NDJSON
//! protocol as the daemon and fans requests out to N backend daemons.
//!
//! Routing is content-addressed, mirroring the cache keys: a request
//! lands on shard `(hash(source) ^ hash(rules)) % N`, so repeats of the
//! same program always reach the daemon whose cache (and persistent
//! store) already holds its artifacts. Horizontal scaling therefore
//! multiplies both worker capacity *and* effective cache capacity —
//! shards never duplicate each other's hot entries.
//!
//! `analyze` lines are forwarded to their shard **verbatim**, so the
//! response bytes a client sees through the router are identical to a
//! direct connection. `batch` envelopes are split per shard, forwarded
//! as sub-batches, and merged back in item order.
//!
//! Shard failure handling is a circuit breaker per shard (see
//! [`crate::breaker`]): transport failures are retried with backoff up
//! to [`RouterTuning::forward_attempts`]; when a shard keeps failing,
//! its breaker opens and requests fail over to a local, cache-free
//! analysis immediately — the router degrades to a slower answer, never
//! an error. A background prober thread issues cheap `configs` pings to
//! open breakers after their cooldown, so a restarted shard is
//! reintegrated by synthetic traffic, not by sacrificing user requests.
//! An `overloaded` rejection from a shard is *not* a breaker failure:
//! it is retried once after the shard's `retry_after_ms` hint and then
//! relayed to the client — failing over would amplify the overload the
//! shard just shed.
//!
//! The router holds no analysis state of its own: `configs` is answered
//! locally (it is static), `stats`/`metrics` report the router's own
//! counters plus per-shard health, and `shutdown` drains the router
//! only — backends are managed by whoever started them.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::Value;
use taj_core::{Recorder, Supervisor};
use taj_obs::metrics::{Exposition, Histogram};
use taj_obs::{FlightRecorder, RequestRecord, TraceEvent};

use crate::breaker::{Breaker, BreakerState};
use crate::cache::content_hash;
use crate::client::{Client, RetryPolicy};
use crate::protocol::{
    batch_item_err, batch_item_ok, batch_result_raw, err_response, err_response_traced,
    ok_response_raw, ok_response_raw_traced, ok_response_raw_traced_delta, parse_request,
    stamp_trace, AnalyzeDeltaRequest, AnalyzeRequest, BatchRequest, Command, ErrorCode,
    PROTOCOL_VERSION,
};
use crate::server::{
    accept_loop, analyze_uncached, bind_listener, configs_value, store_fingerprint, Bind,
    BoundAddr, LineHandler,
};
use crate::trace::{fragments_of, relabel_process, stitch_fragments};

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterOptions {
    /// Listen address for clients.
    pub bind: Bind,
    /// Backend daemon TCP addresses (`host:port`), one per shard. The
    /// shard count is fixed for the router's lifetime — changing it
    /// remaps keys, which is exactly a cache flush.
    pub shards: Vec<String>,
    /// Deadline applied to local-failover analyses when the request
    /// carries none (forwarded requests use the backend's default).
    pub default_timeout_ms: Option<u64>,
    /// Breaker, retry, and prober knobs.
    pub tuning: RouterTuning,
    /// Flight-recorder capacity for the router's own hop records
    /// (`trace <id>` / `last_traces` answer from this ring). `0`
    /// disables capture.
    pub flight_records: usize,
    /// On shutdown, stitch every retained trace (router record plus any
    /// shard fragments still fetchable) into one Chrome trace JSON file
    /// at this path.
    pub trace_out: Option<PathBuf>,
}

impl RouterOptions {
    /// Ephemeral-TCP options for tests and harnesses: bind
    /// `127.0.0.1:0`, default tuning, the default flight ring, no
    /// shutdown trace file.
    pub fn tcp_ephemeral(shards: Vec<String>) -> RouterOptions {
        RouterOptions {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            shards,
            default_timeout_ms: None,
            tuning: RouterTuning::default(),
            flight_records: crate::server::DEFAULT_FLIGHT_RECORDS,
            trace_out: None,
        }
    }
}

/// Breaker, retry, and prober knobs for the router's shard handling.
#[derive(Clone, Debug)]
pub struct RouterTuning {
    /// Consecutive transport failures that open a shard's breaker.
    pub failure_threshold: u32,
    /// Rest before an open breaker may be probed (ms).
    pub cooldown_ms: u64,
    /// How often the background prober scans for probe-ready shards (ms).
    pub probe_interval_ms: u64,
    /// Transport attempts per forward (1 = no retry). Only idempotent
    /// lines reach `forward`, so a resend can never duplicate effects.
    pub forward_attempts: u32,
    /// Base backoff between forward attempts (ms, doubled per retry).
    pub retry_base_ms: u64,
    /// Ceiling on how long the router honors a shard's `retry_after_ms`
    /// hint before relaying the `overloaded` rejection to the client
    /// (ms). The router retries an overloaded shard exactly once.
    pub overload_retry_cap_ms: u64,
    /// Socket read/write timeout on shard connections (ms); bounds how
    /// long a stalled shard can hold a router connection handler.
    pub shard_io_timeout_ms: Option<u64>,
}

impl Default for RouterTuning {
    fn default() -> RouterTuning {
        RouterTuning {
            failure_threshold: 3,
            cooldown_ms: 250,
            probe_interval_ms: 50,
            forward_attempts: 2,
            retry_base_ms: 10,
            overload_retry_cap_ms: 100,
            shard_io_timeout_ms: Some(30_000),
        }
    }
}

/// One backend daemon and its health bookkeeping. The connection is
/// persistent and serialized behind a mutex: the daemon protocol is
/// sequential per socket, so concurrent router connections to the same
/// shard queue here rather than interleaving frames.
///
/// Counters are disjoint by design (the arithmetic is pinned by a
/// test): every `forward` call ends in exactly one of `forwarded`
/// (a response was relayed) or `failovers` (the caller must answer
/// locally); `retried` counts extra transport attempts *within* a
/// forward, on top of either outcome.
struct Shard {
    addr: String,
    conn: Mutex<Option<Client>>,
    breaker: Breaker,
    /// Mirrors "last forward outcome" for stats/metric compatibility;
    /// the breaker (not this flag) decides routing.
    healthy: AtomicBool,
    /// Forward calls that relayed a shard response (success or a shard-
    /// answered error).
    forwarded: AtomicU64,
    /// Forward calls that returned nothing — fast-failed on an open
    /// breaker or exhausted transport attempts — so the caller answered
    /// locally.
    failovers: AtomicU64,
    /// Extra attempts beyond each forward's first (reconnect + resend).
    retried: AtomicU64,
    /// Synthetic `configs` pings issued by the background prober.
    probes: AtomicU64,
    /// Times the breaker tripped open.
    opens: AtomicU64,
}

impl Shard {
    fn new(addr: String, tuning: &RouterTuning) -> Shard {
        Shard {
            addr,
            conn: Mutex::new(None),
            breaker: Breaker::new(
                tuning.failure_threshold,
                Duration::from_millis(tuning.cooldown_ms),
            ),
            healthy: AtomicBool::new(true),
            forwarded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            opens: AtomicU64::new(0),
        }
    }

    /// Sends one raw line and returns the raw response; `None` means the
    /// caller must fail over locally. Exactly one of `forwarded` /
    /// `failovers` is bumped per call. Retry and overload-wait hops are
    /// recorded on `rec` so a stitched trace shows them per request.
    fn forward(&self, line: &str, tuning: &RouterTuning, rec: &Recorder) -> Option<String> {
        let result = self.try_forward(line, tuning, rec);
        match result {
            Some(_) => {
                self.forwarded.fetch_add(1, Ordering::SeqCst);
                self.healthy.store(true, Ordering::SeqCst);
            }
            None => {
                self.failovers.fetch_add(1, Ordering::SeqCst);
                self.healthy.store(false, Ordering::SeqCst);
            }
        }
        result
    }

    fn try_forward(&self, line: &str, tuning: &RouterTuning, rec: &Recorder) -> Option<String> {
        // Open breaker: fail fast. The caller's local failover answers
        // the request; the prober (not this request) tests the shard.
        if !self.breaker.allows_request() {
            if rec.is_enabled() {
                rec.event("router.breaker_open", Vec::new());
            }
            return None;
        }
        let mut guard = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let Some(first) = self.attempt_loop(line, tuning, rec, &mut guard) else {
            if self.breaker.on_failure(Instant::now()) {
                self.opens.fetch_add(1, Ordering::SeqCst);
            }
            return None;
        };
        // `overloaded` is the shard *working as designed* under
        // pressure, not a failure: honor its hint once, then relay the
        // rejection. Never fail over — local analysis on the router
        // would absorb exactly the load the shard just shed.
        let response = match overload_hint(&first) {
            Some(hint) => {
                self.retried.fetch_add(1, Ordering::SeqCst);
                if rec.is_enabled() {
                    rec.event("router.overload_wait", vec![("hint_ms", hint.into())]);
                }
                std::thread::sleep(Duration::from_millis(hint.min(tuning.overload_retry_cap_ms)));
                // If the retry's transport dies, the original rejection
                // (with its hint) is still the honest answer to relay.
                self.attempt_loop(line, tuning, rec, &mut guard).unwrap_or(first)
            }
            None => first,
        };
        self.breaker.on_success();
        Some(response)
    }

    /// The transport loop: up to `forward_attempts` sends with
    /// exponential backoff, reconnecting a dead cached connection before
    /// each resend. `None` means the shard is unreachable or draining.
    fn attempt_loop(
        &self,
        line: &str,
        tuning: &RouterTuning,
        rec: &Recorder,
        guard: &mut Option<Client>,
    ) -> Option<String> {
        let attempts = tuning.forward_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retried.fetch_add(1, Ordering::SeqCst);
                if rec.is_enabled() {
                    rec.event("router.retry", vec![("attempt", u64::from(attempt).into())]);
                }
                let backoff = tuning.retry_base_ms.saturating_mul(1 << (attempt - 1).min(10));
                std::thread::sleep(Duration::from_millis(backoff));
            }
            if guard.is_none() {
                *guard = self.dial(tuning);
            }
            let Some(client) = guard.as_mut() else { continue };
            match client.request_raw(line) {
                // A draining backend still answers — with a
                // `shutting_down` error (or a batch envelope whose
                // every item is one). That is a shard failure from the
                // client's point of view, not a response worth
                // forwarding.
                Ok(response) if is_draining_error(&response) || batch_fully_draining(&response) => {
                    *guard = None;
                    return None;
                }
                Ok(response) => return Some(response),
                Err(_) => *guard = None,
            }
        }
        None
    }

    fn dial(&self, tuning: &RouterTuning) -> Option<Client> {
        let mut client = Client::connect_tcp(&self.addr).ok()?;
        // The router runs its own attempt loop; nested client retries
        // would multiply it.
        client.set_retry(RetryPolicy::none());
        let timeout = tuning.shard_io_timeout_ms.map(Duration::from_millis);
        client.set_io_timeout(timeout).ok()?;
        Some(client)
    }
}

/// Extracts the `retry_after_ms` hint from an `overloaded` error
/// response; `None` for anything else.
fn overload_hint(response: &str) -> Option<u64> {
    if !response.contains("\"overloaded\"") {
        return None;
    }
    let v: Value = serde_json::from_str(response).ok()?;
    if v["error"]["code"].as_str() != Some("overloaded") {
        return None;
    }
    Some(v["error"]["retry_after_ms"].as_u64().unwrap_or(25))
}

fn is_draining_error(response: &str) -> bool {
    // Cheap pre-filter: success responses (which may be large reports)
    // never parse here.
    if !response.contains("\"ok\":false") {
        return false;
    }
    serde_json::from_str(response)
        .ok()
        .is_some_and(|v: Value| v["error"]["code"].as_str() == Some("shutting_down"))
}

/// A batch envelope in which *every* item was shed with
/// `shutting_down`: the shard executed nothing, so the whole forward is
/// a shard failure (breaker + group failover), exactly like a
/// transport-level one. A *mixed* response — the shard began draining
/// mid-envelope — is kept: re-running its completed items would be
/// duplicate execution, so only the shed items fail over (see
/// [`route_batch`]).
fn batch_fully_draining(response: &str) -> bool {
    if !response.contains("\"shutting_down\"") {
        return false;
    }
    let Ok(v) = serde_json::from_str(response) else { return false };
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        return false;
    }
    let Some(Value::Array(items)) = v.get("result").and_then(|r| r.get("items")) else {
        return false;
    };
    !items.is_empty() && items.iter().all(|i| i["error"]["code"].as_str() == Some("shutting_down"))
}

#[derive(Default)]
struct RouterCounters {
    requests: AtomicU64,
    analyze_requests: AtomicU64,
    batch_requests: AtomicU64,
    errors: AtomicU64,
    local_fallbacks: AtomicU64,
}

struct RouterState {
    shards: Vec<Shard>,
    shutdown: Arc<AtomicBool>,
    counters: RouterCounters,
    default_timeout_ms: Option<u64>,
    tuning: RouterTuning,
    started: Instant,
    trace_seq: AtomicU64,
    /// The router's own hop records (forward spans, retries, failovers).
    flight: FlightRecorder,
    /// End-to-end router-side latency, same buckets as the daemon's
    /// request histograms.
    request_seconds: Histogram,
}

/// A running router.
pub struct RouterHandle {
    addr: BoundAddr,
    state: Arc<RouterState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (with any ephemeral TCP port resolved).
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Asks the router to stop accepting and exit.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop to exit.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds and starts the router, returning once it is accepting.
///
/// # Errors
/// Rejects an empty shard list; propagates bind/listen failures.
pub fn route(options: RouterOptions) -> io::Result<RouterHandle> {
    if options.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one shard address",
        ));
    }
    let (listener, addr) = bind_listener(&options.bind)?;
    let tuning = options.tuning;
    let state = Arc::new(RouterState {
        shards: options.shards.into_iter().map(|a| Shard::new(a, &tuning)).collect(),
        shutdown: Arc::new(AtomicBool::new(false)),
        counters: RouterCounters::default(),
        default_timeout_ms: options.default_timeout_ms,
        tuning,
        started: Instant::now(),
        trace_seq: AtomicU64::new(0),
        flight: FlightRecorder::new(options.flight_records),
        request_seconds: Histogram::latency(),
    });
    let handler: LineHandler = {
        let state = Arc::clone(&state);
        Arc::new(move |line: &str| handle_line(line, &state))
    };
    // The background health prober: the only thing that talks to a shard
    // whose breaker is open. Probes are synthetic `configs` pings over a
    // fresh connection, so reintegration never costs a user request.
    let prober_state = Arc::clone(&state);
    let prober = std::thread::Builder::new()
        .name("taj-router-prober".to_string())
        .spawn(move || prober_loop(&prober_state))
        .expect("spawn router prober");
    let shutdown = Arc::clone(&state.shutdown);
    let accept_addr = addr.clone();
    let trace_out = options.trace_out;
    let trace_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("taj-router-accept".to_string())
        .spawn(move || {
            accept_loop(&listener, &shutdown, &handler);
            // Stitch before the prober joins: shards are still likely
            // alive at this point, so their fragments can be fetched.
            if let Some(path) = &trace_out {
                let _ = std::fs::write(path, stitched_ring_json(&trace_state));
            }
            let _ = prober.join();
            if let BoundAddr::Unix(path) = &accept_addr {
                let _ = std::fs::remove_file(path);
            }
        })
        .expect("spawn router accept loop");
    Ok(RouterHandle { addr, state, accept_thread: Some(accept_thread) })
}

fn prober_loop(state: &Arc<RouterState>) {
    let interval = Duration::from_millis(state.tuning.probe_interval_ms.max(1));
    while !state.shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        for shard in &state.shards {
            if !shard.breaker.wants_probe(now) {
                continue;
            }
            shard.probes.fetch_add(1, Ordering::SeqCst);
            if probe_shard(&shard.addr, &state.tuning) {
                shard.breaker.on_probe_success();
            } else {
                shard.breaker.on_probe_failure(Instant::now());
            }
        }
        std::thread::sleep(interval);
    }
}

/// One synthetic health check: a fresh connection and a `configs` ping.
/// Fresh, because the cached forwarding connection is exactly what is
/// suspect while the breaker is open; `configs`, because it is answered
/// without touching the worker pool — a probe can never add load to a
/// recovering shard's queue.
fn probe_shard(addr: &str, tuning: &RouterTuning) -> bool {
    let Ok(mut client) = Client::connect_tcp(addr) else { return false };
    client.set_retry(RetryPolicy::none());
    let timeout = Duration::from_millis(tuning.shard_io_timeout_ms.unwrap_or(30_000).min(2_000));
    if client.set_io_timeout(Some(timeout)).is_err() {
        return false;
    }
    client.configs().is_ok()
}

/// The shard an analyze request belongs to: the same content addresses
/// the cache keys use, folded over the shard count. Config/format do
/// not participate — all variants of one program share a shard, so its
/// phase-1 artifacts are computed exactly once across the fleet.
fn shard_index(req: &AnalyzeRequest, shards: usize) -> usize {
    let src = content_hash(req.source.as_bytes());
    let rules = req.rules.as_ref().map_or(0, |r| content_hash(r.as_bytes()));
    ((src ^ rules) % shards as u128) as usize
}

fn mint_trace_id(state: &Arc<RouterState>) -> String {
    format!("taj-r-{:016x}", state.trace_seq.fetch_add(1, Ordering::SeqCst) + 1)
}

/// The router's per-request recorder, live only when its flight ring is.
fn router_recorder(state: &Arc<RouterState>) -> Recorder {
    if state.flight.is_enabled() {
        Recorder::new()
    } else {
        Recorder::disabled()
    }
}

/// Captures one routed request into the router's flight ring: the hop
/// events recorded so far under a synthetic `request` root span.
fn capture_router_flight(
    state: &Arc<RouterState>,
    rec: &Recorder,
    trace_id: &str,
    outcome: &'static str,
    started: Instant,
) {
    if !state.flight.is_enabled() {
        return;
    }
    let elapsed_us = started.elapsed().as_micros() as u64;
    let mut events = rec.events();
    events.insert(
        0,
        TraceEvent { name: "request", start_us: 0, dur_us: Some(elapsed_us), attrs: Vec::new() },
    );
    state.flight.push(RequestRecord {
        trace_id: trace_id.to_string(),
        outcome,
        elapsed_us,
        attrs: Vec::new(),
        events,
    });
}

/// Forwards to `shard`, recording the forward as a span (with the shard
/// index and whether a response was relayed) on the request's recorder.
fn traced_forward(
    state: &Arc<RouterState>,
    shard_idx: usize,
    line: &str,
    rec: &Recorder,
) -> Option<String> {
    let shard = &state.shards[shard_idx];
    let start_us = rec.now_us();
    let response = shard.forward(line, &state.tuning, rec);
    if rec.is_enabled() {
        rec.record(TraceEvent {
            name: "router.forward",
            start_us,
            dur_us: Some(rec.now_us().saturating_sub(start_us)),
            attrs: vec![("shard", shard_idx.into()), ("relayed", response.is_some().into())],
        });
    }
    response
}

fn handle_line(line: &str, state: &Arc<RouterState>) -> (String, bool) {
    let started = Instant::now();
    let result = handle_line_inner(line, state, started);
    state.request_seconds.observe(started.elapsed().as_secs_f64());
    result
}

fn handle_line_inner(line: &str, state: &Arc<RouterState>, started: Instant) -> (String, bool) {
    state.counters.requests.fetch_add(1, Ordering::SeqCst);
    let request = match parse_request(line, false) {
        Ok(r) => r,
        Err((code, msg)) => {
            state.counters.errors.fetch_add(1, Ordering::SeqCst);
            return (err_response(&Value::Null, code, &msg), false);
        }
    };
    let id = request.id;
    match request.command {
        Command::Configs => (ok_response_raw(&id, &configs_value()), false),
        Command::Stats => (ok_response_raw(&id, &stats_raw(state)), false),
        Command::Metrics => (ok_response_raw(&id, &metrics_raw(state)), false),
        Command::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            (ok_response_raw(&id, "{\"draining\":true}"), true)
        }
        Command::Analyze(req) => {
            state.counters.analyze_requests.fetch_add(1, Ordering::SeqCst);
            let trace_id = req.trace_id.clone().unwrap_or_else(|| mint_trace_id(state));
            let rec = router_recorder(state);
            let shard_idx = shard_index(&req, state.shards.len());
            // Stamp trace context onto the forwarded line (a textual
            // splice that preserves every client byte), so the shard
            // continues this trace and its fragment is fetchable under
            // the same id.
            let stamped = stamp_trace(line, &trace_id, "router");
            match traced_forward(state, shard_idx, &stamped, &rec) {
                Some(response) => {
                    capture_router_flight(state, &rec, &trace_id, "ok", started);
                    (response, false)
                }
                None => {
                    let response =
                        local_analyze_response(state, &id, &req, req.timeout_ms, &trace_id);
                    capture_router_flight(state, &rec, &trace_id, "failover", started);
                    (response, false)
                }
            }
        }
        Command::AnalyzeDelta(req) => {
            state.counters.analyze_requests.fetch_add(1, Ordering::SeqCst);
            let trace_id = req.request.trace_id.clone().unwrap_or_else(|| mint_trace_id(state));
            let rec = router_recorder(state);
            // Shard by the *base* source (not the edited source): every
            // edit of one program then lands on the daemon whose summary
            // and phase-1 tiers are already warm for that base.
            let src = content_hash(req.base_source.as_bytes());
            let rules = req.request.rules.as_ref().map_or(0, |r| content_hash(r.as_bytes()));
            let shard_idx = ((src ^ rules) % state.shards.len() as u128) as usize;
            let stamped = stamp_trace(line, &trace_id, "router");
            match traced_forward(state, shard_idx, &stamped, &rec) {
                Some(response) => {
                    capture_router_flight(state, &rec, &trace_id, "ok", started);
                    (response, false)
                }
                None => {
                    let response =
                        local_delta_response(state, &id, &req, req.request.timeout_ms, &trace_id);
                    capture_router_flight(state, &rec, &trace_id, "failover", started);
                    (response, false)
                }
            }
        }
        Command::Batch(batch) => {
            state.counters.batch_requests.fetch_add(1, Ordering::SeqCst);
            (ok_response_raw(&id, &route_batch(state, line, batch)), false)
        }
        Command::Trace { trace_id } => (trace_response(state, &id, &trace_id), false),
        Command::LastTraces { limit } => {
            (ok_response_raw(&id, &last_traces_raw(state, limit)), false)
        }
        // `parse_request(_, debug=false)` already rejected these.
        Command::DebugSleep { .. } | Command::DebugPanic => {
            state.counters.errors.fetch_add(1, Ordering::SeqCst);
            (err_response(&id, ErrorCode::BadRequest, "debug commands are not routed"), false)
        }
    }
}

/// Answers `trace <id>` with every fragment reachable for that trace:
/// the router's own hop record plus per-shard fragments fetched live
/// (over fresh connections, so forwarding stats stay untouched) and
/// relabeled `shard<i>`.
fn trace_response(state: &Arc<RouterState>, id: &Value, trace_id: &str) -> String {
    let mut fragments: Vec<String> = Vec::new();
    if let Some(record) = state.flight.get(trace_id) {
        fragments.push(record.fragment_json("router"));
    }
    for (i, shard) in state.shards.iter().enumerate() {
        fragments.extend(fetch_shard_fragments(&shard.addr, trace_id, i, &state.tuning));
    }
    if fragments.is_empty() {
        state.counters.errors.fetch_add(1, Ordering::SeqCst);
        return err_response(
            id,
            ErrorCode::BadRequest,
            &format!("trace `{trace_id}` not found on the router or any shard"),
        );
    }
    let id_json = serde_json::to_string(&Value::String(trace_id.to_string())).unwrap_or_default();
    ok_response_raw(
        id,
        &format!("{{\"trace_id\":{},\"fragments\":[{}]}}", id_json, fragments.join(",")),
    )
}

/// Fetches one shard's fragments for a trace id over a fresh connection;
/// empty when the shard is unreachable or never saw the trace.
fn fetch_shard_fragments(
    addr: &str,
    trace_id: &str,
    shard_idx: usize,
    tuning: &RouterTuning,
) -> Vec<String> {
    let Ok(mut client) = Client::connect_tcp(addr) else { return Vec::new() };
    client.set_retry(RetryPolicy::none());
    let timeout = Duration::from_millis(tuning.shard_io_timeout_ms.unwrap_or(30_000).min(2_000));
    if client.set_io_timeout(Some(timeout)).is_err() {
        return Vec::new();
    }
    let mut request = Value::object();
    request.insert("id", Value::UInt(0));
    request.insert("cmd", Value::String("trace".to_string()));
    request.insert("trace_id", Value::String(trace_id.to_string()));
    let Ok(line) = serde_json::to_string(&request) else { return Vec::new() };
    let Ok(raw) = client.request_raw(&line) else { return Vec::new() };
    let Ok(response) = serde_json::from_str(&raw) else { return Vec::new() };
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        return Vec::new();
    }
    let Some(result) = response.get("result") else { return Vec::new() };
    let label = format!("shard{shard_idx}");
    fragments_of(result)
        .into_iter()
        .map(|mut fragment| {
            relabel_process(&mut fragment, &label);
            serde_json::to_string(&fragment).unwrap_or_else(|_| "{}".to_string())
        })
        .collect()
}

/// `last_traces` body from the router's ring, newest first.
fn last_traces_raw(state: &Arc<RouterState>, limit: Option<u64>) -> String {
    let limit = limit.map_or(usize::MAX, |n| n as usize);
    let records = state.flight.recent(limit);
    let mut out = format!("{{\"count\":{},\"traces\":[", records.len());
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&record.summary_json());
    }
    out.push_str("]}");
    out
}

/// The `--trace-out` payload: every retained trace's fragments (router
/// record plus whatever shards still answer), stitched into one Chrome
/// trace with per-process-per-trace tracks.
fn stitched_ring_json(state: &Arc<RouterState>) -> String {
    let mut fragments: Vec<Value> = Vec::new();
    for record in state.flight.snapshot() {
        let tid = &record.trace_id;
        let parsed: Result<Value, _> = serde_json::from_str(&record.fragment_json("router"));
        if let Ok(mut fragment) = parsed {
            relabel_process(&mut fragment, &format!("router {tid}"));
            fragments.push(fragment);
        }
        for (i, shard) in state.shards.iter().enumerate() {
            for raw in fetch_shard_fragments(&shard.addr, tid, i, &state.tuning) {
                if let Ok(mut fragment) = serde_json::from_str(&raw) {
                    relabel_process(&mut fragment, &format!("shard{i} {tid}"));
                    fragments.push(fragment);
                }
            }
        }
    }
    stitch_fragments(&fragments)
}

/// The failover path: analyze locally (cache-free, inline on the
/// connection thread) and wrap the result in a traced response, exactly
/// the envelope shape a backend would have produced.
fn local_analyze_response(
    state: &Arc<RouterState>,
    id: &Value,
    req: &AnalyzeRequest,
    timeout_ms: Option<u64>,
    trace_id: &str,
) -> String {
    state.counters.local_fallbacks.fetch_add(1, Ordering::SeqCst);
    match local_analyze(state, req, timeout_ms) {
        Ok(raw) => ok_response_raw_traced(id, trace_id, &raw),
        Err((code, msg)) => {
            state.counters.errors.fetch_add(1, Ordering::SeqCst);
            err_response_traced(id, trace_id, code, &msg)
        }
    }
}

/// Delta failover: the router holds no caches, so incremental reuse is
/// impossible here — run a plain cache-free analysis of the edited
/// source (the result bytes are identical either way) and say so in the
/// envelope's delta object.
fn local_delta_response(
    state: &Arc<RouterState>,
    id: &Value,
    req: &AnalyzeDeltaRequest,
    timeout_ms: Option<u64>,
    trace_id: &str,
) -> String {
    state.counters.local_fallbacks.fetch_add(1, Ordering::SeqCst);
    match local_analyze(state, &req.request, timeout_ms) {
        Ok(raw) => ok_response_raw_traced_delta(
            id,
            trace_id,
            "{\"source\":\"local-failover\",\"phase1_reused\":false,\
             \"methods_resolved\":0,\"methods_total\":0}",
            &raw,
        ),
        Err((code, msg)) => {
            state.counters.errors.fetch_add(1, Ordering::SeqCst);
            err_response_traced(id, trace_id, code, &msg)
        }
    }
}

fn local_analyze(
    state: &Arc<RouterState>,
    req: &AnalyzeRequest,
    timeout_ms: Option<u64>,
) -> Result<String, crate::protocol::ProtocolError> {
    let supervisor = match timeout_ms.or(state.default_timeout_ms) {
        Some(ms) => Supervisor::new().with_deadline(Duration::from_millis(ms)),
        None => Supervisor::new(),
    };
    analyze_uncached(req, &supervisor)
}

/// Splits a batch envelope across shards, forwards each sub-batch, and
/// merges the per-item results back into the original order. A shard
/// failure fails over item by item to local analysis; malformed items
/// are answered in place, matching single-daemon batch semantics.
fn route_batch(state: &Arc<RouterState>, line: &str, batch: BatchRequest) -> String {
    let shard_count = state.shards.len();
    // Recover the raw item objects so sub-batches carry the client's
    // bytes, not a re-derivation (unknown-field strictness and format
    // defaults stay the backend's business).
    let raw_items: Vec<Value> = serde_json::from_str(line)
        .ok()
        .and_then(|v| v.get("items").cloned())
        .and_then(|v| match v {
            Value::Array(items) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    let mut rendered: Vec<Option<String>> = vec![None; batch.items.len()];
    // Per shard: the original indices (and parsed requests) routed there.
    let mut groups: Vec<Vec<(usize, AnalyzeRequest)>> =
        (0..shard_count).map(|_| Vec::new()).collect();
    for (i, item) in batch.items.into_iter().enumerate() {
        match item {
            Ok(req) => groups[shard_index(&req, shard_count)].push((i, req)),
            Err((code, msg)) => {
                state.counters.errors.fetch_add(1, Ordering::SeqCst);
                let trace_id = mint_trace_id(state);
                rendered[i] = Some(batch_item_err(&trace_id, code, &msg));
            }
        }
    }
    for (shard_idx, group) in groups.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        state.counters.analyze_requests.fetch_add(group.len() as u64, Ordering::SeqCst);
        let shard = &state.shards[shard_idx];
        let sub_items: Vec<Value> =
            group.iter().filter_map(|(i, _)| raw_items.get(*i).cloned()).collect();
        let forwarded = if sub_items.len() == group.len() {
            let mut envelope = Value::object();
            envelope.insert("id", Value::UInt(0));
            envelope.insert("cmd", Value::String("batch".to_string()));
            envelope.insert("items", Value::Array(sub_items));
            if let Some(t) = batch.timeout_ms {
                envelope.insert("timeout_ms", Value::UInt(u128::from(t)));
            }
            serde_json::to_string(&envelope)
                .ok()
                .and_then(|sub| shard.forward(&sub, &state.tuning, &Recorder::disabled()))
        } else {
            None
        };
        let shard_results = forwarded.and_then(|raw| parse_batch_items(&raw, group.len()));
        match shard_results {
            Some(items) => {
                for ((i, req), item) in group.iter().zip(items) {
                    // Per-item isolation: a draining shard answers the
                    // envelope but sheds items with `shutting_down` —
                    // those items never ran, so re-running them locally
                    // cannot duplicate execution. Items the shard *did*
                    // answer are kept verbatim.
                    rendered[*i] = Some(if is_draining_error(&item) {
                        local_batch_item(state, req, batch.timeout_ms)
                    } else {
                        item
                    });
                }
            }
            None => {
                // Whole-shard failover: each item is analyzed locally.
                for (i, req) in group {
                    rendered[i] = Some(local_batch_item(state, &req, batch.timeout_ms));
                }
            }
        }
    }
    let items: Vec<String> = rendered
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| {
                batch_item_err(
                    "taj-r-lost",
                    ErrorCode::BadRequest,
                    "router lost this item (internal error)",
                )
            })
        })
        .collect();
    batch_result_raw(&items)
}

/// One batch item's local failover: analyze on the router and render
/// the item envelope a backend would have produced.
fn local_batch_item(
    state: &Arc<RouterState>,
    req: &AnalyzeRequest,
    batch_timeout_ms: Option<u64>,
) -> String {
    let trace_id = req.trace_id.clone().unwrap_or_else(|| mint_trace_id(state));
    state.counters.local_fallbacks.fetch_add(1, Ordering::SeqCst);
    let timeout = req.timeout_ms.or(batch_timeout_ms);
    match local_analyze(state, req, timeout) {
        Ok(raw) => batch_item_ok(&trace_id, &raw),
        Err((code, msg)) => {
            state.counters.errors.fetch_add(1, Ordering::SeqCst);
            batch_item_err(&trace_id, code, &msg)
        }
    }
}

/// Extracts and re-serializes the `items` array from a backend's batch
/// response, checking the count matches what was sent.
fn parse_batch_items(raw_response: &str, expected: usize) -> Option<Vec<String>> {
    let response: Value = serde_json::from_str(raw_response).ok()?;
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        return None;
    }
    let items = match response.get("result")?.get("items")? {
        Value::Array(items) => items,
        _ => return None,
    };
    if items.len() != expected {
        return None;
    }
    items.iter().map(|v| serde_json::to_string(v).ok()).collect()
}

fn stats_raw(state: &Arc<RouterState>) -> String {
    let c = &state.counters;
    let mut o = Value::object();
    o.insert("role", Value::String("router".to_string()));
    o.insert("protocol_version", Value::UInt(u128::from(PROTOCOL_VERSION)));
    o.insert("uptime_ms", Value::UInt(state.started.elapsed().as_millis()));
    let mut build_o = Value::object();
    build_o.insert("version", Value::String(env!("CARGO_PKG_VERSION").to_string()));
    build_o.insert("fingerprint", Value::String(format!("{:032x}", store_fingerprint())));
    o.insert("build", build_o);
    let mut flight_o = Value::object();
    flight_o.insert("capacity", Value::UInt(state.flight.capacity() as u128));
    flight_o.insert("retained", Value::UInt(state.flight.len() as u128));
    o.insert("flight", flight_o);
    o.insert("requests", Value::UInt(u128::from(c.requests.load(Ordering::SeqCst))));
    o.insert(
        "analyze_requests",
        Value::UInt(u128::from(c.analyze_requests.load(Ordering::SeqCst))),
    );
    o.insert("batch_requests", Value::UInt(u128::from(c.batch_requests.load(Ordering::SeqCst))));
    o.insert("errors", Value::UInt(u128::from(c.errors.load(Ordering::SeqCst))));
    o.insert("local_fallbacks", Value::UInt(u128::from(c.local_fallbacks.load(Ordering::SeqCst))));
    let mut shards = Vec::new();
    for s in &state.shards {
        let mut so = Value::object();
        so.insert("addr", Value::String(s.addr.clone()));
        so.insert("healthy", Value::Bool(s.healthy.load(Ordering::SeqCst)));
        so.insert("state", Value::String(s.breaker.state().as_str().to_string()));
        so.insert("forwarded", Value::UInt(u128::from(s.forwarded.load(Ordering::SeqCst))));
        so.insert("failovers", Value::UInt(u128::from(s.failovers.load(Ordering::SeqCst))));
        so.insert("retried", Value::UInt(u128::from(s.retried.load(Ordering::SeqCst))));
        so.insert("probes", Value::UInt(u128::from(s.probes.load(Ordering::SeqCst))));
        so.insert("opens", Value::UInt(u128::from(s.opens.load(Ordering::SeqCst))));
        shards.push(so);
    }
    o.insert("shards", Value::Array(shards));
    serde_json::to_string(&o).unwrap_or_else(|_| "{}".to_string())
}

fn metrics_raw(state: &Arc<RouterState>) -> String {
    let c = &state.counters;
    let mut exp = Exposition::new();
    exp.family("taj_router_uptime_seconds", "Seconds since the router started.", "gauge");
    exp.sample("taj_router_uptime_seconds", &[], state.started.elapsed().as_secs_f64());
    exp.family(
        "taj_build_info",
        "Build identity: crate version and store fingerprint (value is always 1).",
        "gauge",
    );
    let fingerprint = format!("{:032x}", store_fingerprint());
    exp.sample(
        "taj_build_info",
        &[("version", env!("CARGO_PKG_VERSION")), ("fingerprint", &fingerprint)],
        1.0,
    );
    exp.family(
        "taj_router_flight_records",
        "Request records retained by the router's flight recorder.",
        "gauge",
    );
    exp.sample("taj_router_flight_records", &[], state.flight.len() as f64);
    exp.family("taj_router_shards", "Configured shard count.", "gauge");
    exp.sample("taj_router_shards", &[], state.shards.len() as f64);
    let counters: [(&str, &str, u64); 5] = [
        ("taj_router_requests_total", "Requests received.", c.requests.load(Ordering::SeqCst)),
        (
            "taj_router_analyze_requests_total",
            "Analyze requests routed (batch items included).",
            c.analyze_requests.load(Ordering::SeqCst),
        ),
        (
            "taj_router_batch_requests_total",
            "Batch envelopes received.",
            c.batch_requests.load(Ordering::SeqCst),
        ),
        (
            "taj_router_errors_total",
            "Requests answered with an error.",
            c.errors.load(Ordering::SeqCst),
        ),
        (
            "taj_router_local_fallbacks_total",
            "Analyses served locally because a shard was unreachable.",
            c.local_fallbacks.load(Ordering::SeqCst),
        ),
    ];
    for (name, help, value) in counters {
        exp.family(name, help, "counter");
        exp.sample(name, &[], value as f64);
    }
    exp.family("taj_router_shard_healthy", "Shard health (1 healthy, 0 failed).", "gauge");
    for s in &state.shards {
        exp.sample(
            "taj_router_shard_healthy",
            &[("shard", s.addr.as_str())],
            if s.healthy.load(Ordering::SeqCst) { 1.0 } else { 0.0 },
        );
    }
    exp.family("taj_router_shard_forwarded_total", "Requests forwarded, by shard.", "counter");
    for s in &state.shards {
        exp.sample(
            "taj_router_shard_forwarded_total",
            &[("shard", s.addr.as_str())],
            s.forwarded.load(Ordering::SeqCst) as f64,
        );
    }
    exp.family(
        "taj_router_shard_failovers_total",
        "Forward failures that fell back locally, by shard.",
        "counter",
    );
    for s in &state.shards {
        exp.sample(
            "taj_router_shard_failovers_total",
            &[("shard", s.addr.as_str())],
            s.failovers.load(Ordering::SeqCst) as f64,
        );
    }
    exp.family(
        "taj_router_shard_state",
        "Circuit breaker state, one-hot per {shard,state}.",
        "gauge",
    );
    for s in &state.shards {
        let current = s.breaker.state();
        for st in BreakerState::all() {
            exp.sample(
                "taj_router_shard_state",
                &[("shard", s.addr.as_str()), ("state", st.as_str())],
                if st == current { 1.0 } else { 0.0 },
            );
        }
    }
    exp.family(
        "taj_router_shard_retried_total",
        "Extra forward attempts (transport retries and overload waits), by shard.",
        "counter",
    );
    for s in &state.shards {
        exp.sample(
            "taj_router_shard_retried_total",
            &[("shard", s.addr.as_str())],
            s.retried.load(Ordering::SeqCst) as f64,
        );
    }
    exp.family(
        "taj_router_shard_probes_total",
        "Synthetic health probes issued by the background prober, by shard.",
        "counter",
    );
    for s in &state.shards {
        exp.sample(
            "taj_router_shard_probes_total",
            &[("shard", s.addr.as_str())],
            s.probes.load(Ordering::SeqCst) as f64,
        );
    }
    exp.family(
        "taj_router_shard_opens_total",
        "Times the shard's breaker tripped open, by shard.",
        "counter",
    );
    for s in &state.shards {
        exp.sample(
            "taj_router_shard_opens_total",
            &[("shard", s.addr.as_str())],
            s.opens.load(Ordering::SeqCst) as f64,
        );
    }
    exp.histogram(
        "taj_router_request_seconds",
        "End-to-end router-side request latency (same buckets as the daemon).",
        &[],
        &state.request_seconds.snapshot(),
    );
    let exposition = exp.finish();
    let mut o = Value::object();
    o.insert("content_type", Value::String("text/plain; version=0.0.4".to_string()));
    o.insert("exposition", Value::String(exposition));
    serde_json::to_string(&o).unwrap_or_else(|_| "{}".to_string())
}
