//! Per-shard circuit breaker: the closed → open → half-open state
//! machine that lets the router stop sending traffic to a dead backend
//! *and* reintegrate it without sacrificing user requests.
//!
//! - **Closed**: requests flow. Consecutive forward failures are
//!   counted; reaching the threshold opens the breaker.
//! - **Open**: requests fail fast (the router serves them by local
//!   failover instead). No user request is sent to the shard; after a
//!   cooldown the background prober starts issuing cheap synthetic
//!   `configs` pings.
//! - **HalfOpen**: a probe succeeded, so the shard answers again — but
//!   one success over a fresh connection is weak evidence. Either a
//!   second probe success or one successful real forward closes the
//!   breaker; any failure reopens it and restarts the cooldown.
//!
//! The machine is a plain mutex-guarded struct driven by explicit
//! `on_*` events, so it is unit-testable without sockets or threads.
//! Timing is injected through `Instant` arguments where it matters
//! (cooldown), keeping tests deterministic.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker position, reported in router `stats` and the
/// `taj_router_shard_state` metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: requests fail fast; probes only after the cooldown.
    Open,
    /// Probation: one probe succeeded; the next success closes, the
    /// next failure reopens.
    HalfOpen,
}

impl BreakerState {
    /// Stable string form used in stats and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// All states, for one-hot metric emission.
    pub fn all() -> [BreakerState; 3] {
        [BreakerState::Closed, BreakerState::Open, BreakerState::HalfOpen]
    }
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the breaker last opened (drives the probe cooldown).
    opened_at: Option<Instant>,
}

/// A thread-safe circuit breaker.
pub struct Breaker {
    inner: Mutex<Inner>,
    /// Consecutive failures that trip Closed → Open.
    threshold: u32,
    /// How long an open breaker rests before probes may test the shard.
    cooldown: Duration,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and allowing probes `cooldown` after opening.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
            threshold: threshold.max(1),
            cooldown,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Whether a user request may be sent to the shard right now.
    /// Closed and HalfOpen allow traffic; Open fails fast.
    pub fn allows_request(&self) -> bool {
        self.lock().state != BreakerState::Open
    }

    /// A user request forwarded to the shard succeeded. Closes the
    /// breaker from any state and resets the failure count. Returns
    /// `true` when this event closed a non-closed breaker (for the
    /// reintegration counter).
    pub fn on_success(&self) -> bool {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        let reintegrated = inner.state != BreakerState::Closed;
        inner.state = BreakerState::Closed;
        reintegrated
    }

    /// A user request forwarded to the shard failed (transport-level;
    /// protocol errors the shard *answered* with do not count). Returns
    /// `true` when this event opened the breaker.
    pub fn on_failure(&self, now: Instant) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(now);
                    return true;
                }
                false
            }
            // Probation failed: straight back to Open, cooldown restarts.
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(now);
                true
            }
            BreakerState::Open => {
                // Late failures from requests already in flight when the
                // breaker opened; the cooldown clock is not restarted.
                false
            }
        }
    }

    /// Whether the background prober should ping the shard now: only an
    /// Open breaker past its cooldown (HalfOpen is also probed, so a
    /// shard with no user traffic still closes fully).
    pub fn wants_probe(&self, now: Instant) -> bool {
        let inner = self.lock();
        match inner.state {
            BreakerState::Open => {
                inner.opened_at.is_none_or(|at| now.duration_since(at) >= self.cooldown)
            }
            BreakerState::HalfOpen => true,
            BreakerState::Closed => false,
        }
    }

    /// A synthetic probe succeeded. Open → HalfOpen (first evidence);
    /// HalfOpen → Closed (second consecutive success — the shard is
    /// back without any user request having been risked). Returns the
    /// new state.
    pub fn on_probe_success(&self) -> BreakerState {
        let mut inner = self.lock();
        inner.state = match inner.state {
            BreakerState::Open => BreakerState::HalfOpen,
            BreakerState::HalfOpen | BreakerState::Closed => {
                inner.consecutive_failures = 0;
                inner.opened_at = None;
                BreakerState::Closed
            }
        };
        inner.state
    }

    /// A synthetic probe failed: back to (or stay) Open and restart the
    /// cooldown so the prober backs off a full period before retrying.
    pub fn on_probe_failure(&self, now: Instant) {
        let mut inner = self.lock();
        if inner.state != BreakerState::Closed {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(3, Duration::from_millis(100))
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = breaker();
        let t0 = Instant::now();
        assert!(b.allows_request());
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.state(), BreakerState::Closed, "two failures stay closed");
        assert!(b.on_failure(t0), "third failure opens");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_request(), "open breaker fails fast");
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = breaker();
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed, "count reset by success");
    }

    #[test]
    fn probe_gated_by_cooldown_then_two_successes_close() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        assert!(!b.wants_probe(t0), "no probe inside the cooldown");
        let after = t0 + Duration::from_millis(150);
        assert!(b.wants_probe(after), "probe after the cooldown");
        assert_eq!(b.on_probe_success(), BreakerState::HalfOpen);
        assert!(b.allows_request(), "half-open lets real traffic through");
        assert!(b.wants_probe(after), "half-open is still probed");
        assert_eq!(b.on_probe_success(), BreakerState::Closed);
        assert!(!b.wants_probe(after), "closed breakers are not probed");
    }

    #[test]
    fn half_open_failure_reopens_and_restarts_cooldown() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let after = t0 + Duration::from_millis(150);
        b.on_probe_success();
        assert!(b.on_failure(after), "half-open failure reopens");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.wants_probe(after + Duration::from_millis(50)), "cooldown restarted");
        assert!(b.wants_probe(after + Duration::from_millis(150)));
    }

    #[test]
    fn forward_success_in_half_open_closes() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        b.on_probe_success();
        assert!(b.on_success(), "reintegration reported");
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_success(), "already closed: not a reintegration");
    }

    #[test]
    fn late_failures_while_open_do_not_restart_cooldown() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        b.on_failure(t0 + Duration::from_millis(90));
        assert!(b.wants_probe(t0 + Duration::from_millis(110)), "cooldown from first open");
    }

    #[test]
    fn probe_failure_backs_off() {
        let b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let after = t0 + Duration::from_millis(150);
        b.on_probe_failure(after);
        assert!(!b.wants_probe(after + Duration::from_millis(50)));
        assert!(b.wants_probe(after + Duration::from_millis(150)));
    }
}
