//! A pure-std client for the daemon protocol: one socket, sequential
//! request/response lines. Used by `taj client` and the integration
//! tests; doubles as the reference implementation of the wire format.
//!
//! The client is overload- and failure-aware: idempotent commands
//! (`analyze`, `batch`, `configs`, `stats`, `metrics`) are retried with
//! jittered exponential backoff after transport errors and after
//! retryable server rejections (`overloaded`, `shutting_down`),
//! honoring the server's `retry_after_ms` hint as a backoff floor.
//! `shutdown` and [`Client::request_raw`] are never retried. Optional
//! socket read/write timeouts bound how long a stalled peer can hang a
//! caller; on any I/O error the connection is dropped and re-dialed
//! before the next attempt, so a torn response line can never desync
//! the stream.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use serde::Value;

use crate::server::BoundAddr;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error (or server closed the connection mid-response).
    Io(io::Error),
    /// The server's reply was not a valid response object.
    Protocol(String),
    /// A structured error response from the server.
    Remote {
        /// `error.code` from the response.
        code: String,
        /// `error.message` from the response.
        message: String,
        /// `error.retry_after_ms` from the response — the server's
        /// backoff hint on `overloaded` rejections.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote { code, message, .. } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Retry budget for idempotent requests: exponential backoff with full
/// jitter, starting at `base_backoff_ms` and doubling per attempt up to
/// `max_backoff_ms`.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry (doubles per further retry).
    pub base_backoff_ms: u64,
    /// Backoff ceiling per retry.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff_ms: 20, max_backoff_ms: 1_000 }
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces on the first attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_backoff_ms: 0, max_backoff_ms: 0 }
    }
}

/// Where the client (re)connects.
#[derive(Clone, Debug)]
enum Target {
    Tcp(String),
    Unix(PathBuf),
}

/// A cloned handle on the live socket, kept for timeout control — the
/// boxed reader/writer erase the concrete type, but timeouts apply to
/// the shared fd, so setting them here covers both halves.
enum StreamCtl {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl StreamCtl {
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            StreamCtl::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
            StreamCtl::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)
            }
        }
    }
}

/// Options for [`Client::analyze`].
#[derive(Clone, Debug, Default)]
pub struct AnalyzeOpts {
    /// Named configuration (`None` → server default, `hybrid`).
    pub config: Option<String>,
    /// Rules-file text overriding the default rule set.
    pub rules: Option<String>,
    /// Request SARIF instead of the report JSON.
    pub sarif: bool,
    /// Per-request deadline (ms).
    pub timeout_ms: Option<u64>,
    /// Allow the server to degrade down the precision ladder on budget
    /// exhaustion instead of failing with `out_of_memory`.
    pub degrade: bool,
    /// Phase-2 worker threads (`None`/`0` = one per server core). Never
    /// affects the report bytes, only how fast they are produced.
    pub threads: Option<u64>,
    /// Trace id echoed back in the response envelope (`None` → the
    /// server mints one).
    pub trace_id: Option<String>,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    ctl: StreamCtl,
    target: Target,
    io_timeout: Option<Duration>,
    retry: RetryPolicy,
    next_id: u64,
    /// xorshift64 state for backoff jitter — decorrelates fleets of
    /// clients retrying into the same overloaded server.
    jitter: u64,
}

/// The halves of a freshly dialed connection: buffered reader, writer,
/// and the control handle that owns timeout configuration.
type DialedStream = (BufReader<Box<dyn Read + Send>>, Box<dyn Write + Send>, StreamCtl);

fn dial(target: &Target, io_timeout: Option<Duration>) -> io::Result<DialedStream> {
    match target {
        Target::Tcp(addr) => {
            let stream = TcpStream::connect(addr.as_str())?;
            // One-line requests/responses: Nagle + delayed ACK would add
            // ~40ms per hop to every exchange.
            stream.set_nodelay(true)?;
            let ctl = StreamCtl::Tcp(stream.try_clone()?);
            ctl.set_io_timeout(io_timeout)?;
            let read_half = stream.try_clone()?;
            Ok((BufReader::new(Box::new(read_half)), Box::new(stream), ctl))
        }
        Target::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            let ctl = StreamCtl::Unix(stream.try_clone()?);
            ctl.set_io_timeout(io_timeout)?;
            let read_half = stream.try_clone()?;
            Ok((BufReader::new(Box::new(read_half)), Box::new(stream), ctl))
        }
    }
}

fn jitter_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    // Never zero (xorshift's fixed point), always process-distinct.
    (nanos << 16) ^ u64::from(std::process::id()) | 1
}

impl Client {
    fn from_target(target: Target) -> io::Result<Client> {
        let (reader, writer, ctl) = dial(&target, None)?;
        Ok(Client {
            reader,
            writer,
            ctl,
            target,
            io_timeout: None,
            retry: RetryPolicy::default(),
            next_id: 1,
            jitter: jitter_seed(),
        })
    }

    /// Connects over TCP (`host:port`).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        Client::from_target(Target::Tcp(addr.to_string()))
    }

    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        Client::from_target(Target::Unix(path.to_path_buf()))
    }

    /// Connects to a server handle's bound address (test convenience).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: &BoundAddr) -> io::Result<Client> {
        match addr {
            BoundAddr::Tcp(a) => Self::connect_tcp(&a.to_string()),
            BoundAddr::Unix(p) => Self::connect_unix(p),
        }
    }

    /// Replaces the retry policy (builder form).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// Replaces the retry policy in place.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Sets (or clears) the socket read/write timeout. Applies to the
    /// live connection immediately and to every reconnect after it, so
    /// a stalled peer surfaces as [`ClientError::Io`] within the bound
    /// instead of hanging the caller forever.
    ///
    /// # Errors
    /// Propagates `setsockopt` failures.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.ctl.set_io_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// Drops the current connection and dials the original target again.
    /// Called automatically between retry attempts after an I/O error;
    /// public so callers managing their own retries can resync too.
    ///
    /// # Errors
    /// Propagates connection failures (the old, broken connection stays
    /// in place; a later call can still succeed).
    pub fn reconnect(&mut self) -> io::Result<()> {
        let (reader, writer, ctl) = dial(&self.target, self.io_timeout)?;
        self.reader = reader;
        self.writer = writer;
        self.ctl = ctl;
        Ok(())
    }

    /// Sends one raw line (no trailing newline needed) and returns the raw
    /// response line — the escape hatch for malformed-input tests and
    /// byte-identity assertions. Never retried.
    ///
    /// # Errors
    /// [`ClientError::Io`] on socket failures or a closed connection.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        // A line without its newline is a torn write from a peer that
        // died mid-response: surface it as I/O, not as data.
        if !response.ends_with('\n') {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            )));
        }
        Ok(response.trim_end_matches('\n').to_string())
    }

    /// Sends a request object once and returns the `result` payload,
    /// mapping `ok:false` responses to [`ClientError::Remote`]. An `id`
    /// is auto-assigned when the object lacks one. Not retried — use the
    /// typed helpers for retry-aware calls.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn request(&mut self, mut request: Value) -> Result<Value, ClientError> {
        self.assign_id(&mut request);
        let line = serialize_request(&request)?;
        self.send_line(&line)
    }

    fn assign_id(&mut self, request: &mut Value) {
        if request.get("id").is_none() {
            request.insert("id", Value::UInt(u128::from(self.next_id)));
            self.next_id += 1;
        }
    }

    /// Sends one line and returns the whole parsed success envelope —
    /// for callers that need sibling fields next to `result` (e.g. the
    /// `delta` object on `analyze_delta` responses).
    fn send_line_envelope(&mut self, line: &str) -> Result<Value, ClientError> {
        let raw = self.request_raw(line)?;
        let response = serde_json::from_str(&raw)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        match response.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(response),
            Some(false) => {
                let code = response["error"]["code"].as_str().unwrap_or("unknown").to_string();
                let message = response["error"]["message"].as_str().unwrap_or("").to_string();
                let retry_after_ms = response["error"]["retry_after_ms"].as_u64();
                Err(ClientError::Remote { code, message, retry_after_ms })
            }
            None => Err(ClientError::Protocol("response missing `ok` field".to_string())),
        }
    }

    fn send_line(&mut self, line: &str) -> Result<Value, ClientError> {
        Ok(self.send_line_envelope(line)?.get("result").cloned().unwrap_or(Value::Null))
    }

    fn next_jitter(&mut self) -> u64 {
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        x
    }

    /// Backoff before retry number `retry` (0-based): exponential with
    /// full jitter in `[exp/2, exp]`, floored at the server's
    /// `retry_after_ms` hint when one was given.
    fn backoff_ms(&mut self, retry: u32, floor: Option<u64>) -> u64 {
        let exp = self
            .retry
            .base_backoff_ms
            .saturating_mul(1u64 << retry.min(20))
            .min(self.retry.max_backoff_ms);
        let half = exp / 2;
        let ms = half + if half == 0 { 0 } else { self.next_jitter() % (half + 1) };
        floor.map_or(ms, |f| ms.max(f))
    }

    /// Sends an *idempotent* request under the retry policy: the same
    /// serialized line (same id) is re-sent after transport errors
    /// (reconnecting first) and after retryable server rejections.
    /// Identical bytes per attempt is what makes a retry safe — the
    /// server's content-addressed caching dedupes re-execution.
    fn request_idempotent(&mut self, request: Value) -> Result<Value, ClientError> {
        Ok(self.request_idempotent_envelope(request)?.get("result").cloned().unwrap_or(Value::Null))
    }

    /// [`Client::request_idempotent`], returning the whole success
    /// envelope instead of just its `result` field.
    fn request_idempotent_envelope(&mut self, mut request: Value) -> Result<Value, ClientError> {
        self.assign_id(&mut request);
        let line = serialize_request(&request)?;
        let attempts = self.retry.max_attempts.max(1);
        let mut last: Option<ClientError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let floor = match &last {
                    Some(ClientError::Remote { retry_after_ms, .. }) => *retry_after_ms,
                    _ => None,
                };
                let ms = self.backoff_ms(attempt - 1, floor);
                std::thread::sleep(Duration::from_millis(ms));
                if matches!(last, Some(ClientError::Io(_))) {
                    // The old stream may hold half a response; never
                    // reuse it. A failed redial leaves the broken stream
                    // in place, and the attempt below re-errors cheaply.
                    let _ = self.reconnect();
                }
            }
            match self.send_line_envelope(&line) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let retryable = match &e {
                        ClientError::Io(_) => true,
                        ClientError::Remote { code, .. } => {
                            code == "overloaded" || code == "shutting_down"
                        }
                        ClientError::Protocol(_) => false,
                    };
                    if !retryable {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Protocol("retry loop sent nothing".into())))
    }

    /// Runs an analysis; returns the report (or SARIF) JSON value.
    /// Retried under the client's [`RetryPolicy`] (analyze is
    /// idempotent: same source, same report bytes).
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn analyze(&mut self, source: &str, opts: &AnalyzeOpts) -> Result<Value, ClientError> {
        let mut req = analyze_body(source, opts);
        req.insert("cmd", Value::String("analyze".to_string()));
        self.request_idempotent(req)
    }

    /// Runs an incremental analysis of `source` as an edit of
    /// `base_source`. Returns `(result, delta)`: the report (or SARIF)
    /// value — byte-par with a plain [`Client::analyze`] of `source` —
    /// plus the envelope's `delta` object describing where phase 1 came
    /// from and how many method summaries were re-solved. Retried under
    /// the client's [`RetryPolicy`] (analyze_delta is idempotent).
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn analyze_delta(
        &mut self,
        base_source: &str,
        source: &str,
        opts: &AnalyzeOpts,
    ) -> Result<(Value, Value), ClientError> {
        let mut req = analyze_body(source, opts);
        req.insert("cmd", Value::String("analyze_delta".to_string()));
        req.insert("base_source", Value::String(base_source.to_string()));
        let envelope = self.request_idempotent_envelope(req)?;
        let result = envelope.get("result").cloned().unwrap_or(Value::Null);
        let delta = envelope.get("delta").cloned().unwrap_or(Value::Null);
        Ok((result, delta))
    }

    /// Submits several analyses in one `batch` envelope; returns the
    /// batch result object (`count` plus the ordered `items` array, one
    /// `{ok, trace_id, result|error}` entry per submitted program).
    /// Per-item failures live inside their item — only envelope-level
    /// problems surface as [`ClientError`]. Retried under the client's
    /// [`RetryPolicy`].
    ///
    /// `timeout_ms` is the envelope-wide default deadline; an item's own
    /// `AnalyzeOpts::timeout_ms` overrides it.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or envelope-level failures.
    pub fn batch(
        &mut self,
        items: &[(String, AnalyzeOpts)],
        timeout_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        let mut req = Value::object();
        req.insert("cmd", Value::String("batch".to_string()));
        let entries =
            items.iter().map(|(source, opts)| analyze_body(source, opts)).collect::<Vec<_>>();
        req.insert("items", Value::Array(entries));
        if let Some(t) = timeout_ms {
            req.insert("timeout_ms", Value::UInt(u128::from(t)));
        }
        self.request_idempotent(req)
    }

    /// Lists the server's configurations.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn configs(&mut self) -> Result<Value, ClientError> {
        self.simple("configs")
    }

    /// Fetches daemon + cache counters.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.simple("stats")
    }

    /// Fetches the daemon's Prometheus text exposition, unwrapped from
    /// its NDJSON envelope back to plain text.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures,
    /// or a response without the `exposition` field.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.simple("metrics")?;
        v.get("exposition")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response missing `exposition`".into()))
    }

    /// Fetches the span fragments retained for `trace_id` — the daemon
    /// answers with its own fragment, the router with its hop fragment
    /// plus every shard fragment it could collect. Read-only, so retried
    /// under the client's [`RetryPolicy`].
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures
    /// (`bad_request` when the id is unknown or the ring evicted it).
    pub fn trace(&mut self, trace_id: &str) -> Result<Value, ClientError> {
        let mut req = Value::object();
        req.insert("cmd", Value::String("trace".to_string()));
        req.insert("trace_id", Value::String(trace_id.to_string()));
        self.request_idempotent(req)
    }

    /// Lists flight-recorder summaries, newest first, optionally capped
    /// at `limit`. Read-only, so retried under the client's
    /// [`RetryPolicy`].
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn last_traces(&mut self, limit: Option<u64>) -> Result<Value, ClientError> {
        let mut req = Value::object();
        req.insert("cmd", Value::String("last_traces".to_string()));
        if let Some(n) = limit {
            req.insert("limit", Value::UInt(u128::from(n)));
        }
        self.request_idempotent(req)
    }

    /// Asks the daemon to drain and exit. Never retried — a retry could
    /// tear down a daemon that already restarted.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        let mut req = Value::object();
        req.insert("cmd", Value::String("shutdown".to_string()));
        self.request(req)
    }

    fn simple(&mut self, cmd: &str) -> Result<Value, ClientError> {
        let mut req = Value::object();
        req.insert("cmd", Value::String(cmd.to_string()));
        self.request_idempotent(req)
    }
}

fn serialize_request(request: &Value) -> Result<String, ClientError> {
    serde_json::to_string(request)
        .map_err(|e| ClientError::Protocol(format!("cannot serialize request: {e}")))
}

/// Builds the analyze fields shared by `analyze` requests and `batch`
/// items (which are exactly an analyze body without `id`/`cmd`).
fn analyze_body(source: &str, opts: &AnalyzeOpts) -> Value {
    let mut req = Value::object();
    req.insert("source", Value::String(source.to_string()));
    if let Some(c) = &opts.config {
        req.insert("config", Value::String(c.clone()));
    }
    if let Some(r) = &opts.rules {
        req.insert("rules", Value::String(r.clone()));
    }
    if opts.sarif {
        req.insert("format", Value::String("sarif".to_string()));
    }
    if let Some(t) = opts.timeout_ms {
        req.insert("timeout_ms", Value::UInt(u128::from(t)));
    }
    if let Some(t) = opts.threads {
        req.insert("threads", Value::UInt(u128::from(t)));
    }
    if opts.degrade {
        req.insert("degrade", Value::Bool(true));
    }
    if let Some(t) = &opts.trace_id {
        req.insert("trace_id", Value::String(t.clone()));
    }
    req
}
