//! A pure-std client for the daemon protocol: one socket, sequential
//! request/response lines. Used by `taj client` and the integration
//! tests; doubles as the reference implementation of the wire format.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use serde::Value;

use crate::server::BoundAddr;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error (or server closed the connection mid-response).
    Io(io::Error),
    /// The server's reply was not a valid response object.
    Protocol(String),
    /// A structured error response from the server.
    Remote {
        /// `error.code` from the response.
        code: String,
        /// `error.message` from the response.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Options for [`Client::analyze`].
#[derive(Clone, Debug, Default)]
pub struct AnalyzeOpts {
    /// Named configuration (`None` → server default, `hybrid`).
    pub config: Option<String>,
    /// Rules-file text overriding the default rule set.
    pub rules: Option<String>,
    /// Request SARIF instead of the report JSON.
    pub sarif: bool,
    /// Per-request deadline (ms).
    pub timeout_ms: Option<u64>,
    /// Allow the server to degrade down the precision ladder on budget
    /// exhaustion instead of failing with `out_of_memory`.
    pub degrade: bool,
    /// Phase-2 worker threads (`None`/`0` = one per server core). Never
    /// affects the report bytes, only how fast they are produced.
    pub threads: Option<u64>,
    /// Trace id echoed back in the response envelope (`None` → the
    /// server mints one).
    pub trace_id: Option<String>,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
}

impl Client {
    /// Connects over TCP (`host:port`).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One-line requests/responses: Nagle + delayed ACK would add
        // ~40ms per hop to every exchange.
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(read_half)),
            writer: Box::new(stream),
            next_id: 1,
        })
    }

    /// Connects over a Unix domain socket.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(read_half)),
            writer: Box::new(stream),
            next_id: 1,
        })
    }

    /// Connects to a server handle's bound address (test convenience).
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(addr: &BoundAddr) -> io::Result<Client> {
        match addr {
            BoundAddr::Tcp(a) => Self::connect_tcp(&a.to_string()),
            BoundAddr::Unix(p) => Self::connect_unix(p),
        }
    }

    /// Sends one raw line (no trailing newline needed) and returns the raw
    /// response line — the escape hatch for malformed-input tests and
    /// byte-identity assertions.
    ///
    /// # Errors
    /// [`ClientError::Io`] on socket failures or a closed connection.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(response.trim_end_matches('\n').to_string())
    }

    /// Sends a request object and returns the `result` payload, mapping
    /// `ok:false` responses to [`ClientError::Remote`]. An `id` is
    /// auto-assigned when the object lacks one.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn request(&mut self, mut request: Value) -> Result<Value, ClientError> {
        if request.get("id").is_none() {
            request.insert("id", Value::UInt(u128::from(self.next_id)));
            self.next_id += 1;
        }
        let line = serde_json::to_string(&request)
            .map_err(|e| ClientError::Protocol(format!("cannot serialize request: {e}")))?;
        let raw = self.request_raw(&line)?;
        let response = serde_json::from_str(&raw)
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        match response.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(response.get("result").cloned().unwrap_or(Value::Null)),
            Some(false) => {
                let code = response["error"]["code"].as_str().unwrap_or("unknown").to_string();
                let message = response["error"]["message"].as_str().unwrap_or("").to_string();
                Err(ClientError::Remote { code, message })
            }
            None => Err(ClientError::Protocol("response missing `ok` field".to_string())),
        }
    }

    /// Runs an analysis; returns the report (or SARIF) JSON value.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn analyze(&mut self, source: &str, opts: &AnalyzeOpts) -> Result<Value, ClientError> {
        let mut req = analyze_body(source, opts);
        req.insert("cmd", Value::String("analyze".to_string()));
        self.request(req)
    }

    /// Submits several analyses in one `batch` envelope; returns the
    /// batch result object (`count` plus the ordered `items` array, one
    /// `{ok, trace_id, result|error}` entry per submitted program).
    /// Per-item failures live inside their item — only envelope-level
    /// problems surface as [`ClientError`].
    ///
    /// `timeout_ms` is the envelope-wide default deadline; an item's own
    /// `AnalyzeOpts::timeout_ms` overrides it.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or envelope-level failures.
    pub fn batch(
        &mut self,
        items: &[(String, AnalyzeOpts)],
        timeout_ms: Option<u64>,
    ) -> Result<Value, ClientError> {
        let mut req = Value::object();
        req.insert("cmd", Value::String("batch".to_string()));
        let entries =
            items.iter().map(|(source, opts)| analyze_body(source, opts)).collect::<Vec<_>>();
        req.insert("items", Value::Array(entries));
        if let Some(t) = timeout_ms {
            req.insert("timeout_ms", Value::UInt(u128::from(t)));
        }
        self.request(req)
    }

    /// Lists the server's configurations.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn configs(&mut self) -> Result<Value, ClientError> {
        self.simple("configs")
    }

    /// Fetches daemon + cache counters.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.simple("stats")
    }

    /// Fetches the daemon's Prometheus text exposition, unwrapped from
    /// its NDJSON envelope back to plain text.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures,
    /// or a response without the `exposition` field.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let v = self.simple("metrics")?;
        v.get("exposition")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response missing `exposition`".into()))
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    /// [`ClientError`] on socket, framing, or server-reported failures.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.simple("shutdown")
    }

    fn simple(&mut self, cmd: &str) -> Result<Value, ClientError> {
        let mut req = Value::object();
        req.insert("cmd", Value::String(cmd.to_string()));
        self.request(req)
    }
}

/// Builds the analyze fields shared by `analyze` requests and `batch`
/// items (which are exactly an analyze body without `id`/`cmd`).
fn analyze_body(source: &str, opts: &AnalyzeOpts) -> Value {
    let mut req = Value::object();
    req.insert("source", Value::String(source.to_string()));
    if let Some(c) = &opts.config {
        req.insert("config", Value::String(c.clone()));
    }
    if let Some(r) = &opts.rules {
        req.insert("rules", Value::String(r.clone()));
    }
    if opts.sarif {
        req.insert("format", Value::String("sarif".to_string()));
    }
    if let Some(t) = opts.timeout_ms {
        req.insert("timeout_ms", Value::UInt(u128::from(t)));
    }
    if let Some(t) = opts.threads {
        req.insert("threads", Value::UInt(u128::from(t)));
    }
    if opts.degrade {
        req.insert("degrade", Value::Bool(true));
    }
    if let Some(t) = &opts.trace_id {
        req.insert("trace_id", Value::String(t.clone()));
    }
    req
}
