//! # taj-service — the TAJ analysis daemon
//!
//! TAJ's pipeline is deliberately staged: an expensive phase-1 pointer
//! analysis / call-graph construction feeds a cheap, demand-driven
//! phase-2 hybrid slicing (paper §1, §3). A one-shot CLI pays the
//! dominant phase-1 cost on every invocation; this crate adds the serving
//! layer that pays it **once**: a long-running daemon (`taj serve`)
//! accepting newline-delimited JSON requests over a Unix domain socket or
//! TCP, dispatching them to a fixed `std::thread` worker pool, and
//! answering from a content-addressed cache of `PreparedProgram`,
//! `Phase1`, and serialized-report artifacts with LRU byte-budget
//! eviction.
//!
//! Std-only by construction: the workspace is offline (vendored serde
//! shims, no tokio/hyper), so networking is `std::net` + `std::os::unix`
//! and concurrency is threads + channels.
//!
//! - [`protocol`] — the strict NDJSON wire format (`analyze`, `configs`,
//!   `stats`, `shutdown`) and error codes;
//! - [`cache`] — the content-addressed LRU artifact cache;
//! - [`pool`] — the MPMC worker pool with per-job panic isolation;
//! - [`server`] — the daemon itself (with bounded-queue admission
//!   control that sheds load as `overloaded` + `retry_after_ms`);
//! - [`client`] — a pure-std client library (used by `taj client` and
//!   the integration tests) with jittered-backoff retry for idempotent
//!   requests;
//! - [`breaker`] — the per-shard circuit breaker driving the router's
//!   failover and self-healing reintegration.
//!
//! See `docs/service.md` for the wire protocol and cache semantics.

#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod client;
pub mod pool;
pub mod protocol;
pub mod router;
pub mod server;
pub mod trace;

pub use breaker::{Breaker, BreakerState};
pub use cache::{content_hash, Artifact, ArtifactCache, ArtifactKey, CacheStats};
pub use client::{AnalyzeOpts, Client, ClientError, RetryPolicy};
pub use pool::WorkerPool;
pub use protocol::{
    stamp_trace, BatchRequest, ErrorCode, OutputFormat, MAX_BATCH_ITEMS, PROTOCOL_VERSION,
};
pub use router::{route, RouterHandle, RouterOptions, RouterTuning};
pub use server::{
    serve, store_fingerprint, Bind, BoundAddr, ServeOptions, ServerHandle, DEFAULT_FLIGHT_RECORDS,
};
pub use trace::{fragments_of, relabel_process, stitch_fragments};
