//! Structured tracing and metrics for the TAJ pipeline (std-only, like
//! `taj-supervise`).
//!
//! The central type is [`Recorder`], a cloneable handle that is either
//! *disabled* (the default — a `None` inside, so every hot-path guard is a
//! single pointer test, the same discipline as the supervisor's sampled
//! deadline probe) or *enabled*, in which case spans and instant events
//! accumulate in a shared buffer. Spans carry monotonic microsecond
//! timestamps and typed attributes ([`AttrValue`]); three sinks consume the
//! buffer:
//!
//! - [`Recorder::profile_text`] — the human `--profile` summary, one line
//!   per span name with call counts, total milliseconds, and summed
//!   numeric attributes;
//! - [`Recorder::chrome_trace`] — Chrome `trace_event`-format JSON for
//!   `--trace-out`, openable in Perfetto / `chrome://tracing`;
//! - [`Recorder::signature`] — the timestamp-free event *set*, which the
//!   determinism harness asserts is identical at every thread count.
//!
//! A recorder built with [`Recorder::deterministic`] strips wall-clock at
//! record time (every timestamp becomes zero), so test-mode traces are
//! byte-comparable across runs. [`Span::finish`] always returns the
//! measured elapsed time — even when recording is disabled — which makes
//! spans the single source of truth for the driver's phase timings.
//!
//! The [`metrics`] module is the daemon-facing half: fixed-bucket atomic
//! [`metrics::Histogram`]s and an [`metrics::Exposition`] builder that
//! renders Prometheus text format.

#![warn(missing_docs)]

pub mod metrics;

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned counter (counts, sizes, iterations).
    U64(u64),
    /// A short string (rule names, interrupt reasons, unit kinds).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One recorded span or instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name; the taxonomy is documented in docs/observability.md.
    pub name: &'static str,
    /// Microseconds since the recorder's epoch (zero in deterministic mode).
    pub start_us: u64,
    /// Span duration in microseconds; `None` marks an instant event.
    pub dur_us: Option<u64>,
    /// Typed attributes, in the order the instrumentation added them.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

#[derive(Debug)]
struct Inner {
    deterministic: bool,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// A cloneable tracing handle. The default (and [`Recorder::disabled`])
/// recorder drops every event at a single-branch cost; [`Recorder::new`]
/// records wall-clock spans; [`Recorder::deterministic`] records spans
/// with all timestamps zeroed so event buffers compare byte-identically
/// across runs and thread counts.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder that records nothing. Spans still measure elapsed time.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with wall-clock timestamps (microseconds since
    /// creation).
    pub fn new() -> Recorder {
        Recorder::build(false)
    }

    /// An enabled recorder that strips wall-clock: every recorded
    /// timestamp and duration is zero. Used by the determinism harness.
    pub fn deterministic() -> Recorder {
        Recorder::build(true)
    }

    fn build(deterministic: bool) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                deterministic,
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being recorded. Hot paths gate attribute
    /// computation on this.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether timestamps are stripped at record time.
    pub fn is_deterministic(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.deterministic)
    }

    /// Microseconds since the recorder's epoch; zero when disabled or
    /// deterministic.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) if !inner.deterministic => inner.epoch.elapsed().as_micros() as u64,
            _ => 0,
        }
    }

    /// Records a fully-formed event. In deterministic mode the timestamps
    /// are zeroed first (durations collapse to `Some(0)`), so callers may
    /// pass measured values unconditionally.
    pub fn record(&self, mut event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        if inner.deterministic {
            event.start_us = 0;
            event.dur_us = event.dur_us.map(|_| 0);
        }
        inner.events.lock().expect("trace buffer poisoned").push(event);
    }

    /// Records an instant event with the given attributes.
    pub fn event(&self, name: &'static str, attrs: Vec<(&'static str, AttrValue)>) {
        if self.is_enabled() {
            self.record(TraceEvent { name, start_us: self.now_us(), dur_us: None, attrs });
        }
    }

    /// Starts a span. The returned guard records on [`Span::finish`] (or
    /// on drop) and always measures real elapsed time, enabled or not.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            recorder: self.clone(),
            name,
            start_us: self.now_us(),
            started: Instant::now(),
            attrs: Vec::new(),
            closed: false,
        }
    }

    /// A snapshot of every event recorded so far, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("trace buffer poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// The timestamp-free event-set signature: one line per event
    /// (`name key=value ...`), sorted. Two runs are trace-equivalent iff
    /// their signatures are equal — this is what the determinism harness
    /// compares across thread counts.
    pub fn signature(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .events()
            .iter()
            .map(|ev| {
                let mut line = ev.name.to_string();
                for (key, value) in &ev.attrs {
                    let _ = match value {
                        AttrValue::U64(v) => write!(line, " {key}={v}"),
                        AttrValue::Bool(v) => write!(line, " {key}={v}"),
                        AttrValue::Str(v) => write!(line, " {key}={v}"),
                    };
                }
                line
            })
            .collect();
        lines.sort();
        lines
    }

    /// Renders the buffer as Chrome `trace_event`-format JSON (the
    /// "JSON Array Format" wrapped in an object), suitable for Perfetto
    /// or `chrome://tracing`. Spans become complete (`"ph":"X"`) events;
    /// instant events become `"ph":"i"` with global scope.
    pub fn chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, ev.name);
            let _ = write!(out, ",\"cat\":\"taj\",\"pid\":1,\"tid\":1,\"ts\":{}", ev.start_us);
            match ev.dur_us {
                Some(dur) => {
                    let _ = write!(out, ",\"ph\":\"X\",\"dur\":{dur}");
                }
                None => out.push_str(",\"ph\":\"i\",\"s\":\"g\""),
            }
            if !ev.attrs.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (key, value)) in ev.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    json_string(&mut out, key);
                    out.push(':');
                    match value {
                        AttrValue::U64(v) => {
                            let _ = write!(out, "{v}");
                        }
                        AttrValue::Bool(v) => {
                            let _ = write!(out, "{v}");
                        }
                        AttrValue::Str(v) => json_string(&mut out, v),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Aggregates the buffer by span name (first-seen order): call count,
    /// total microseconds, and the sum of every numeric attribute.
    pub fn aggregate(&self) -> Vec<ProfileRow> {
        let mut rows: Vec<ProfileRow> = Vec::new();
        for ev in self.events() {
            let row = match rows.iter_mut().find(|r| r.name == ev.name) {
                Some(row) => row,
                None => {
                    rows.push(ProfileRow {
                        name: ev.name,
                        count: 0,
                        total_us: 0,
                        counters: Vec::new(),
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.count += 1;
            row.total_us += ev.dur_us.unwrap_or(0);
            for (key, value) in &ev.attrs {
                if let AttrValue::U64(v) = value {
                    match row.counters.iter_mut().find(|(k, _)| k == key) {
                        Some((_, sum)) => *sum += v,
                        None => row.counters.push((key, *v)),
                    }
                }
            }
        }
        rows
    }

    /// The human-readable `--profile` summary: one line per span name
    /// with count, total milliseconds, and summed numeric attributes.
    pub fn profile_text(&self) -> String {
        let rows = self.aggregate();
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>6} {:>12}  counters", "span", "count", "total ms");
        for row in rows {
            let ms = row.total_us as f64 / 1000.0;
            let _ = write!(out, "{:<28} {:>6} {:>12.3}  ", row.name, row.count, ms);
            let mut first = true;
            for (key, sum) in row.counters {
                if !first {
                    out.push(' ');
                }
                first = false;
                let _ = write!(out, "{key}={sum}");
            }
            if first {
                out.push('-');
            }
            out.push('\n');
        }
        out
    }
}

/// One aggregated line of the profile summary (see [`Recorder::aggregate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name.
    pub name: &'static str,
    /// Number of events with this name.
    pub count: u64,
    /// Summed span durations in microseconds.
    pub total_us: u64,
    /// Summed numeric attributes, keyed by attribute name (first-seen order).
    pub counters: Vec<(&'static str, u64)>,
}

/// An in-flight span. Attach attributes with [`Span::attr`] and close it
/// with [`Span::finish`], which records the event (if the recorder is
/// enabled) and returns the measured wall-clock elapsed time — the
/// driver's phase timings come from this return value, so timing works
/// identically whether or not tracing is on. Dropping an unfinished span
/// records it too (so early-error paths still leave a trace).
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    name: &'static str,
    start_us: u64,
    started: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
    closed: bool,
}

impl Span {
    /// Attaches a typed attribute. Callers should gate expensive
    /// attribute computation on [`Recorder::is_enabled`].
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.recorder.is_enabled() {
            self.attrs.push((key, value.into()));
        }
    }

    /// Closes the span, records it, and returns the measured elapsed time.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        self.closed = true;
        let elapsed = self.started.elapsed();
        if self.recorder.is_enabled() {
            self.recorder.record(TraceEvent {
                name: self.name,
                start_us: self.start_us,
                dur_us: Some(elapsed.as_micros() as u64),
                attrs: std::mem::take(&mut self.attrs),
            });
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.closed {
            self.close();
        }
    }
}

/// A completed request's span tree plus its outcome, as captured by the
/// [`FlightRecorder`]. The events are the request's private recorder
/// buffer in record order; `attrs` carries the outcome attribution the
/// serving layer derives at response-build time (outcome, cache tier,
/// degradation, thread count, error code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// The request's trace id (daemon-minted or propagated).
    pub trace_id: String,
    /// Terminal outcome: `ok`, `error`, `timeout`, `panic`, or `shed`.
    pub outcome: &'static str,
    /// End-to-end elapsed time on the serving side, in microseconds.
    pub elapsed_us: u64,
    /// Outcome attribution (degraded, cache_tier, threads, code, ...).
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// The request's recorded span tree (empty when recording was off).
    pub events: Vec<TraceEvent>,
}

/// Appends one attribute value as JSON.
fn json_attr_value(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::Str(v) => json_string(out, v),
    }
}

/// Appends an attribute list as a JSON object (`{"k":v,...}`).
fn json_attr_object(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    out.push('{');
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, key);
        out.push(':');
        json_attr_value(out, value);
    }
    out.push('}');
}

/// Renders a recorded event buffer as a wire-JSON array, one object per
/// event: `{"name":...,"ts":<us>,"dur":<us>,"args":{...}}` for spans,
/// the same without `dur` for instant events. This is the span payload
/// of the `trace <id>` NDJSON command; the stitcher on the other side
/// turns it back into Chrome `trace_event` entries.
pub fn events_wire_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_string(&mut out, ev.name);
        let _ = write!(out, ",\"ts\":{}", ev.start_us);
        if let Some(dur) = ev.dur_us {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        if !ev.attrs.is_empty() {
            out.push_str(",\"args\":");
            json_attr_object(&mut out, &ev.attrs);
        }
        out.push('}');
    }
    out.push(']');
    out
}

impl RequestRecord {
    /// One-line summary object: trace id, outcome, elapsed time, and the
    /// outcome attributes — the `last_traces` item shape, also used as
    /// the structured slow-request log line.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\"trace_id\":");
        json_string(&mut out, &self.trace_id);
        out.push_str(",\"outcome\":");
        json_string(&mut out, self.outcome);
        let _ = write!(out, ",\"elapsed_us\":{},\"attrs\":", self.elapsed_us);
        json_attr_object(&mut out, &self.attrs);
        out.push('}');
        out
    }

    /// Full fragment object for the `trace <id>` command: the summary
    /// fields plus the span tree, labeled with the capturing process.
    pub fn fragment_json(&self, process: &str) -> String {
        let mut out = String::from("{\"process\":");
        json_string(&mut out, process);
        out.push_str(",\"outcome\":");
        json_string(&mut out, self.outcome);
        let _ = write!(out, ",\"elapsed_us\":{},\"attrs\":", self.elapsed_us);
        json_attr_object(&mut out, &self.attrs);
        out.push_str(",\"spans\":");
        out.push_str(&events_wire_json(&self.events));
        out.push('}');
        out
    }
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    ring: Mutex<VecDeque<Arc<RequestRecord>>>,
}

/// A bounded ring buffer of completed [`RequestRecord`]s — the always-on
/// flight recorder. Capture is O(1) per request (one mutex push plus at
/// most one pop) and happens on the serving layer's connection threads,
/// never on the analysis worker pool. Capacity 0 disables capture
/// entirely (a single pointer test, like [`Recorder::disabled`]).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<FlightInner>>,
}

impl FlightRecorder {
    /// A flight recorder holding up to `capacity` records; 0 disables it.
    pub fn new(capacity: usize) -> FlightRecorder {
        if capacity == 0 {
            return FlightRecorder { inner: None };
        }
        FlightRecorder {
            inner: Some(Arc::new(FlightInner {
                capacity,
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
            })),
        }
    }

    /// A recorder that captures nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// Whether records are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Pushes a completed record, evicting the oldest when full. O(1).
    pub fn push(&self, record: RequestRecord) {
        let Some(inner) = &self.inner else { return };
        let mut ring = inner.ring.lock().expect("flight ring poisoned");
        if ring.len() == inner.capacity {
            ring.pop_front();
        }
        ring.push_back(Arc::new(record));
    }

    /// Looks up a record by trace id, newest match first.
    pub fn get(&self, trace_id: &str) -> Option<Arc<RequestRecord>> {
        let inner = self.inner.as_ref()?;
        let ring = inner.ring.lock().expect("flight ring poisoned");
        ring.iter().rev().find(|r| r.trace_id == trace_id).cloned()
    }

    /// The most recent records, newest first, up to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Arc<RequestRecord>> {
        match &self.inner {
            Some(inner) => {
                let ring = inner.ring.lock().expect("flight ring poisoned");
                ring.iter().rev().take(limit).cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// Every retained record, oldest first.
    pub fn snapshot(&self) -> Vec<Arc<RequestRecord>> {
        match &self.inner {
            Some(inner) => {
                inner.ring.lock().expect("flight ring poisoned").iter().cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// Configured ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.capacity)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.ring.lock().expect("flight ring poisoned").len(),
            None => 0,
        }
    }

    /// Whether the ring currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes + escapes).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_measures_but_records_nothing() {
        let rec = Recorder::disabled();
        let span = rec.span("phase");
        let elapsed = span.finish();
        assert!(elapsed >= Duration::ZERO);
        assert!(rec.events().is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn deterministic_recorder_zeroes_all_timestamps() {
        let rec = Recorder::deterministic();
        let mut span = rec.span("solve");
        span.attr("nodes", 7usize);
        span.finish();
        rec.event("degrade", vec![("from", "CS".into())]);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].start_us, 0);
        assert_eq!(events[0].dur_us, Some(0));
        assert_eq!(events[1].start_us, 0);
        assert_eq!(events[1].dur_us, None);
    }

    #[test]
    fn dropped_span_is_still_recorded() {
        let rec = Recorder::deterministic();
        {
            let mut span = rec.span("phase2");
            span.attr("units", 3u64);
        }
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "phase2");
        assert_eq!(events[0].attrs, vec![("units", AttrValue::U64(3))]);
    }

    #[test]
    fn aggregate_sums_counts_durations_and_numeric_attrs() {
        let rec = Recorder::new();
        for flows in [2u64, 3u64] {
            rec.record(TraceEvent {
                name: "phase2.unit",
                start_us: 0,
                dur_us: Some(100),
                attrs: vec![("flows", AttrValue::U64(flows)), ("rule", "xss".into())],
            });
        }
        let rows = rec.aggregate();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_us, 200);
        assert_eq!(rows[0].counters, vec![("flows", 5)]);
        let text = rec.profile_text();
        assert!(text.contains("phase2.unit"), "{text}");
        assert!(text.contains("flows=5"), "{text}");
    }

    #[test]
    fn signature_is_sorted_and_timestamp_free() {
        let build = |order_flip: bool| {
            let rec = Recorder::deterministic();
            let names = if order_flip { ["b", "a"] } else { ["a", "b"] };
            for name in names {
                // Distinct names via leak-free static match.
                let stat: &'static str = if name == "a" { "a" } else { "b" };
                rec.event(stat, vec![("k", AttrValue::U64(1))]);
            }
            rec.signature()
        };
        assert_eq!(build(false), build(true));
        assert_eq!(build(false), vec!["a k=1".to_string(), "b k=1".to_string()]);
    }

    #[test]
    fn flight_recorder_ring_evicts_oldest_and_looks_up_by_id() {
        let flight = FlightRecorder::new(2);
        assert!(flight.is_enabled());
        for i in 0..3u64 {
            flight.push(RequestRecord {
                trace_id: format!("taj-{i:016x}"),
                outcome: "ok",
                elapsed_us: i,
                attrs: vec![("threads", AttrValue::U64(1))],
                events: Vec::new(),
            });
        }
        assert_eq!(flight.len(), 2);
        assert!(flight.get("taj-0000000000000000").is_none(), "oldest must be evicted");
        assert!(flight.get("taj-0000000000000002").is_some());
        let recent = flight.recent(8);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].trace_id, "taj-0000000000000002", "newest first");
        let snap = flight.snapshot();
        assert_eq!(snap[0].trace_id, "taj-0000000000000001", "oldest first");
    }

    #[test]
    fn disabled_flight_recorder_drops_everything() {
        let flight = FlightRecorder::new(0);
        assert!(!flight.is_enabled());
        flight.push(RequestRecord {
            trace_id: "taj-x".into(),
            outcome: "ok",
            elapsed_us: 1,
            attrs: Vec::new(),
            events: Vec::new(),
        });
        assert!(flight.is_empty());
        assert!(flight.get("taj-x").is_none());
        assert!(flight.recent(4).is_empty());
    }

    #[test]
    fn request_record_renders_summary_and_fragment_json() {
        let record = RequestRecord {
            trace_id: "taj-1".into(),
            outcome: "error",
            elapsed_us: 1500,
            attrs: vec![("code", "timeout".into()), ("degraded", AttrValue::Bool(false))],
            events: vec![
                TraceEvent {
                    name: "queue.wait",
                    start_us: 2,
                    dur_us: Some(40),
                    attrs: vec![("depth", AttrValue::U64(3))],
                },
                TraceEvent { name: "cache.probe", start_us: 50, dur_us: None, attrs: vec![] },
            ],
        };
        let summary = record.summary_json();
        assert_eq!(
            summary,
            "{\"trace_id\":\"taj-1\",\"outcome\":\"error\",\"elapsed_us\":1500,\
             \"attrs\":{\"code\":\"timeout\",\"degraded\":false}}"
        );
        let fragment = record.fragment_json("daemon");
        assert!(fragment.starts_with("{\"process\":\"daemon\","), "{fragment}");
        assert!(
            fragment.contains(
                "\"spans\":[{\"name\":\"queue.wait\",\"ts\":2,\"dur\":40,\
                 \"args\":{\"depth\":3}},{\"name\":\"cache.probe\",\"ts\":50}]"
            ),
            "{fragment}"
        );
    }

    #[test]
    fn chrome_trace_renders_spans_and_instants() {
        let rec = Recorder::new();
        rec.record(TraceEvent {
            name: "phase1.solve",
            start_us: 10,
            dur_us: Some(25),
            attrs: vec![("nodes", AttrValue::U64(4)), ("note", "a\"b".into())],
        });
        rec.event("degrade", vec![]);
        let json = rec.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\",\"dur\":25"), "{json}");
        assert!(json.contains("\"ph\":\"i\",\"s\":\"g\""), "{json}");
        assert!(json.contains("\"args\":{\"nodes\":4,\"note\":\"a\\\"b\"}"), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{json}");
    }
}
