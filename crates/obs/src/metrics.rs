//! Daemon-facing metrics: fixed-bucket atomic histograms and a builder
//! for the Prometheus text exposition format.
//!
//! The daemon keeps its counters as plain atomics (it already did) and a
//! pair of [`Histogram`]s for queue-wait and run time; the `metrics`
//! request renders everything through [`Exposition`], which takes care of
//! `# HELP`/`# TYPE` headers, label escaping, and the
//! `_bucket`/`_sum`/`_count` triple for histograms. Output ordering is
//! exactly the order the caller emits families in — deterministic by
//! construction.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default latency buckets in seconds, spanning sub-millisecond cache
/// hits to multi-second degraded analyses. `+Inf` is implicit.
pub const LATENCY_BUCKETS: [f64; 10] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0];

/// A fixed-bucket histogram with atomic counters; observations are in
/// seconds. Buckets store per-bin counts; [`Histogram::snapshot`]
/// cumulates them into Prometheus' `le`-cumulative form.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    bins: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A histogram over the given upper bounds (ascending, in seconds).
    pub fn new(bounds: &'static [f64]) -> Histogram {
        Histogram {
            bounds,
            bins: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// A histogram over [`LATENCY_BUCKETS`].
    pub fn latency() -> Histogram {
        Histogram::new(&LATENCY_BUCKETS)
    }

    /// Records one observation (seconds). Lock-free; relaxed ordering is
    /// fine because snapshots are only ever approximate cross-bin.
    pub fn observe(&self, seconds: f64) {
        let bin = self.bounds.iter().position(|b| seconds <= *b).unwrap_or(self.bounds.len());
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = if seconds > 0.0 { (seconds * 1_000_000.0) as u64 } else { 0 };
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// A cumulative snapshot for rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.bounds.len());
        let mut running = 0u64;
        for bin in &self.bins[..self.bounds.len()] {
            running += bin.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            bounds: self.bounds,
            cumulative,
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_micros.load(Ordering::Relaxed) as f64 / 1_000_000.0,
        }
    }
}

/// A point-in-time cumulative view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Upper bounds in seconds (ascending; `+Inf` implicit).
    pub bounds: &'static [f64],
    /// Cumulative observation counts per bound (`le` semantics).
    pub cumulative: Vec<u64>,
    /// Total observation count (the `+Inf` bucket).
    pub count: u64,
    /// Sum of all observations in seconds.
    pub sum_seconds: f64,
}

/// Builds a Prometheus text-format exposition. Families render in the
/// order they are emitted; every sample line is `name{labels} value`.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Emits the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is `counter`, `gauge`, or `histogram`.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line. Integral values render without a decimal
    /// point; labels are escaped per the exposition grammar.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        write_labels(&mut self.out, labels);
        self.out.push(' ');
        write_value(&mut self.out, value);
        self.out.push('\n');
    }

    /// Emits the header plus `_bucket`/`_sum`/`_count` lines for a
    /// histogram snapshot, merging `labels` with the per-bucket `le`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.family(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        for (bound, cumulative) in snap.bounds.iter().zip(&snap.cumulative) {
            let le = trim_float(*bound);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket, &with_le, *cumulative as f64);
        }
        let mut inf: Vec<(&str, &str)> = labels.to_vec();
        inf.push(("le", "+Inf"));
        self.sample(&bucket, &inf, snap.count as f64);
        self.sample(&format!("{name}_sum"), labels, snap.sum_seconds);
        self.sample(&format!("{name}_count"), labels, snap.count as f64);
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Formats a float bound the way Prometheus clients expect (`0.005`,
/// `1`, `30`): shortest form without a trailing `.0`.
fn trim_float(v: f64) -> String {
    if v == v.trunc() {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

fn write_value(out: &mut String, value: f64) {
    if value == value.trunc() && value.abs() < 9.0e15 {
        let _ = write!(out, "{}", value as i64);
    } else {
        let _ = write!(out, "{value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::latency();
        h.observe(0.0004); // -> le=0.001
        h.observe(0.003); // -> le=0.005
        h.observe(0.003);
        h.observe(99.0); // -> +Inf only
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.cumulative[0], 1);
        assert_eq!(snap.cumulative[1], 3);
        assert_eq!(*snap.cumulative.last().unwrap(), 3, "overflow stays out of finite buckets");
        assert!((snap.sum_seconds - 99.0064).abs() < 1e-6, "{}", snap.sum_seconds);
    }

    #[test]
    fn exposition_renders_counter_and_histogram_grammar() {
        let h = Histogram::latency();
        h.observe(0.002);
        let mut exp = Exposition::new();
        exp.family("taj_requests_total", "Total requests.", "counter");
        exp.sample("taj_requests_total", &[], 42.0);
        exp.sample("taj_cache_hits_total", &[("tier", "report")], 7.0);
        exp.histogram("taj_run_seconds", "Run time.", &[], &h.snapshot());
        let text = exp.finish();
        assert!(text.contains("# HELP taj_requests_total Total requests.\n"), "{text}");
        assert!(text.contains("# TYPE taj_requests_total counter\n"), "{text}");
        assert!(text.contains("\ntaj_requests_total 42\n"), "{text}");
        assert!(text.contains("taj_cache_hits_total{tier=\"report\"} 7\n"), "{text}");
        assert!(text.contains("# TYPE taj_run_seconds histogram\n"), "{text}");
        assert!(text.contains("taj_run_seconds_bucket{le=\"0.005\"} 1\n"), "{text}");
        assert!(text.contains("taj_run_seconds_bucket{le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("taj_run_seconds_sum 0.002\n"), "{text}");
        assert!(text.contains("taj_run_seconds_count 1\n"), "{text}");
        assert!(text.ends_with('\n'), "exposition ends with newline");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut exp = Exposition::new();
        exp.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(exp.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
