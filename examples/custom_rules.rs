//! Custom security rules and machine-readable output: author a rule file
//! (here, an organization that only trusts its own wrapper API), analyze,
//! and emit SARIF for a code-scanning UI.
//!
//! Run with: `cargo run --example custom_rules`

use taj::core::{analyze_source, parse_rules, to_sarif, TajConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An org-specific policy: only header values are considered attacker
    // controlled, the in-house `Encoder.encodeForHTML` is the only
    // accepted XSS sanitizer, and the legacy `Render` helper is known-safe
    // (whitelisted away, §4.2.1).
    let rules_text = r#"
# ACME web policy
rule XSS
  source HttpServletRequest.getHeader
  sanitizer Encoder.encodeForHTML
  sink PrintWriter.println 0
  sink PrintWriter.print 0
end

rule SQLi
  source HttpServletRequest.getHeader
  sanitizer Encoder.encodeForSQL
  sink Statement.executeQuery 0
end

whitelist Render
"#;
    let rules = parse_rules(rules_text)?;

    let source = r#"
        library class Render {
            static method void banner(PrintWriter w, String s) { w.println(s); }
        }
        class AcmePage extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                PrintWriter w = resp.getWriter();

                // Finding: header value rendered raw.
                w.println(req.getHeader("User-Agent"));

                // No finding under this policy: getParameter is not a
                // source for ACME (their framework pre-validates it).
                w.println(req.getParameter("q"));

                // No finding: Render is whitelisted.
                Render.banner(w, req.getHeader("Referer"));
            }
        }
    "#;

    let report = analyze_source(source, None, rules, &TajConfig::hybrid_optimized())?;
    println!("findings under the ACME policy: {}", report.issue_count());
    for f in &report.findings {
        println!(
            "  [{}] {} → {} in {}",
            f.flow.issue, f.flow.source_method, f.flow.sink_method, f.flow.sink_owner_class
        );
    }

    println!("\n—— SARIF 2.1.0 ——");
    println!("{}", to_sarif(&report)?);
    Ok(())
}
