//! Library-call-point report minimization (§5, Figure 3): many raw
//! source→sink flows collapse into few actionable findings, grouped by
//! the last application→library crossing and the required remediation.
//!
//! Run with: `cargo run --example report_dedup`

use taj::{analyze_source, RuleSet, TajConfig};

fn main() -> Result<(), taj::TajError> {
    // Three parameters funnel through one rendering helper: one fix (a
    // sanitizer at the helper call) remedies all three flows. A fourth
    // flow prints directly and needs its own fix; a fifth reaches a SQL
    // sink and needs a *different* remediation even though it shares the
    // source.
    let source = r#"
        library class Render {
            static method void emit(PrintWriter w, String s) { w.println(s); }
        }

        class ReportPage extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                PrintWriter w = resp.getWriter();
                String a = req.getParameter("a");
                String b = req.getParameter("b");
                String c = req.getParameter("c");

                String merged = a + "|" + b + "|" + c;
                Render.emit(w, merged);      // LCP #1: one fix, three flows

                String d = req.getParameter("d");
                w.println(d);                 // LCP #2: direct sink call

                Connection conn = DriverManager.getConnection("jdbc:app");
                Statement st = conn.createStatement();
                st.executeQuery("SELECT " + d); // LCP #3: different issue type
            }
        }
    "#;

    let report =
        analyze_source(source, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())?;

    println!("raw source→sink flows : {}", report.flows.len());
    println!("deduplicated findings : {}\n", report.issue_count());
    for f in &report.findings {
        println!(
            "  [{}] fix at the {} call in {} — remedies {} flow(s)",
            f.flow.issue, f.flow.sink_method, f.lcp_owner_class, f.group_size
        );
    }
    println!();
    println!("The three getParameter flows through Render.emit share one library");
    println!("call point: inserting a sanitizer there fixes all of them, so TAJ");
    println!("reports one representative (§5). The direct println and the");
    println!("executeQuery flows need different remediations and stay separate.");
    Ok(())
}
