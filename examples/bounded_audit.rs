//! Bounded analysis (§6 of the paper): run all five Table 1
//! configurations over one generated web application and compare issue
//! counts, accuracy, and cost.
//!
//! Run with: `cargo run --release --example bounded_audit`

use taj::core::{analyze_prepared, prepare, score, RuleSet, TajConfig, TajError};
use taj::webgen::{generate, presets, Scale};

fn main() {
    // Generate the synthetic "Webgoat" benchmark: it carries the
    // bound-sensitive patterns (deep nesting, long flows) that make the
    // configurations disagree.
    let preset = presets().into_iter().find(|p| p.name == "Webgoat").expect("preset");
    let bench = generate(&preset.spec(Scale::standard()));
    println!(
        "Generated `{}`: {} classes, {} methods, {} lines, {} seeded patterns\n",
        bench.name,
        bench.stats.classes,
        bench.stats.methods,
        bench.stats.lines,
        bench.truth.vulnerable.len() + bench.truth.benign.len(),
    );

    let prepared = prepare(&bench.source, Some(&bench.descriptor), RuleSet::default_rules())
        .expect("generated code prepares");

    println!(
        "{:<20} {:>7} {:>5} {:>5} {:>5} {:>9} {:>9} {:>10}",
        "configuration", "issues", "TP", "FP", "FN", "cg nodes", "time(ms)", "truncated?"
    );
    println!("{}", "-".repeat(80));
    for config in TajConfig::all() {
        match analyze_prepared(&prepared, &config) {
            Ok(report) => {
                let s = score(&report, &bench.truth);
                println!(
                    "{:<20} {:>7} {:>5} {:>5} {:>5} {:>9} {:>9} {:>10}",
                    config.name,
                    report.issue_count(),
                    s.true_positives,
                    s.false_positives,
                    s.false_negatives,
                    report.stats.cg_nodes,
                    report.stats.total_ms,
                    if report.stats.cg_budget_exhausted { "yes" } else { "no" },
                );
            }
            Err(TajError::OutOfMemory { path_edges }) => {
                println!(
                    "{:<20} {:>7}   — ran out of memory budget after {} path edges",
                    config.name, "-", path_edges
                );
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    println!();
    println!("Reading the table: the unbounded hybrid run is the soundness");
    println!("reference. The prioritized run bounds the call graph (§6.1) and");
    println!("prunes code far from taint. The fully optimized run adds the heap,");
    println!("flow-length, and nested-depth bounds of §6.2 — it trades the deep");
    println!("and long flows (false negatives) for fewer false positives. CS may");
    println!("exhaust its memory budget; CI completes but reports extra false");
    println!("positives from merged calling contexts.");
}
