//! The paper's Figure 1 motivating program, analyzed end to end.
//!
//! The program reads two tainted servlet parameters, pushes them through a
//! `HashMap` under distinct constant keys, invokes `Motivating.id`
//! reflectively three times (tainted / sanitized / untainted argument),
//! wraps each result in an `Internal` object, and prints all three.
//! Exactly one `println` is vulnerable — the analysis must disambiguate
//! the reflective calls, the map keys, and the wrapper objects to see
//! that.
//!
//! Run with: `cargo run --example motivating`

use taj::webgen::motivating;
use taj::{analyze_source, RuleSet, TajConfig};

fn main() -> Result<(), taj::TajError> {
    let program = motivating();
    println!("—— Figure 1 program ——\n{}\n", program.source.trim());

    for config in [TajConfig::hybrid_unbounded(), TajConfig::cs_thin(), TajConfig::ci_thin()] {
        let report = analyze_source(&program.source, None, RuleSet::default_rules(), &config)?;
        println!("{:<18} reports {} issue(s):", config.name, report.issue_count());
        for f in &report.findings {
            println!(
                "    [{}] {} → {} in {} (flow length {}, {} heap hops)",
                f.flow.issue,
                f.flow.source_method,
                f.flow.sink_method,
                f.flow.sink_owner_class,
                f.flow.flow_len,
                f.flow.heap_transitions,
            );
        }
    }
    println!();
    println!("Expected: the hybrid algorithm flags exactly one XSS flow — the");
    println!("`println(i1)` whose wrapped string came from getParameter(\"fName\")");
    println!("through the reflective `id` call. `println(i2)` was sanitized by");
    println!("URLEncoder.encode and `println(i3)` carries non-tainted data.");
    Ok(())
}
