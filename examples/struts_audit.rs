//! Auditing a Struts-style application (§4.2.2 of the paper): `Action`
//! classes are dispatched by the framework with `ActionForm` beans whose
//! fields are populated from user input. TAJ synthesizes entrypoints that
//! drive each action with tainted forms, selecting form subtypes from the
//! cast constraints inside `execute`.
//!
//! Run with: `cargo run --example struts_audit`

use taj::{analyze_source, RuleSet, TajConfig};

fn main() -> Result<(), taj::TajError> {
    let source = r#"
        class LoginForm extends ActionForm {
            field String username;
            field String password;
            ctor () { }
        }

        class ProfileForm extends ActionForm {
            field String bio;
            ctor () { }
        }

        class LoginAction extends Action {
            ctor () { }
            method void execute(ActionMapping mapping, ActionForm form,
                                HttpServletRequest req, HttpServletResponse resp) {
                LoginForm f = (LoginForm) form;
                String user = f.username;
                PrintWriter out = resp.getWriter();
                // Vulnerable: unencoded form field rendered to the page.
                out.println("Welcome back, " + user);
            }
        }

        class ProfileAction extends Action {
            ctor () { }
            method void execute(ActionMapping mapping, ActionForm form,
                                HttpServletRequest req, HttpServletResponse resp) {
                ProfileForm f = (ProfileForm) form;
                String bio = f.bio;
                PrintWriter out = resp.getWriter();
                // Safe: encoded before rendering.
                out.println(Encoder.encodeForHTML(bio));
            }
        }
    "#;

    let report =
        analyze_source(source, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())?;

    println!("Struts audit: {} issue(s) found.\n", report.issue_count());
    for f in &report.findings {
        println!(
            "  [{}] tainted ActionForm data reaches {} in {}",
            f.flow.issue, f.flow.sink_method, f.flow.sink_owner_class
        );
    }
    println!();
    println!("Expected: LoginAction is flagged (raw form field in the response);");
    println!("ProfileAction is clean (encodeForHTML sanitizes the flow). The cast");
    println!("constraints inside each `execute` keep the other form subtype out,");
    println!("so LoginAction is not polluted by ProfileForm's fields.");
    Ok(())
}
