//! Quickstart: analyze a small servlet for the OWASP vulnerability
//! classes TAJ targets and print the report.
//!
//! Run with: `cargo run --example quickstart`

use taj::{analyze_source, RuleSet, TajConfig};

fn main() -> Result<(), taj::TajError> {
    let source = r#"
        class SearchPage extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String query = req.getParameter("q");
                PrintWriter out = resp.getWriter();

                // Reflected XSS: raw user input echoed to the response.
                out.println("You searched for: " + query);

                // SQL injection: raw user input concatenated into a query.
                Connection c = DriverManager.getConnection("jdbc:app");
                Statement st = c.createStatement();
                st.executeQuery("SELECT * FROM docs WHERE body LIKE " + query);

                // This one is fine: HTML-encoded before rendering.
                out.println(Encoder.encodeForHTML(query));
            }
        }
    "#;

    let report =
        analyze_source(source, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())?;

    println!("TAJ found {} issue(s):\n", report.issue_count());
    for (i, finding) in report.findings.iter().enumerate() {
        println!(
            "{:>2}. [{}] {} -> {} (in class {}, flow length {}, {} heap hop(s), \
             {} flow(s) share this fix point)",
            i + 1,
            finding.flow.issue,
            finding.flow.source_method,
            finding.flow.sink_method,
            finding.flow.sink_owner_class,
            finding.flow.flow_len,
            finding.flow.heap_transitions,
            finding.group_size,
        );
    }
    println!("\nAnalysis statistics:");
    println!("  call-graph nodes : {}", report.stats.cg_nodes);
    println!("  abstract objects : {}", report.stats.instance_keys);
    println!("  pointer phase    : {} ms", report.stats.pointer_ms);
    println!("  slicing phase    : {} ms", report.stats.slice_ms);
    Ok(())
}
