//! The persistent artifact store as a daemon-level guarantee: a daemon
//! restarted on the same store directory answers repeat requests
//! byte-identically with **zero** phase-1 re-runs, two daemons sharing a
//! directory share their work, and invalid on-disk entries are
//! quarantined (renamed aside) — served never, panicking never.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Value;
use taj::service::{serve, Client, ServeOptions};

const XSS_SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            PrintWriter w = resp.getWriter();
            w.println(name);
        }
    }
"#;

/// A fresh per-test store directory under the system temp dir.
fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taj-store-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn store_options(dir: &Path) -> ServeOptions {
    ServeOptions { workers: 2, store_dir: Some(dir.to_path_buf()), ..ServeOptions::tcp_ephemeral() }
}

fn start(options: ServeOptions) -> (taj::service::ServerHandle, Client) {
    let handle = serve(options).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client)
}

fn shutdown_and_join(mut client: Client, handle: taj::service::ServerHandle) {
    client.shutdown().expect("shutdown acknowledged");
    handle.join();
}

fn stat(stats: &Value, key: &str) -> u64 {
    stats[key].as_u64().unwrap_or_else(|| panic!("stats missing `{key}`: {stats:?}"))
}

/// The fixed request line reused across daemon generations: same id and
/// trace id each time, so the *entire* response line must match bytes.
fn fixed_request() -> String {
    format!(
        "{{\"id\":7,\"cmd\":\"analyze\",\"source\":{},\"config\":\"hybrid\",\"trace_id\":\"t-7\"}}",
        serde_json::to_string(&Value::String(XSS_SERVLET.to_string())).unwrap()
    )
}

/// The `.taj` entry files currently in a store directory.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .expect("store dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "taj"))
        .collect()
}

#[test]
fn restart_on_same_store_dir_serves_from_disk_with_zero_phase1_runs() {
    let dir = temp_store("restart");
    let req = fixed_request();

    let (handle, mut client) = start(store_options(&dir));
    let first = client.request_raw(&req).expect("cold analyze");
    assert!(first.contains("\"ok\":true"), "{first}");
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 1);
    assert_eq!(stat(&stats["store"], "misses"), 1, "cold lookup misses the disk: {stats:?}");
    shutdown_and_join(client, handle);
    assert_eq!(entry_files(&dir).len(), 1, "shutdown leaves the entry on disk");

    // A brand-new daemon on the same directory: memory caches are empty,
    // the disk tier is not.
    let (handle, mut client) = start(store_options(&dir));
    let second = client.request_raw(&req).expect("warm analyze");
    assert_eq!(first, second, "disk-served repeat must be byte-identical");
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 0, "restart must not re-run phase 1: {stats:?}");
    assert_eq!(stat(&stats, "prepare_runs"), 0, "nor prepare");
    assert_eq!(stat(&stats, "phase2_runs"), 0, "nor phase 2");
    assert_eq!(stat(&stats["store"], "hits"), 1);
    assert_eq!(stat(&stats["store"], "replayed_entries"), 1, "open replay saw the entry");

    // A repeat within the new daemon is a memory hit, not a second disk
    // read: the disk hit was promoted into the report tier.
    let third = client.request_raw(&req).expect("promoted analyze");
    assert_eq!(second, third);
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats["store"], "hits"), 1, "promotion keeps repeats off the disk");
    shutdown_and_join(client, handle);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn two_daemons_share_one_store_directory() {
    let dir = temp_store("shared");
    let req = fixed_request();

    // Both daemons run concurrently against one directory.
    let (handle_a, mut client_a) = start(store_options(&dir));
    let (handle_b, mut client_b) = start(store_options(&dir));

    let from_a = client_a.request_raw(&req).expect("analyze on daemon A");
    let from_b = client_b.request_raw(&req).expect("analyze on daemon B");
    assert_eq!(from_a, from_b, "daemon B serves daemon A's bytes");

    let stats_b = client_b.stats().expect("stats B");
    assert_eq!(stat(&stats_b, "phase1_runs"), 0, "B found A's entry on disk: {stats_b:?}");
    assert_eq!(stat(&stats_b["store"], "hits"), 1);

    shutdown_and_join(client_a, handle_a);
    shutdown_and_join(client_b, handle_b);
    let _ = fs::remove_dir_all(&dir);
}

/// Corrupts the single store entry with `mutate`, restarts a daemon on
/// the directory, and asserts the repeat request is recomputed (not
/// served from the bad entry), the entry is quarantined, and nothing
/// panics.
fn corruption_case(name: &str, mutate: impl FnOnce(&Path)) {
    let dir = temp_store(name);
    let req = fixed_request();

    let (handle, mut client) = start(store_options(&dir));
    let first = client.request_raw(&req).expect("cold analyze");
    shutdown_and_join(client, handle);
    let entries = entry_files(&dir);
    assert_eq!(entries.len(), 1);
    mutate(&entries[0]);

    let (handle, mut client) = start(store_options(&dir));
    let second = client.request_raw(&req).expect("analyze after corruption");
    assert_eq!(first, second, "recomputed answer must match the original");
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 1, "corrupt entry forces a real run: {stats:?}");
    assert_eq!(stat(&stats["store"], "hits"), 0);
    assert!(stat(&stats["store"], "quarantined") >= 1, "{stats:?}");
    let quarantined = fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "quarantined"))
        .count();
    assert!(quarantined >= 1, "bad entry renamed aside, not deleted or served");
    shutdown_and_join(client, handle);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_quarantined_not_served() {
    corruption_case("truncate", |path| {
        let bytes = fs::read(path).expect("read entry");
        fs::write(path, &bytes[..bytes.len() / 2]).expect("truncate entry");
    });
}

#[test]
fn bit_flipped_payload_is_quarantined_not_served() {
    corruption_case("bitflip", |path| {
        let mut bytes = fs::read(path).expect("read entry");
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20; // flip a payload character, length unchanged
        fs::write(path, &bytes).expect("rewrite entry");
    });
}

#[test]
fn version_mismatched_entry_is_quarantined_not_served() {
    corruption_case("version", |path| {
        let text = fs::read_to_string(path).expect("read entry");
        let bumped = text.replacen("taj-store v1 ", "taj-store v999 ", 1);
        assert_ne!(text, bumped, "header must carry the version");
        fs::write(path, bumped).expect("rewrite entry");
    });
}

#[test]
fn fingerprint_mismatched_entry_is_quarantined_not_served() {
    corruption_case("fingerprint", |path| {
        let text = fs::read_to_string(path).expect("read entry");
        let fp_start = text.find("fp=").expect("header carries fp") + 3;
        let mut bytes = text.into_bytes();
        // Rewrite the 32-hex-digit fingerprint in place: same length,
        // different writer identity.
        for b in &mut bytes[fp_start..fp_start + 32] {
            *b = if *b == b'0' { b'1' } else { b'0' };
        }
        fs::write(path, bytes).expect("rewrite entry");
    });
}

#[test]
fn daemon_without_store_reports_it_disabled() {
    let (handle, mut client) = start(ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() });
    let stats = client.stats().expect("stats");
    assert_eq!(stats["store"]["enabled"].as_bool(), Some(false), "{stats:?}");
    // The metrics exposition keeps its shape: the disk tier is present
    // (zeroed), so dashboards never see series appear mid-flight.
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.contains("taj_cache_hits_total{tier=\"disk\"} 0"), "{metrics}");
    assert!(metrics.contains("taj_store_enabled 0"), "{metrics}");
    shutdown_and_join(client, handle);
}
