//! Evaluation-shape assertions at benchmark scale (quick scale so this
//! stays fast in CI): the headline §7.2 claims must hold on every run,
//! not just in the printed tables.

use taj::core::{analyze_prepared, prepare, score, RuleSet, Score, TajConfig, TajError};
use taj::webgen::{generate, presets, Scale};

fn run(bench: &taj::webgen::GeneratedBenchmark, config: &TajConfig) -> Option<(usize, Score)> {
    let prepared =
        prepare(&bench.source, Some(&bench.descriptor), RuleSet::default_rules()).unwrap();
    match analyze_prepared(&prepared, config) {
        Ok(r) => {
            let s = score(&r, &bench.truth);
            Some((r.issue_count(), s))
        }
        Err(TajError::OutOfMemory { .. }) => None,
        Err(e) => panic!("{e}"),
    }
}

/// Sound configurations find every seeded flow on every Figure 4 preset.
#[test]
fn figure4_presets_no_false_negatives_for_sound_configs() {
    for preset in presets().into_iter().filter(|p| p.in_figure4) {
        let bench = generate(&preset.spec(Scale::quick()));
        for config in [TajConfig::hybrid_unbounded(), TajConfig::ci_thin()] {
            let (_, s) = run(&bench, &config).expect("unbounded configs complete");
            assert_eq!(s.false_negatives, 0, "{} on {}: {s:?}", config.name, preset.name);
        }
    }
}

/// The multithreaded presets seed exactly the paper's CS false negatives
/// (BlueBlog 2, I 1, SBM 2) — verified at generation level.
#[test]
fn multithreaded_presets_carry_paper_counts() {
    let expected = [("BlueBlog", 2usize), ("I", 1), ("SBM", 2)];
    for (name, threads) in expected {
        let preset = presets().into_iter().find(|p| p.name == name).unwrap();
        assert_eq!(preset.threads, threads, "{name}");
        // And the generated source really contains that many spawn sites.
        let bench = generate(&preset.spec(Scale::quick()));
        let spawns = bench.source.matches(".start()").count();
        assert_eq!(spawns, threads, "{name} spawn sites");
    }
}

/// CI reports at least as many issues as the hybrid configuration on
/// every preset (it is the most conservative algorithm).
#[test]
fn ci_reports_superset_counts() {
    for preset in presets().into_iter().filter(|p| p.in_figure4).take(4) {
        let bench = generate(&preset.spec(Scale::quick()));
        let (hybrid_issues, _) = run(&bench, &TajConfig::hybrid_unbounded()).unwrap();
        let (ci_issues, _) = run(&bench, &TajConfig::ci_thin()).unwrap();
        assert!(
            ci_issues >= hybrid_issues,
            "{}: CI {} < hybrid {}",
            preset.name,
            ci_issues,
            hybrid_issues
        );
    }
}

/// The optimized configuration never reports more false positives than
/// the prioritized one (its §6.2 bounds only remove flows).
#[test]
fn optimized_is_at_least_as_precise_as_prioritized() {
    for preset in presets().into_iter().filter(|p| p.in_figure4) {
        let bench = generate(&preset.spec(Scale::quick()));
        let (_, prior) = run(&bench, &TajConfig::hybrid_prioritized()).unwrap();
        let (_, optim) = run(&bench, &TajConfig::hybrid_optimized()).unwrap();
        assert!(
            optim.false_positives <= prior.false_positives,
            "{}: optimized {:?} vs prioritized {:?}",
            preset.name,
            optim,
            prior
        );
    }
}
