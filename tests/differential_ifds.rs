//! Three-way differential harness: IFDS vs CS vs Hybrid over the full
//! securibench + webgen suites (ROADMAP item 4). Independent engines
//! over the same phase-1 artifacts are the best bug-finder we can build:
//! any disagreement is either a bug in one engine or a *known delta* —
//! an algorithmic difference we can name, triage, and pin. This file
//! computes per-pair agreement sets for every case and fails on any
//! disagreement that no triage rule explains; the triaged deltas are
//! documented in EXPERIMENTS.md. The corpus, verdict reduction, and
//! triage rules live in `tests/common/` and are shared with the
//! full-vs-incremental differential harness.

mod common;

use std::collections::BTreeSet;

use common::{backends, corpus, known_delta, verdicts};
use taj::core::{analyze_prepared, prepare, score, RuleSet};

#[test]
fn three_way_differential_has_no_untriaged_disagreements() {
    let cases = corpus();
    let mut untriaged: Vec<String> = Vec::new();
    let mut triaged = 0usize;
    for case in &cases {
        let results: Vec<(&str, BTreeSet<(String, String)>)> =
            backends().iter().map(|(name, config)| (*name, verdicts(case, config))).collect();
        for (ai, (a_name, a_set)) in results.iter().enumerate() {
            for (b_name, b_set) in results.iter().skip(ai + 1) {
                for key in a_set.difference(b_set) {
                    match known_delta(case, a_name, b_name, key) {
                        Some(_) => triaged += 1,
                        None => untriaged.push(format!(
                            "{}/{}: {:?} reported by {} but not {}",
                            case.suite, case.name, key, a_name, b_name
                        )),
                    }
                }
                for key in b_set.difference(a_set) {
                    match known_delta(case, b_name, a_name, key) {
                        Some(_) => triaged += 1,
                        None => untriaged.push(format!(
                            "{}/{}: {:?} reported by {} but not {}",
                            case.suite, case.name, key, b_name, a_name
                        )),
                    }
                }
            }
        }
    }
    assert!(triaged > 0, "the ThreadShared delta must actually appear — corpus too weak");
    assert!(
        untriaged.is_empty(),
        "untriaged three-way disagreements ({}):\n{}",
        untriaged.len(),
        untriaged.join("\n")
    );
}

#[test]
fn per_backend_scores_against_ground_truth() {
    // FP/FN per backend over every case with ground truth. Soundness:
    // Hybrid and IFDS never miss a real flow; CS misses exactly the
    // cross-thread ones. Precision: IFDS false positives are bounded by
    // Hybrid's on every case — the access-path facts refine, never
    // coarsen, the hybrid heap matching at the default depth.
    for case in corpus() {
        let Some(truth) = &case.truth else { continue };
        let prepared = prepare(&case.source, case.descriptor.as_ref(), RuleSet::default_rules())
            .unwrap_or_else(|e| panic!("{}/{}: {e}", case.suite, case.name));
        let mut fps = std::collections::HashMap::new();
        for (name, config) in backends() {
            let report = analyze_prepared(&prepared, &config).expect("runs");
            let s = score(&report, truth);
            match name {
                "Hybrid" | "IFDS" => assert_eq!(
                    s.false_negatives, 0,
                    "{}/{}: {name} missed a real flow ({s:?})",
                    case.suite, case.name
                ),
                _ => assert_eq!(
                    s.false_negatives,
                    truth.cross_thread.len(),
                    "{}/{}: CS must miss exactly the cross-thread flows ({s:?})",
                    case.suite,
                    case.name
                ),
            }
            fps.insert(name, s.false_positives);
        }
        assert!(
            fps["IFDS"] <= fps["Hybrid"],
            "{}/{}: IFDS reports more false positives than Hybrid ({:?})",
            case.suite,
            case.name,
            fps
        );
    }
}
