//! Three-way differential harness: IFDS vs CS vs Hybrid over the full
//! securibench + webgen suites (ROADMAP item 4). Independent engines
//! over the same phase-1 artifacts are the best bug-finder we can build:
//! any disagreement is either a bug in one engine or a *known delta* —
//! an algorithmic difference we can name, triage, and pin. This file
//! computes per-pair agreement sets for every case and fails on any
//! disagreement that no triage rule explains; the triaged deltas are
//! documented in EXPERIMENTS.md.

use std::collections::BTreeSet;

use taj::core::{analyze_prepared, prepare, score, GroundTruth, RuleSet, TajConfig};
use taj::webgen::{generate, micro_suite, motivating, securibench_cases, BenchmarkSpec, Pattern};

/// The three backends under differencing. Hybrid is the paper's novel
/// algorithm, CS the precise baseline, IFDS the independent access-path
/// formulation added post-paper.
fn backends() -> [(&'static str, TajConfig); 3] {
    [
        ("Hybrid", TajConfig::hybrid_unbounded()),
        ("CS", TajConfig::cs_thin()),
        ("IFDS", TajConfig::ifds()),
    ]
}

/// One differential case: a named program plus (optionally) ground truth.
struct Case {
    suite: &'static str,
    name: String,
    source: String,
    descriptor: Option<taj::core::DeploymentDescriptor>,
    truth: Option<GroundTruth>,
}

/// The full differential corpus: every securibench case, every
/// micro-suite pattern, the Figure 1 motivating example, and two
/// generated webgen applications (fixed seeds — the corpus must be
/// reproducible for the triage list to stay meaningful).
fn corpus() -> Vec<Case> {
    let mut cases = Vec::new();
    for c in securibench_cases() {
        cases.push(Case {
            suite: "securibench",
            name: c.name.to_string(),
            source: c.source.clone(),
            descriptor: None,
            truth: Some(c.truth.clone()),
        });
    }
    for t in micro_suite() {
        cases.push(Case {
            suite: "micro",
            name: t.name.clone(),
            source: t.source.clone(),
            descriptor: Some(t.descriptor.clone()),
            truth: Some(t.truth.clone()),
        });
    }
    let m = motivating();
    cases.push(Case {
        suite: "micro",
        name: m.name.clone(),
        source: m.source.clone(),
        descriptor: Some(m.descriptor.clone()),
        truth: Some(m.truth.clone()),
    });
    for (name, seed) in [("webgen-mix-a", 0xD1FFu64), ("webgen-mix-b", 0xBEEFu64)] {
        let spec = BenchmarkSpec {
            name: name.into(),
            pattern_counts: vec![
                (Pattern::XssReflected, 2),
                (Pattern::XssHeap, 2),
                (Pattern::NestedCarrier, 1),
                (Pattern::SessionAttr, 1),
                (Pattern::BuilderFlow, 1),
                (Pattern::ThreadShared, 1),
                (Pattern::CollectionContext, 1),
                (Pattern::XssSanitized, 1),
                (Pattern::SqliConcat, 1),
            ],
            filler_classes: 2,
            methods_per_class: 4,
            seed,
        };
        let bench = generate(&spec);
        cases.push(Case {
            suite: "webgen",
            name: name.to_string(),
            source: bench.source,
            descriptor: Some(bench.descriptor),
            truth: Some(bench.truth),
        });
    }
    cases
}

/// A backend's report reduced to the comparable key set. The key is the
/// same `(sink class, issue)` pair the scoring layer uses — witness
/// paths and flow counts legitimately differ between algorithms; the
/// *verdict* per sink must not (except for triaged deltas).
fn verdicts(case: &Case, config: &TajConfig) -> BTreeSet<(String, String)> {
    let prepared = prepare(&case.source, case.descriptor.as_ref(), RuleSet::default_rules())
        .unwrap_or_else(|e| panic!("{}/{}: {e}", case.suite, case.name));
    let report = analyze_prepared(&prepared, config)
        .unwrap_or_else(|e| panic!("{}/{} under {}: {e}", case.suite, case.name, config.name));
    report
        .findings
        .iter()
        .map(|f| (f.flow.sink_owner_class.clone(), format!("{:?}", f.flow.issue)))
        .collect()
}

/// Triage: returns the documented reason a key may be reported by
/// `present` but not by `missing`, or `None` for an untriaged (= fatal)
/// disagreement. Every arm here has a matching row in EXPERIMENTS.md.
fn known_delta(
    case: &Case,
    present: &str,
    missing: &str,
    key: &(String, String),
) -> Option<&'static str> {
    if missing == "CS" {
        if let Some(truth) = &case.truth {
            // Delta 1 — CS loses cross-thread flows (§7.2): taint handed
            // from one thread to another through a shared object. The
            // ground truth marks exactly these keys; Hybrid and IFDS
            // both find them.
            if truth
                .cross_thread
                .iter()
                .any(|(class, issue)| *class == key.0 && format!("{issue:?}") == key.1)
            {
                return Some("CS drops heap facts across Thread.start edges (§7.2)");
            }
            // Delta 2 — flow-insensitive heap false alarms CS avoids:
            // Hybrid and IFDS both match store→load pairs through the
            // flow-insensitive points-to solution, so a benign alias of
            // a tainted store (FactoryAlias and friends) is reported;
            // CS's partially flow-sensitive heap propagation stays
            // clean. Only *benign* keys qualify — a vulnerable key
            // missing from CS that isn't cross-thread stays fatal.
            if truth
                .benign
                .iter()
                .any(|(class, issue)| *class == key.0 && format!("{issue:?}") == key.1)
            {
                return Some(
                    "flow-insensitive store→load heap matching (Hybrid and IFDS) \
                     reports a benign alias that CS's flow-sensitive heap avoids",
                );
            }
        }
    }
    let _ = present;
    None
}

#[test]
fn three_way_differential_has_no_untriaged_disagreements() {
    let cases = corpus();
    let mut untriaged: Vec<String> = Vec::new();
    let mut triaged = 0usize;
    for case in &cases {
        let results: Vec<(&str, BTreeSet<(String, String)>)> =
            backends().iter().map(|(name, config)| (*name, verdicts(case, config))).collect();
        for (ai, (a_name, a_set)) in results.iter().enumerate() {
            for (b_name, b_set) in results.iter().skip(ai + 1) {
                for key in a_set.difference(b_set) {
                    match known_delta(case, a_name, b_name, key) {
                        Some(_) => triaged += 1,
                        None => untriaged.push(format!(
                            "{}/{}: {:?} reported by {} but not {}",
                            case.suite, case.name, key, a_name, b_name
                        )),
                    }
                }
                for key in b_set.difference(a_set) {
                    match known_delta(case, b_name, a_name, key) {
                        Some(_) => triaged += 1,
                        None => untriaged.push(format!(
                            "{}/{}: {:?} reported by {} but not {}",
                            case.suite, case.name, key, b_name, a_name
                        )),
                    }
                }
            }
        }
    }
    assert!(triaged > 0, "the ThreadShared delta must actually appear — corpus too weak");
    assert!(
        untriaged.is_empty(),
        "untriaged three-way disagreements ({}):\n{}",
        untriaged.len(),
        untriaged.join("\n")
    );
}

#[test]
fn per_backend_scores_against_ground_truth() {
    // FP/FN per backend over every case with ground truth. Soundness:
    // Hybrid and IFDS never miss a real flow; CS misses exactly the
    // cross-thread ones. Precision: IFDS false positives are bounded by
    // Hybrid's on every case — the access-path facts refine, never
    // coarsen, the hybrid heap matching at the default depth.
    for case in corpus() {
        let Some(truth) = &case.truth else { continue };
        let prepared = prepare(&case.source, case.descriptor.as_ref(), RuleSet::default_rules())
            .unwrap_or_else(|e| panic!("{}/{}: {e}", case.suite, case.name));
        let mut fps = std::collections::HashMap::new();
        for (name, config) in backends() {
            let report = analyze_prepared(&prepared, &config).expect("runs");
            let s = score(&report, truth);
            match name {
                "Hybrid" | "IFDS" => assert_eq!(
                    s.false_negatives, 0,
                    "{}/{}: {name} missed a real flow ({s:?})",
                    case.suite, case.name
                ),
                _ => assert_eq!(
                    s.false_negatives,
                    truth.cross_thread.len(),
                    "{}/{}: CS must miss exactly the cross-thread flows ({s:?})",
                    case.suite,
                    case.name
                ),
            }
            fps.insert(name, s.false_positives);
        }
        assert!(
            fps["IFDS"] <= fps["Hybrid"],
            "{}/{}: IFDS reports more false positives than Hybrid ({:?})",
            case.suite,
            case.name,
            fps
        );
    }
}
