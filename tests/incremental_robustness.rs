//! Edit-robustness property test for the incremental analysis: random
//! method-edit sequences over randomly seeded webgen applications, with
//! the invariant that the incremental pipeline (summaries carried
//! forward from the previous step, dirty-region re-solve) matches a
//! from-scratch analysis at *every* step of the chain — under the
//! default run, under `--degrade` (the starved CS configuration walks
//! the degradation ladder), and at 1 and 8 phase-2 threads.

use proptest::prelude::*;

use taj::core::{RunOptions, TajConfig};
use taj::webgen::{edit_chain, generate, standard_mix, BenchmarkSpec};

mod common;
use common::{base_artifacts, full_report, incremental_report, normalized_json};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_edit_chains_keep_incremental_equal_to_full(
        program_seed in any::<u64>(),
        chain_seed in any::<u64>(),
    ) {
        // The same multi-unit shape the determinism harnesses use: big
        // enough that phase 2 splits into parallel units and the starved
        // CS configuration actually degrades.
        let spec = BenchmarkSpec {
            name: "edit-robustness".into(),
            pattern_counts: standard_mix(2, 1, true),
            filler_classes: 3,
            methods_per_class: 4,
            seed: program_seed,
        };
        let bench = generate(&spec);
        let descriptor = Some(&bench.descriptor);

        // Each scenario pairs a configuration with the run options it is
        // exercised under; the degraded scenario mirrors `--degrade`.
        let scenarios: [(&str, TajConfig, bool, usize); 3] = [
            ("hybrid@1", TajConfig::hybrid_unbounded(), false, 1),
            ("hybrid@8", TajConfig::hybrid_unbounded(), false, 8),
            ("cs-tiny degraded@8", TajConfig::cs_tiny(), true, 8),
        ];

        let chain = edit_chain(&bench.source, chain_seed, 4);
        prop_assert!(!chain.is_empty(), "filler-rich source accepts edits");
        let mut prev = bench.source.clone();
        for (step, (kind, edited)) in chain.into_iter().enumerate() {
            for (label, config, degrade, threads) in &scenarios {
                let tag = format!("step {step} ({kind}) [{label}]");
                let opts = RunOptions { degrade: *degrade, threads: *threads, ..RunOptions::default() };
                let base = base_artifacts(&prev, descriptor, config, &tag);
                let want = full_report(&edited, descriptor, config, &opts, &tag);
                let got = incremental_report(&base, &edited, descriptor, config, &opts, &tag);
                prop_assert_eq!(
                    normalized_json(&want),
                    normalized_json(&got.report),
                    "{}: incremental diverges from full", tag
                );
            }
            prev = edited;
        }
    }
}
