//! Runs the SecuriBench-Micro-style suite through the analysis
//! configurations and checks the engineered per-configuration outcomes:
//! which patterns each algorithm detects, which confusable patterns fool
//! it, and which real flows it misses.

use taj::core::{analyze_source, score, RuleSet, Score, TajConfig};
use taj::webgen::{micro_suite, motivating, MicroTest, Pattern};

fn run(t: &MicroTest, config: &TajConfig) -> Score {
    let report = analyze_source(&t.source, Some(&t.descriptor), RuleSet::default_rules(), config)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", t.name, config.name));
    score(&report, &t.truth)
}

fn case(p: Pattern) -> MicroTest {
    micro_suite()
        .into_iter()
        .find(|t| t.name == format!("Micro_{}", p.tag()))
        .expect("pattern present in suite")
}

/// Patterns every sound configuration must fully detect (TP, no FN).
const ALWAYS_DETECTED: &[Pattern] = &[
    Pattern::XssReflected,
    Pattern::SqliConcat,
    Pattern::CommandInjection,
    Pattern::MaliciousFile,
    Pattern::InfoLeak,
    Pattern::XssHeap,
    Pattern::NestedCarrier,
    Pattern::SessionAttr,
    Pattern::BuilderFlow,
    Pattern::ReflectInvoke,
    Pattern::StrutsForm,
    Pattern::EjbFlow,
    Pattern::TwoBoxContext,
    Pattern::CollectionContext,
];

/// Sanitized patterns no configuration may report.
const NEVER_REPORTED: &[Pattern] = &[Pattern::XssSanitized, Pattern::SqliSanitized];

#[test]
fn hybrid_detects_all_true_flows() {
    let cfg = TajConfig::hybrid_unbounded();
    for &p in ALWAYS_DETECTED {
        let s = run(&case(p), &cfg);
        assert_eq!(s.false_negatives, 0, "hybrid misses {p:?}: {s:?}");
        assert!(s.true_positives >= 1, "hybrid finds nothing for {p:?}: {s:?}");
    }
    // Thread flows and deep/long flows too (unbounded = sound).
    for p in [Pattern::ThreadShared, Pattern::DeepNested, Pattern::LongChain] {
        let s = run(&case(p), &cfg);
        assert_eq!(s.false_negatives, 0, "hybrid unbounded misses {p:?}: {s:?}");
    }
}

#[test]
fn sanitized_flows_never_reported() {
    for config in TajConfig::all() {
        for &p in NEVER_REPORTED {
            let s = run(&case(p), &config);
            assert_eq!(
                s.false_positives, 0,
                "{} wrongly reports sanitized {p:?}: {s:?}",
                config.name
            );
        }
    }
}

#[test]
fn context_patterns_fool_only_ci() {
    for p in [Pattern::TwoBoxContext, Pattern::CollectionContext] {
        let t = case(p);
        let hybrid = run(&t, &TajConfig::hybrid_unbounded());
        assert_eq!(hybrid.false_positives, 0, "hybrid FP on {p:?}: {hybrid:?}");
        let cs = run(&t, &TajConfig::cs_thin());
        assert_eq!(cs.false_positives, 0, "cs FP on {p:?}: {cs:?}");
        let ci = run(&t, &TajConfig::ci_thin());
        assert!(ci.false_positives >= 1, "ci should FP on {p:?}: {ci:?}");
    }
}

#[test]
fn factory_alias_fools_flow_insensitive_heap() {
    let t = case(Pattern::FactoryAlias);
    let hybrid = run(&t, &TajConfig::hybrid_unbounded());
    assert!(hybrid.false_positives >= 1, "hybrid should FP on FactoryAlias: {hybrid:?}");
    let ci = run(&t, &TajConfig::ci_thin());
    assert!(ci.false_positives >= 1, "ci should FP on FactoryAlias: {ci:?}");
    let cs = run(&t, &TajConfig::cs_thin());
    assert_eq!(cs.false_positives, 0, "cs must stay clean on FactoryAlias: {cs:?}");
}

#[test]
fn conservative_patterns_fool_everyone() {
    for p in [Pattern::ArrayConfusion, Pattern::UnknownKeyMap] {
        let t = case(p);
        for config in [TajConfig::hybrid_unbounded(), TajConfig::cs_thin(), TajConfig::ci_thin()] {
            let s = run(&t, &config);
            assert!(
                s.false_positives >= 1,
                "{} should conservatively FP on {p:?}: {s:?}",
                config.name
            );
        }
    }
}

#[test]
fn cross_thread_flow_is_cs_false_negative() {
    let t = case(Pattern::ThreadShared);
    let hybrid = run(&t, &TajConfig::hybrid_unbounded());
    assert_eq!(hybrid.false_negatives, 0, "hybrid sound for threads: {hybrid:?}");
    let ci = run(&t, &TajConfig::ci_thin());
    assert_eq!(ci.false_negatives, 0, "ci sound for threads: {ci:?}");
    let cs = run(&t, &TajConfig::cs_thin());
    assert_eq!(cs.false_negatives, 1, "cs must miss the cross-thread flow: {cs:?}");
}

#[test]
fn optimized_bounds_trade_recall() {
    // Depth-2 nested-taint bound misses the depth-3 flow (§6.2.3)…
    let deep = run(&case(Pattern::DeepNested), &TajConfig::hybrid_optimized());
    assert_eq!(deep.false_negatives, 1, "depth bound should miss DeepNested: {deep:?}");
    // …and the flow-length filter drops the >14-step witness (§6.2.2).
    let long = run(&case(Pattern::LongChain), &TajConfig::hybrid_optimized());
    assert_eq!(long.false_negatives, 1, "length filter should miss LongChain: {long:?}");
    // While the unbounded variant finds both (checked in
    // `hybrid_detects_all_true_flows`).
}

#[test]
fn motivating_example_all_algorithms() {
    let t = motivating();
    for config in TajConfig::all() {
        let s = run(&t, &config);
        assert_eq!(s.false_negatives, 0, "{} must find the Figure 1 flow: {s:?}", config.name);
    }
}

#[test]
fn figure4_accuracy_ordering_on_micro_aggregate() {
    // Aggregated over the full suite, accuracy must order CS > hybrid > CI
    // (the paper's 0.54 / 0.35 / 0.22, §7.2).
    let mut totals = std::collections::HashMap::new();
    for config in [TajConfig::cs_thin(), TajConfig::hybrid_unbounded(), TajConfig::ci_thin()] {
        let mut agg = Score::default();
        for t in micro_suite() {
            let s = run(&t, &config);
            agg.true_positives += s.true_positives;
            agg.false_positives += s.false_positives;
            agg.false_negatives += s.false_negatives;
        }
        totals.insert(config.name, agg);
    }
    let cs = totals["CS"].accuracy();
    let hybrid = totals["Hybrid-Unbounded"].accuracy();
    let ci = totals["CI"].accuracy();
    assert!(
        cs > hybrid && hybrid > ci,
        "accuracy ordering CS({cs:.2}) > hybrid({hybrid:.2}) > CI({ci:.2}) violated: {totals:#?}"
    );
    // Hybrid and CI agree on true positives (both sound, §7.2).
    assert_eq!(
        totals["Hybrid-Unbounded"].true_positives, totals["CI"].true_positives,
        "hybrid and CI are both sound and must agree on TPs"
    );
    // CS has strictly fewer TPs (thread false negatives).
    assert!(
        totals["CS"].true_positives < totals["CI"].true_positives,
        "CS must lose the cross-thread flows"
    );
}
