//! Dynamic soundness oracle: execute every micro program in the concrete
//! taint-tracking interpreter and check that each *observed* tainted sink
//! hit is reported by the sound static configurations (hybrid unbounded
//! and CI). Static analysis may over-approximate; it must never miss a
//! flow that actually happened.

use taj::core::{analyze_source, prepare, RuleSet, TajConfig};
use taj::webgen::{micro_suite, run_program, InterpConfig};

#[test]
fn sound_configs_cover_all_dynamic_flows() {
    for t in micro_suite() {
        // Dynamic run (on the unexpanded program with real entrypoints).
        let prepared_src = {
            let mut program = jir::frontend::parse_program(&t.source).expect("parses");
            taj_core::frameworks::synthesize_entrypoints(&mut program);
            taj_core::frameworks::apply_ejb_descriptor(&mut program, &t.descriptor);
            program
        };
        let hits = run_program(&prepared_src, InterpConfig::default());

        for config in [TajConfig::hybrid_unbounded(), TajConfig::ci_thin()] {
            let report =
                analyze_source(&t.source, Some(&t.descriptor), RuleSet::default_rules(), &config)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", t.name, config.name));
            for hit in &hits {
                let covered = report.findings.iter().any(|f| {
                    f.flow.sink_owner_class == hit.caller_class
                        && f.flow.sink_method == hit.sink_method
                });
                assert!(
                    covered,
                    "{}: dynamic flow {hit:?} missed by {} (findings: {:#?})",
                    t.name, config.name, report.findings
                );
            }
        }
    }
}

#[test]
fn dynamic_oracle_sees_most_vulnerable_patterns() {
    // Sanity on the oracle itself: across the suite, the interpreter
    // observes a healthy fraction of the seeded vulnerable flows (some
    // patterns — e.g. conservative-FP ones — are benign by design).
    let mut observed = 0usize;
    let mut vulnerable = 0usize;
    for t in micro_suite() {
        let mut program = jir::frontend::parse_program(&t.source).expect("parses");
        taj_core::frameworks::synthesize_entrypoints(&mut program);
        taj_core::frameworks::apply_ejb_descriptor(&mut program, &t.descriptor);
        let hits = run_program(&program, InterpConfig::default());
        vulnerable += t.truth.vulnerable.len();
        for (class, _) in &t.truth.vulnerable {
            if hits.iter().any(|h| h.caller_class == *class) {
                observed += 1;
            }
        }
        let _ =
            prepare(&t.source, Some(&t.descriptor), RuleSet::default_rules()).expect("prepares");
    }
    assert!(
        observed * 2 >= vulnerable,
        "oracle should witness at least half the seeded flows: {observed}/{vulnerable}"
    );
}
