//! End-to-end cache semantics of the analysis daemon: repeat requests are
//! byte-identical and phase 1 runs exactly once per (source, rules,
//! call-graph settings) — the two-phase split of the paper (§1, §3)
//! turned into a serving-layer guarantee.

use serde::Value;
use taj::service::{serve, AnalyzeOpts, Client, ServeOptions};

const XSS_SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            PrintWriter w = resp.getWriter();
            w.println(name);
        }
    }
"#;

const SAFE_SERVLET: &str = r#"
    class Quiet extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            PrintWriter w = resp.getWriter();
            w.println("static");
        }
    }
"#;

fn start(options: ServeOptions) -> (taj::service::ServerHandle, Client) {
    let handle = serve(options).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client)
}

fn default_options() -> ServeOptions {
    ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() }
}

fn stat(stats: &Value, key: &str) -> u64 {
    stats[key].as_u64().unwrap_or_else(|| panic!("stats missing `{key}`: {stats:?}"))
}

fn shutdown_and_join(mut client: Client, handle: taj::service::ServerHandle) {
    client.shutdown().expect("shutdown acknowledged");
    handle.join();
}

#[test]
fn repeat_request_is_byte_identical_with_one_phase1_run() {
    let (handle, mut client) = start(default_options());
    // Same id and trace id both times so the *entire* response line must
    // match (without a client-chosen trace_id the server mints a fresh
    // one per request, which lives in the envelope — not the cached
    // result bytes).
    let req = format!(
        "{{\"id\":1,\"cmd\":\"analyze\",\"source\":{},\"config\":\"hybrid\",\"trace_id\":\"t-1\"}}",
        serde_json::to_string(&Value::String(XSS_SERVLET.to_string())).unwrap()
    );
    let first = client.request_raw(&req).expect("first analyze");
    let second = client.request_raw(&req).expect("second analyze");
    assert_eq!(first, second, "cache hit must serve byte-identical bytes");
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(first.contains("\"trace_id\":\"t-1\""), "client trace id echoed: {first}");

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 1, "second request must not re-run phase 1");
    assert_eq!(stat(&stats, "prepare_runs"), 1);
    assert_eq!(stat(&stats, "phase2_runs"), 1, "report cache also skips phase 2");
    assert!(stat(&stats["cache"], "hits") >= 1, "{stats:?}");
    shutdown_and_join(client, handle);
}

#[test]
fn generated_trace_ids_are_unique_and_result_bytes_stay_cached() {
    let (handle, mut client) = start(default_options());
    let req = format!(
        "{{\"id\":1,\"cmd\":\"analyze\",\"source\":{},\"config\":\"hybrid\"}}",
        serde_json::to_string(&Value::String(XSS_SERVLET.to_string())).unwrap()
    );
    let first = client.request_raw(&req).expect("first analyze");
    let second = client.request_raw(&req).expect("second analyze");
    let fv: Value = serde_json::from_str(&first).unwrap();
    let sv: Value = serde_json::from_str(&second).unwrap();
    let ft = fv["trace_id"].as_str().expect("first trace id");
    let st = sv["trace_id"].as_str().expect("second trace id");
    assert_ne!(ft, st, "minted trace ids are per-request");
    assert_eq!(
        serde_json::to_string(&fv["result"]).unwrap(),
        serde_json::to_string(&sv["result"]).unwrap(),
        "trace ids live in the envelope; result bytes still come from cache"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 1, "cache hit despite differing trace ids");
    shutdown_and_join(client, handle);
}

#[test]
fn mixed_configs_share_one_phase1() {
    let (handle, mut client) = start(default_options());
    // hybrid, cs, ci all use unbounded, non-prioritized call-graph
    // settings — the same phase-1 validity domain — so three requests
    // must trigger exactly one phase-1 run.
    for config in ["hybrid", "cs", "ci"] {
        let opts = AnalyzeOpts { config: Some(config.to_string()), ..AnalyzeOpts::default() };
        let report = client.analyze(XSS_SERVLET, &opts).expect("analyze succeeds");
        assert_eq!(
            report["findings"].as_array().map(Vec::len),
            Some(1),
            "{config} finds the XSS: {report:?}"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 1, "N=3 mixed-config requests, one phase 1");
    assert_eq!(stat(&stats, "phase2_runs"), 3, "each config still runs its own phase 2");
    assert_eq!(stat(&stats, "prepare_runs"), 1);

    // A prioritized config has different call-graph settings: its phase-1
    // result lives under a different key (collision-free keying).
    let opts = AnalyzeOpts { config: Some("optimized".to_string()), ..AnalyzeOpts::default() };
    client.analyze(XSS_SERVLET, &opts).expect("optimized analyze");
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 2, "different cg settings → second phase-1 run");
    shutdown_and_join(client, handle);
}

#[test]
fn different_sources_and_formats_get_distinct_entries() {
    let (handle, mut client) = start(default_options());
    let opts = AnalyzeOpts::default();
    let a = client.analyze(XSS_SERVLET, &opts).expect("first source");
    let b = client.analyze(SAFE_SERVLET, &opts).expect("second source");
    assert_ne!(
        a["findings"].as_array().map(Vec::len),
        b["findings"].as_array().map(Vec::len),
        "distinct sources must not share cached results"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 2);
    assert_eq!(stat(&stats, "prepare_runs"), 2);

    // Same source, SARIF rendering: report-cache miss (different format
    // key) but phase-1 and prepared hits.
    let sarif_opts = AnalyzeOpts { sarif: true, ..AnalyzeOpts::default() };
    let sarif = client.analyze(XSS_SERVLET, &sarif_opts).expect("sarif analyze");
    assert_eq!(sarif["version"].as_str(), Some("2.1.0"), "{sarif:?}");
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 2, "format change must not re-run phase 1");
    shutdown_and_join(client, handle);
}

#[test]
fn eviction_under_tiny_budget_is_counted_and_recovered_from() {
    // A budget far below one artifact forces evictions on every insert;
    // correctness must not depend on the cache retaining anything.
    let (handle, mut client) =
        start(ServeOptions { cache_bytes: 64, workers: 1, ..ServeOptions::tcp_ephemeral() });
    let opts = AnalyzeOpts::default();
    let first = client.analyze(XSS_SERVLET, &opts).expect("first");
    let stats = client.stats().expect("stats");
    // Every artifact here dwarfs the 64-byte budget, so each insert
    // displaces everything else: only the newest entry (the report)
    // survives each analyze.
    assert!(stat(&stats["cache"], "evictions") >= 2, "tiny budget must evict: {stats:?}");
    assert_eq!(stat(&stats["cache"], "entries"), 1, "{stats:?}");

    // The surviving report still serves a repeat request...
    let again = client.analyze(XSS_SERVLET, &opts).expect("repeat");
    assert_eq!(serde_json::to_string(&first).unwrap(), serde_json::to_string(&again).unwrap());
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 1, "report hit: no rebuild yet");

    // ...but a different config displaces it and — with prepared and
    // phase-1 artifacts long evicted — must rebuild everything.
    let cs = AnalyzeOpts { config: Some("cs".to_string()), ..AnalyzeOpts::default() };
    client.analyze(XSS_SERVLET, &cs).expect("cs analyze");
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 2, "evicted phase 1 is rebuilt: {stats:?}");
    assert_eq!(stat(&stats, "prepare_runs"), 2);

    // And the original request, its report now displaced, rebuilds to the
    // same findings (only `stats` timing fields may differ across runs).
    let rebuilt = client.analyze(XSS_SERVLET, &opts).expect("rebuilt");
    assert_eq!(
        serde_json::to_string(&first["findings"]).unwrap(),
        serde_json::to_string(&rebuilt["findings"]).unwrap(),
        "evicted artifacts rebuild deterministically"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "phase1_runs"), 3, "{stats:?}");
    shutdown_and_join(client, handle);
}

#[test]
fn custom_rules_are_part_of_the_cache_key() {
    let (handle, mut client) = start(default_options());
    let report = client.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("default rules");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));

    // An empty rule file (no rules at all) must not be served the default
    // rule set's cached report.
    let empty_rules = AnalyzeOpts { rules: Some(String::new()), ..AnalyzeOpts::default() };
    let quiet = client.analyze(XSS_SERVLET, &empty_rules).expect("empty rules analyze");
    assert_eq!(
        quiet["findings"].as_array().map(Vec::len),
        Some(0),
        "empty rule set finds nothing: {quiet:?}"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "prepare_runs"), 2, "different rules → different prepared program");
    shutdown_and_join(client, handle);
}

#[test]
fn stats_split_cache_counters_per_tier() {
    let (handle, mut client) = start(default_options());
    let opts = AnalyzeOpts::default();
    client.analyze(XSS_SERVLET, &opts).expect("first");
    client.analyze(XSS_SERVLET, &opts).expect("repeat");
    let stats = client.stats().expect("stats");
    let tiers = &stats["cache_tiers"];
    // First request misses and populates all three tiers; the repeat is
    // answered by the report tier alone, so prepared/phase1 see no
    // second lookup at all.
    assert_eq!(stat(&tiers["report"], "hits"), 1, "{stats:?}");
    assert_eq!(stat(&tiers["report"], "misses"), 1, "{stats:?}");
    assert_eq!(stat(&tiers["prepared"], "misses"), 1);
    assert_eq!(stat(&tiers["prepared"], "hits"), 0);
    assert_eq!(stat(&tiers["phase1"], "misses"), 1);
    assert_eq!(stat(&tiers["phase1"], "hits"), 0);
    for tier in ["prepared", "phase1", "report"] {
        assert_eq!(stat(&tiers[tier], "entries"), 1, "{tier} holds its artifact");
        assert!(stat(&tiers[tier], "bytes_used") > 0, "{tier} accounts bytes");
    }
    // The aggregate `cache` object remains the sum of the tiers.
    for key in ["hits", "misses", "evictions"] {
        let sum: u64 = ["prepared", "phase1", "report"].iter().map(|t| stat(&tiers[*t], key)).sum();
        assert_eq!(stat(&stats["cache"], key), sum, "aggregate `{key}` equals tier sum");
    }
    shutdown_and_join(client, handle);
}

#[test]
fn metrics_exposition_is_well_formed_prometheus_text() {
    let (handle, mut client) = start(default_options());
    client.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("analyze");
    let text = client.metrics().expect("metrics");
    assert!(text.contains("# TYPE taj_requests_total counter"), "{text}");
    assert!(text.contains("# TYPE taj_cache_hits_total counter"), "{text}");
    assert!(text.contains("taj_cache_hits_total{tier=\"phase1\"} 0"), "{text}");
    assert!(text.contains("taj_cache_misses_total{tier=\"report\"} 1"), "{text}");
    assert!(text.contains("taj_analyze_requests_total 1"), "{text}");
    assert!(text.contains("# TYPE taj_request_run_seconds histogram"), "{text}");
    assert!(text.contains("taj_request_run_seconds_count 1"), "{text}");
    assert!(text.contains("taj_request_queue_wait_seconds_bucket{le=\"+Inf\"} 1"), "{text}");
    // Every sample line is `name[{labels}] value` with a parseable value.
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(value.parse::<f64>().is_ok(), "unparseable value in `{line}`");
    }
    shutdown_and_join(client, handle);
}

#[test]
fn configs_command_lists_all_seven() {
    let (handle, mut client) = start(default_options());
    let configs = client.configs().expect("configs");
    let items = configs.as_array().expect("array of configs");
    assert_eq!(items.len(), 7, "{configs:?}");
    let names: Vec<&str> = items.iter().filter_map(|c| c["name"].as_str()).collect();
    assert!(
        names.contains(&"Hybrid-Unbounded")
            && names.contains(&"CS-Escape")
            && names.contains(&"IFDS"),
        "{names:?}"
    );
    shutdown_and_join(client, handle);
}

/// The registration-agreement pin: every place configurations are
/// enumerated must list the same set, so an eighth configuration cannot
/// be half-registered. The four legs are (1) `TajConfig::all()` (the
/// canonical list — also what the `taj configs` CLI prints, which
/// iterates it directly), (2) `TajConfig::by_name` (the resolution path
/// of the CLI `--config` flag and the daemon protocol), (3) the daemon's
/// `configs` response over the wire, and (4) the `Phase1::matches`
/// validity domain (every registered config's phase-1 result must accept
/// itself, or the artifact cache would silently miss for it).
#[test]
fn config_registration_agrees_across_front_doors() {
    use taj::core::{prepare, run_phase1, RuleSet, TajConfig};

    let all_names: Vec<&str> = TajConfig::all().iter().map(|c| c.name).collect();

    // Leg 2: by_name round-trips every canonical name.
    for c in TajConfig::all() {
        let resolved = TajConfig::by_name(c.name)
            .unwrap_or_else(|| panic!("{} not resolvable by name", c.name));
        assert_eq!(resolved.name, c.name);
    }

    // Leg 3: the daemon lists exactly the canonical names, in order.
    let (handle, mut client) = start(default_options());
    let configs = client.configs().expect("configs");
    let daemon_names: Vec<&str> = configs
        .as_array()
        .expect("array of configs")
        .iter()
        .filter_map(|c| c["name"].as_str())
        .collect();
    assert_eq!(daemon_names, all_names, "daemon configs drift from TajConfig::all()");
    shutdown_and_join(client, handle);

    // Leg 4: each config's own phase-1 result passes its validity check.
    let prepared = prepare(XSS_SERVLET, None, RuleSet::default_rules()).expect("prepares");
    for config in TajConfig::all() {
        let phase1 = run_phase1(&prepared, &config);
        assert!(phase1.matches(&config), "{}: phase-1 validity domain rejects it", config.name);
    }
}
