//! The degradation ladder end to end: budget exhaustion falls CS →
//! Hybrid-Unbounded → Hybrid-Optimized with provenance, deadlines and
//! cancellation deliver partial results, and budget-driven degraded runs
//! are byte-deterministic. Failpoint-driven edges (exact interrupt
//! sites, ladder bottom) run under `--features taj_failpoints`.

use taj::core::{
    analyze_source, analyze_source_opts, RuleSet, RunOptions, Supervisor, TajConfig, TajError,
    TajReport,
};

const SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            resp.getWriter().println(name);
        }
    }
"#;

fn run(config: &TajConfig, opts: &RunOptions) -> Result<TajReport, TajError> {
    analyze_source_opts(SERVLET, None, RuleSet::default_rules(), config, opts)
}

#[test]
fn starved_cs_fails_hard_without_degrade() {
    // The paper's behavior: exhausting the path-edge budget is fatal.
    match analyze_source(SERVLET, None, RuleSet::default_rules(), &TajConfig::cs_tiny()) {
        Err(TajError::OutOfMemory { path_edges }) => assert!(path_edges > 4),
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}

#[test]
fn starved_cs_with_degrade_falls_to_hybrid_with_provenance() {
    let opts = RunOptions { degrade: true, ..RunOptions::default() };
    let report = run(&TajConfig::cs_tiny(), &opts).expect("ladder rescues the run");
    assert_eq!(report.config, "Hybrid-Unbounded");
    assert_eq!(report.issue_count(), 1, "the flow is still found at the cheaper rung");
    assert!(report.degradation.degraded);
    assert_eq!(report.degradation.steps.len(), 1, "{:?}", report.degradation);
    let step = &report.degradation.steps[0];
    assert_eq!((step.stage.as_str(), step.from.as_str()), ("slice", "CS-Tiny"));
    assert_eq!(step.to, "Hybrid-Unbounded");
    assert!(step.reason.contains("path-edge budget exhausted"), "{}", step.reason);
    assert!(!step.caveat.is_empty(), "every fall carries a soundness caveat");
}

#[test]
fn expired_deadline_delivers_partial_with_provenance() {
    let supervisor = Supervisor::new().with_deadline(std::time::Duration::from_millis(0));
    std::thread::sleep(std::time::Duration::from_millis(2));
    let opts = RunOptions { supervisor, ..RunOptions::default() };
    let report = run(&TajConfig::hybrid_unbounded(), &opts).expect("partial, not an error");
    assert!(report.degradation.degraded);
    let step = &report.degradation.steps[0];
    assert_eq!((step.stage.as_str(), step.reason.as_str()), ("phase1", "deadline"));
    assert_eq!(step.to, "truncated-callgraph");
}

#[test]
fn step_budget_in_phase1_truncates_and_annotates() {
    let opts =
        RunOptions { supervisor: Supervisor::new().with_max_steps(5), ..RunOptions::default() };
    let report = run(&TajConfig::hybrid_unbounded(), &opts).expect("partial, not an error");
    assert!(report.degradation.degraded);
    let step = &report.degradation.steps[0];
    assert_eq!((step.stage.as_str(), step.reason.as_str()), ("phase1", "step_budget"));
}

#[test]
fn budget_degraded_runs_are_byte_deterministic() {
    // Budget-class degradation depends only on the input, never on the
    // wall clock, so two runs must serialize identically (modulo the
    // timing counters, which are zeroed like the report cache ignores
    // them).
    let opts = RunOptions { degrade: true, ..RunOptions::default() };
    let serialize = || {
        let mut report = run(&TajConfig::cs_tiny(), &opts).expect("degraded run succeeds");
        report.stats.pointer_ms = 0;
        report.stats.slice_ms = 0;
        report.stats.total_ms = 0;
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(serialize(), serialize(), "degraded runs must be reproducible");
}

#[cfg(feature = "taj_failpoints")]
mod failpoint_edges {
    use super::*;
    use taj::supervise::failpoints::{self, FailAction, FailScenario};

    #[test]
    fn injected_budget_in_cs_descends_one_rung() {
        let _scenario = FailScenario::setup();
        // Trip tabulation's step budget at its first check — no magic
        // path-edge numbers needed.
        failpoints::configure("cs.tabulate", FailAction::StepBudget);
        let opts = RunOptions { degrade: true, ..RunOptions::default() };
        let report = run(&TajConfig::cs_thin(), &opts).expect("ladder rescues the run");
        assert_eq!(report.config, "Hybrid-Unbounded");
        assert_eq!(report.issue_count(), 1);
        let step = &report.degradation.steps[0];
        assert_eq!((step.from.as_str(), step.to.as_str()), ("CS", "Hybrid-Unbounded"));
        assert_eq!(step.reason, "step_budget");
    }

    #[test]
    fn ladder_bottom_delivers_partial_results() {
        let _scenario = FailScenario::setup();
        // Every hybrid rung trips immediately: Hybrid-Unbounded falls to
        // Hybrid-Optimized, which trips too — the bottom of the ladder
        // delivers a partial report instead of looping or failing.
        failpoints::configure("hybrid.slice", FailAction::StepBudget);
        let opts = RunOptions { degrade: true, ..RunOptions::default() };
        let report = run(&TajConfig::hybrid_unbounded(), &opts).expect("partial at the bottom");
        let steps = &report.degradation.steps;
        assert_eq!(steps.len(), 2, "{steps:?}");
        assert_eq!(
            (steps[0].from.as_str(), steps[0].to.as_str()),
            ("Hybrid-Unbounded", "Hybrid-Optimized")
        );
        assert_eq!((steps[1].from.as_str(), steps[1].to.as_str()), ("Hybrid-Optimized", "partial"));
    }

    #[test]
    fn cancellation_never_descends_the_ladder() {
        let _scenario = FailScenario::setup();
        failpoints::configure("hybrid.slice", FailAction::Cancel);
        // Even with degrade on: cancellation is a client hanging up, not
        // resource exhaustion — retrying a cheaper rung would be wasted
        // work nobody is waiting for.
        let opts = RunOptions { degrade: true, ..RunOptions::default() };
        let report = run(&TajConfig::hybrid_unbounded(), &opts).expect("partial, not an error");
        assert_eq!(report.config, "Hybrid-Unbounded", "no rung change");
        assert_eq!(report.degradation.steps.len(), 1, "{:?}", report.degradation);
        assert_eq!(report.degradation.steps[0].reason, "cancelled");
        assert_eq!(report.degradation.steps[0].to, "partial");
    }

    #[test]
    fn injected_deadline_mid_pointer_analysis_truncates_phase1() {
        let _scenario = FailScenario::setup();
        failpoints::configure_after("pointer.run.node", FailAction::Deadline, 3);
        let opts = RunOptions::default();
        let report = run(&TajConfig::hybrid_unbounded(), &opts).expect("partial, not an error");
        let step = &report.degradation.steps[0];
        assert_eq!((step.stage.as_str(), step.reason.as_str()), ("phase1", "deadline"));
    }
}
