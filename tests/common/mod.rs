//! Helpers shared by the determinism and differential integration
//! suites: the reproducible corpus (securibench + micro + webgen), the
//! verdict/triage machinery of the three-way differential harness, and
//! the normalized-report byte-identity helpers of the thread-invariance
//! harness. Each test binary compiles its own copy and uses a subset,
//! hence the file-wide `dead_code` allow.

#![allow(dead_code)]

use std::collections::BTreeSet;

use taj::core::{
    analyze_prepared, analyze_prepared_opts, analyze_with_phase1_opts, prepare,
    run_phase1_incremental, run_phase1_supervised, to_sarif, to_text, DeploymentDescriptor,
    GroundTruth, Phase1, PreparedProgram, Recorder, RuleSet, RunOptions, SummaryStore, Supervisor,
    TajConfig, TajError, TajReport,
};
use taj::webgen::{
    generate, micro_suite, motivating, securibench_cases, standard_mix, BenchmarkSpec, Pattern,
};

/// Thread counts every determinism scenario is differenced across. `1`
/// is the inline sequential reference path; the rest fan out over
/// scoped workers.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A web application big enough that every rule's seed list splits into
/// multiple parallel units (the chunk size is 4): the standard webgen
/// pattern mix, twice over, plus filler classes. The `name` only labels
/// the generated source's banner comment — analysis results are
/// identical across names.
pub fn big_app(name: &str) -> PreparedProgram {
    let spec = BenchmarkSpec {
        name: name.into(),
        pattern_counts: standard_mix(2, 1, true),
        filler_classes: 3,
        methods_per_class: 4,
        seed: 0xD17E,
    };
    let bench = generate(&spec);
    prepare(&bench.source, Some(&bench.descriptor), RuleSet::default_rules())
        .expect("generated benchmark prepares")
}

/// A report with the timing counters zeroed — wall-clock is the one
/// legitimately run-dependent part of the output, and every rendering
/// (JSON, text, SARIF) is compared over this normalized form, exactly as
/// the daemon's report cache ignores the timing fields.
pub fn normalized(report: &TajReport) -> TajReport {
    let mut report = report.clone();
    report.stats.pointer_ms = 0;
    report.stats.slice_ms = 0;
    report.stats.total_ms = 0;
    report
}

/// Serializes a normalized report — the byte-stream under comparison.
pub fn normalized_json(report: &TajReport) -> String {
    serde_json::to_string_pretty(&normalized(report)).expect("report serializes")
}

/// Runs `prepared` under `config`/`opts` at each thread count and
/// asserts all three renderings are byte-identical to the single-thread
/// reference run.
pub fn assert_thread_invariant(
    prepared: &PreparedProgram,
    config: &TajConfig,
    make_opts: impl Fn(usize) -> RunOptions,
    label: &str,
) {
    let run = |threads: usize| -> Result<TajReport, TajError> {
        analyze_prepared_opts(prepared, config, &make_opts(threads))
    };
    let reference = run(1);
    for threads in &THREADS[1..] {
        let got = run(*threads);
        match (&reference, &got) {
            (Ok(want), Ok(got)) => {
                assert_reports_byte_identical(
                    want,
                    got,
                    &format!("[{label}] at {threads} threads"),
                );
            }
            (
                Err(TajError::OutOfMemory { path_edges: want }),
                Err(TajError::OutOfMemory { path_edges: got }),
            ) => {
                assert_eq!(want, got, "[{label}] OutOfMemory count diverges at {threads} threads");
            }
            (want, got) => {
                panic!("[{label}] outcome diverges at {threads} threads: {want:?} vs {got:?}")
            }
        }
    }
}

/// Asserts two reports render byte-identically (JSON, text, SARIF) after
/// normalization. The shared core of the thread-invariance and
/// full-vs-incremental differential harnesses.
pub fn assert_reports_byte_identical(want: &TajReport, got: &TajReport, label: &str) {
    let (want, got) = (normalized(want), normalized(got));
    assert_eq!(normalized_json(&want), normalized_json(&got), "{label}: JSON diverges");
    assert_eq!(to_text(&want), to_text(&got), "{label}: text report diverges");
    assert_eq!(
        to_sarif(&want).expect("sarif renders"),
        to_sarif(&got).expect("sarif renders"),
        "{label}: SARIF diverges"
    );
}

/// Base-program artifacts computed once per (program, config) and
/// shared by every edit variant — exactly what the daemon's summary and
/// phase-1 cache tiers hold between `analyze` and `analyze_delta`
/// requests.
pub struct BaseArtifacts {
    pub prepared: PreparedProgram,
    pub store: SummaryStore,
    pub phase1: Phase1,
}

pub fn base_artifacts(
    source: &str,
    descriptor: Option<&DeploymentDescriptor>,
    config: &TajConfig,
    label: &str,
) -> BaseArtifacts {
    let prepared = prepare(source, descriptor, RuleSet::default_rules())
        .unwrap_or_else(|e| panic!("{label}: base source prepares: {e}"));
    let store = SummaryStore::build(&prepared.program);
    let phase1 = run_phase1_supervised(&prepared, config, &Supervisor::new());
    BaseArtifacts { prepared, store, phase1 }
}

/// A from-scratch analysis of the edited source: the reference side of
/// the full-vs-incremental differential.
pub fn full_report(
    edited: &str,
    descriptor: Option<&DeploymentDescriptor>,
    config: &TajConfig,
    opts: &RunOptions,
    label: &str,
) -> TajReport {
    let prepared = prepare(edited, descriptor, RuleSet::default_rules())
        .unwrap_or_else(|e| panic!("{label}: edited source prepares: {e}"));
    let phase1 = run_phase1_supervised(&prepared, config, &Supervisor::new());
    analyze_with_phase1_opts(&prepared, &phase1, config, opts)
        .unwrap_or_else(|e| panic!("{label}: full analysis runs: {e}"))
}

/// What the incremental side did, alongside its report — the same
/// provenance the daemon returns in the `delta` envelope field.
pub struct IncrementalOutcome {
    pub report: TajReport,
    pub reused_base_phase1: bool,
    pub methods_resolved: usize,
    pub methods_total: usize,
}

/// The library-level incremental pipeline, mirroring the daemon's
/// `analyze_delta`: diff the edited program's summaries against the
/// base's, then either reuse the base phase-1 artifact outright (empty
/// edit region and matching program fingerprint — the edit touched no
/// method) or re-solve with the dirty-region plan.
pub fn incremental_report(
    base: &BaseArtifacts,
    edited: &str,
    descriptor: Option<&DeploymentDescriptor>,
    config: &TajConfig,
    opts: &RunOptions,
    label: &str,
) -> IncrementalOutcome {
    let prepared = prepare(edited, descriptor, RuleSet::default_rules())
        .unwrap_or_else(|e| panic!("{label}: edited source prepares: {e}"));
    let (edited_store, plan) = SummaryStore::build_delta(&prepared.program, &base.store);
    if plan.region_empty() && edited_store.program_fingerprint == base.store.program_fingerprint {
        // Equal fingerprints mean isomorphic programs with identical
        // interned IDs: slicing the *base* prepared program under the
        // *base* phase-1 artifact is exact, as in the daemon.
        let report = analyze_with_phase1_opts(&base.prepared, &base.phase1, config, opts)
            .unwrap_or_else(|e| panic!("{label}: reused-base slice runs: {e}"));
        return IncrementalOutcome {
            report,
            reused_base_phase1: true,
            methods_resolved: 0,
            methods_total: plan.methods_total,
        };
    }
    let phase1 = run_phase1_incremental(
        &prepared,
        config,
        &Supervisor::new(),
        &Recorder::disabled(),
        &edited_store,
        &plan,
    );
    let report = analyze_with_phase1_opts(&prepared, &phase1, config, opts)
        .unwrap_or_else(|e| panic!("{label}: incremental slice runs: {e}"));
    IncrementalOutcome {
        report,
        reused_base_phase1: false,
        methods_resolved: plan.methods_resolved(),
        methods_total: plan.methods_total,
    }
}

/// The three backends under differencing. Hybrid is the paper's novel
/// algorithm, CS the precise baseline, IFDS the independent access-path
/// formulation added post-paper.
pub fn backends() -> [(&'static str, TajConfig); 3] {
    [
        ("Hybrid", TajConfig::hybrid_unbounded()),
        ("CS", TajConfig::cs_thin()),
        ("IFDS", TajConfig::ifds()),
    ]
}

/// One differential case: a named program plus (optionally) ground truth.
pub struct Case {
    pub suite: &'static str,
    pub name: String,
    pub source: String,
    pub descriptor: Option<DeploymentDescriptor>,
    pub truth: Option<GroundTruth>,
}

/// The full differential corpus: every securibench case, every
/// micro-suite pattern, the Figure 1 motivating example, and two
/// generated webgen applications (fixed seeds — the corpus must be
/// reproducible for the triage list to stay meaningful).
pub fn corpus() -> Vec<Case> {
    let mut cases = Vec::new();
    for c in securibench_cases() {
        cases.push(Case {
            suite: "securibench",
            name: c.name.to_string(),
            source: c.source.clone(),
            descriptor: None,
            truth: Some(c.truth.clone()),
        });
    }
    for t in micro_suite() {
        cases.push(Case {
            suite: "micro",
            name: t.name.clone(),
            source: t.source.clone(),
            descriptor: Some(t.descriptor.clone()),
            truth: Some(t.truth.clone()),
        });
    }
    let m = motivating();
    cases.push(Case {
        suite: "micro",
        name: m.name.clone(),
        source: m.source.clone(),
        descriptor: Some(m.descriptor.clone()),
        truth: Some(m.truth.clone()),
    });
    for (name, seed) in [("webgen-mix-a", 0xD1FFu64), ("webgen-mix-b", 0xBEEFu64)] {
        let spec = BenchmarkSpec {
            name: name.into(),
            pattern_counts: vec![
                (Pattern::XssReflected, 2),
                (Pattern::XssHeap, 2),
                (Pattern::NestedCarrier, 1),
                (Pattern::SessionAttr, 1),
                (Pattern::BuilderFlow, 1),
                (Pattern::ThreadShared, 1),
                (Pattern::CollectionContext, 1),
                (Pattern::XssSanitized, 1),
                (Pattern::SqliConcat, 1),
            ],
            filler_classes: 2,
            methods_per_class: 4,
            seed,
        };
        let bench = generate(&spec);
        cases.push(Case {
            suite: "webgen",
            name: name.to_string(),
            source: bench.source,
            descriptor: Some(bench.descriptor),
            truth: Some(bench.truth),
        });
    }
    cases
}

/// A backend's report reduced to the comparable key set. The key is the
/// same `(sink class, issue)` pair the scoring layer uses — witness
/// paths and flow counts legitimately differ between algorithms; the
/// *verdict* per sink must not (except for triaged deltas).
pub fn verdicts(case: &Case, config: &TajConfig) -> BTreeSet<(String, String)> {
    let prepared = prepare(&case.source, case.descriptor.as_ref(), RuleSet::default_rules())
        .unwrap_or_else(|e| panic!("{}/{}: {e}", case.suite, case.name));
    let report = analyze_prepared(&prepared, config)
        .unwrap_or_else(|e| panic!("{}/{} under {}: {e}", case.suite, case.name, config.name));
    report
        .findings
        .iter()
        .map(|f| (f.flow.sink_owner_class.clone(), format!("{:?}", f.flow.issue)))
        .collect()
}

/// Triage: returns the documented reason a key may be reported by
/// `present` but not by `missing`, or `None` for an untriaged (= fatal)
/// disagreement. Every arm here has a matching row in EXPERIMENTS.md.
pub fn known_delta(
    case: &Case,
    present: &str,
    missing: &str,
    key: &(String, String),
) -> Option<&'static str> {
    if missing == "CS" {
        if let Some(truth) = &case.truth {
            // Delta 1 — CS loses cross-thread flows (§7.2): taint handed
            // from one thread to another through a shared object. The
            // ground truth marks exactly these keys; Hybrid and IFDS
            // both find them.
            if truth
                .cross_thread
                .iter()
                .any(|(class, issue)| *class == key.0 && format!("{issue:?}") == key.1)
            {
                return Some("CS drops heap facts across Thread.start edges (§7.2)");
            }
            // Delta 2 — flow-insensitive heap false alarms CS avoids:
            // Hybrid and IFDS both match store→load pairs through the
            // flow-insensitive points-to solution, so a benign alias of
            // a tainted store (FactoryAlias and friends) is reported;
            // CS's partially flow-sensitive heap propagation stays
            // clean. Only *benign* keys qualify — a vulnerable key
            // missing from CS that isn't cross-thread stays fatal.
            if truth
                .benign
                .iter()
                .any(|(class, issue)| *class == key.0 && format!("{issue:?}") == key.1)
            {
                return Some(
                    "flow-insensitive store→load heap matching (Hybrid and IFDS) \
                     reports a benign alias that CS's flow-sensitive heap avoids",
                );
            }
        }
    }
    let _ = present;
    None
}
