//! The paper's Figure 1 motivating program, end to end: reflection
//! (`Class.forName` / `getMethods` / name-narrowed `invoke`), a container
//! with constant keys, nested taint through an inner wrapper class, and
//! exactly one of three `println` calls vulnerable.

use taj::{analyze_source, IssueType, RuleSet, TajConfig};

/// Figure 1, transliterated to jweb. Line-by-line correspondence:
/// - `t1`/`t2` from `getParameter` (lines 13–14);
/// - reflective acquisition of `Motivating.id` via `getMethods` + name
///   test (lines 18–26);
/// - map `m` holding a tainted, a sanitized, and an untainted value
///   (lines 27–30);
/// - three reflective invocations of `id` (lines 31–36);
/// - three `Internal` wrappers (lines 37–39);
/// - `println(i1)` BAD, `println(i2)`/`println(i3)` OK (lines 40–42).
const MOTIVATING: &str = r#"
class Internal {
    field String s;
    ctor (String s) { this.s = s; }
    method String toString() { return this.s; }
}

class Motivating extends HttpServlet {
    method void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String t1 = req.getParameter("fName");
        String t2 = req.getParameter("lName");
        PrintWriter writer = resp.getWriter();
        Method idMethod = null;
        Class k = Class.forName("Motivating");
        Method[] methods = k.getMethods();
        for (int i = 0; i < methods.length; i = i + 1) {
            Method cand = methods[i];
            if (cand.getName().equals("id")) { idMethod = cand; }
        }
        HashMap m = new HashMap();
        m.put("fName", t1);
        m.put("lName", t2);
        m.put("date", new String(Date.getDate()));
        String s1 = (String) idMethod.invoke(this, new Object[] { m.get("fName") });
        String s2 = (String) idMethod.invoke(this, new Object[] { URLEncoder.encode((String) m.get("lName")) });
        String s3 = (String) idMethod.invoke(this, new Object[] { m.get("date") });
        Internal i1 = new Internal(s1);
        Internal i2 = new Internal(s2);
        Internal i3 = new Internal(s3);
        writer.println(i1); // BAD
        writer.println(i2); // OK
        writer.println(i3); // OK
    }

    method String id(String string) { return string; }
}
"#;

#[test]
fn figure1_exactly_one_vulnerable_println() {
    let report =
        analyze_source(MOTIVATING, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .expect("analysis runs");
    let xss: Vec<_> = report.findings.iter().filter(|f| f.flow.issue == IssueType::Xss).collect();
    assert_eq!(xss.len(), 1, "exactly one of the three println calls is vulnerable; got {xss:#?}");
    assert_eq!(xss[0].flow.sink_method, "println");
    assert_eq!(xss[0].flow.sink_owner_class, "Motivating");
    assert_eq!(xss[0].flow.source_method, "getParameter");
}

#[test]
fn figure1_all_hybrid_variants_agree() {
    for config in [
        TajConfig::hybrid_unbounded(),
        TajConfig::hybrid_prioritized(),
        TajConfig::hybrid_optimized(),
    ] {
        let report = analyze_source(MOTIVATING, None, RuleSet::default_rules(), &config).unwrap();
        let xss = report.findings.iter().filter(|f| f.flow.issue == IssueType::Xss).count();
        assert_eq!(xss, 1, "{} must flag exactly the BAD println", config.name);
    }
}

#[test]
fn figure1_ci_is_less_precise() {
    // CI merges the three reflective invocations and the map keys, so it
    // must report at least the true flow — and typically spurious ones.
    let report =
        analyze_source(MOTIVATING, None, RuleSet::default_rules(), &TajConfig::ci_thin()).unwrap();
    let xss = report.findings.iter().filter(|f| f.flow.issue == IssueType::Xss).count();
    assert!(xss >= 1, "CI is sound: the true flow must be reported");
}
