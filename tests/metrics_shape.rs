//! Pins the Prometheus exposition *shape* of the daemon and the router:
//! every family and every label set must be present from the very first
//! (cold) scrape and must not change as traffic arrives — scrapers and
//! dashboards must never see series appear mid-flight. Also pins the
//! build-identity gauge on both processes and the shared latency-bucket
//! layout.

use std::collections::{BTreeMap, BTreeSet};

use taj::service::{route, serve, AnalyzeOpts, Client, RouterOptions, ServeOptions, ServerHandle};

const XSS_SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            resp.getWriter().println(name);
        }
    }
"#;

const SAFE_SERVLET: &str = r#"
    class Quiet extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println("static");
        }
    }
"#;

fn start(options: ServeOptions) -> (ServerHandle, Client) {
    let handle = serve(options).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client)
}

fn tcp_addr(handle: &ServerHandle) -> String {
    match handle.addr() {
        taj::service::BoundAddr::Tcp(a) => a.to_string(),
        taj::service::BoundAddr::Unix(p) => panic!("expected TCP, got unix:{}", p.display()),
    }
}

/// `# TYPE` declarations: family name → kind.
fn families(exposition: &str) -> BTreeMap<String, String> {
    exposition
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            Some((parts.next()?.to_string(), parts.next()?.to_string()))
        })
        .collect()
}

/// Every sample's identity — `name{labels}` with the value stripped.
/// Equality of this set across scrapes is exactly "constant exposition
/// shape".
fn series(exposition: &str) -> BTreeSet<String> {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| l.rsplit_once(' ').map(|(key, _value)| key.to_string()))
        .collect()
}

/// The `le` bucket labels of a histogram family, in exposition order.
fn bucket_les(exposition: &str, family: &str) -> Vec<String> {
    let prefix = format!("{family}_bucket{{le=\"");
    exposition
        .lines()
        .filter_map(|l| l.strip_prefix(prefix.as_str()))
        .filter_map(|l| l.split('"').next())
        .map(str::to_string)
        .collect()
}

fn sample_value(exposition: &str, key: &str) -> Option<f64> {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(key).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.trim().parse().ok())
}

const DAEMON_FAMILIES: &[(&str, &str)] = &[
    ("taj_uptime_seconds", "gauge"),
    ("taj_build_info", "gauge"),
    ("taj_flight_records", "gauge"),
    ("taj_workers", "gauge"),
    ("taj_max_queue", "gauge"),
    ("taj_queue_depth", "gauge"),
    ("taj_requests_total", "counter"),
    ("taj_requests_shed_total", "counter"),
    ("taj_analyze_requests_total", "counter"),
    ("taj_batch_requests_total", "counter"),
    ("taj_errors_total", "counter"),
    ("taj_timeouts_total", "counter"),
    ("taj_worker_panics_total", "counter"),
    ("taj_workers_reclaimed_total", "counter"),
    ("taj_prepare_runs_total", "counter"),
    ("taj_phase1_runs_total", "counter"),
    ("taj_phase2_runs_total", "counter"),
    ("taj_degraded_runs_total", "counter"),
    ("taj_delta_requests_total", "counter"),
    ("taj_delta_phase1_reused_total", "counter"),
    ("taj_delta_methods_resolved_total", "counter"),
    ("taj_delta_methods_total", "counter"),
    ("taj_cache_hits_total", "counter"),
    ("taj_cache_misses_total", "counter"),
    ("taj_cache_evictions_total", "counter"),
    ("taj_cache_entries", "gauge"),
    ("taj_cache_bytes_used", "gauge"),
    ("taj_cache_bytes_budget", "gauge"),
    ("taj_store_enabled", "gauge"),
    ("taj_store_quarantined_total", "counter"),
    ("taj_store_write_errors_total", "counter"),
    ("taj_store_bytes_budget", "gauge"),
    ("taj_store_replayed_entries", "gauge"),
    ("taj_store_open_seconds", "gauge"),
    ("taj_request_queue_wait_seconds", "histogram"),
    ("taj_request_run_seconds", "histogram"),
];

const ROUTER_FAMILIES: &[(&str, &str)] = &[
    ("taj_router_uptime_seconds", "gauge"),
    ("taj_build_info", "gauge"),
    ("taj_router_flight_records", "gauge"),
    ("taj_router_shards", "gauge"),
    ("taj_router_requests_total", "counter"),
    ("taj_router_analyze_requests_total", "counter"),
    ("taj_router_batch_requests_total", "counter"),
    ("taj_router_errors_total", "counter"),
    ("taj_router_local_fallbacks_total", "counter"),
    ("taj_router_shard_healthy", "gauge"),
    ("taj_router_shard_forwarded_total", "counter"),
    ("taj_router_shard_failovers_total", "counter"),
    ("taj_router_shard_state", "gauge"),
    ("taj_router_shard_retried_total", "counter"),
    ("taj_router_shard_probes_total", "counter"),
    ("taj_router_shard_opens_total", "counter"),
    ("taj_router_request_seconds", "histogram"),
];

fn assert_families(exposition: &str, expected: &[(&str, &str)], who: &str) {
    let got = families(exposition);
    let want: BTreeMap<String, String> =
        expected.iter().map(|(n, k)| (n.to_string(), k.to_string())).collect();
    assert_eq!(got, want, "{who} family set or kinds changed");
}

fn assert_build_info(exposition: &str, who: &str) {
    let line = exposition
        .lines()
        .find(|l| l.starts_with("taj_build_info{"))
        .unwrap_or_else(|| panic!("{who} missing taj_build_info sample"));
    assert!(line.contains("version=\""), "{who}: {line}");
    assert!(line.contains("fingerprint=\""), "{who}: {line}");
    assert!(line.ends_with(" 1"), "build info value must be 1: {line}");
}

#[test]
fn daemon_exposition_shape_is_constant_from_first_scrape() {
    let (handle, mut client) = start(ServeOptions { workers: 1, ..ServeOptions::tcp_ephemeral() });

    let cold = client.metrics().expect("cold scrape");
    assert_families(&cold, DAEMON_FAMILIES, "daemon");
    assert_build_info(&cold, "daemon");

    // Every series — label sets included — exists before any request:
    // all five cache tiers, and every `delta_*` counter at literal zero
    // even though no incremental request ever ran.
    let cold_series = series(&cold);
    for tier in ["prepared", "phase1", "report", "summary", "disk"] {
        let key = format!("taj_cache_hits_total{{tier=\"{tier}\"}}");
        assert!(cold_series.contains(&key), "missing {key}");
    }
    for family in [
        "taj_delta_requests_total",
        "taj_delta_phase1_reused_total",
        "taj_delta_methods_resolved_total",
        "taj_delta_methods_total",
    ] {
        assert_eq!(sample_value(&cold, family), Some(0.0), "{family} must zero-init");
    }

    // Warm the daemon across the analyze and delta paths, then rescrape:
    // values move, the series set must not.
    let opts = AnalyzeOpts::default();
    client.analyze(XSS_SERVLET, &opts).expect("warm analyze");
    client.analyze_delta(XSS_SERVLET, SAFE_SERVLET, &opts).expect("warm analyze_delta");
    let warm = client.metrics().expect("warm scrape");
    assert_families(&warm, DAEMON_FAMILIES, "warm daemon");
    assert_eq!(cold_series, series(&warm), "daemon series set changed between scrapes");
    assert!(sample_value(&warm, "taj_delta_requests_total").unwrap_or(0.0) > 0.0);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn router_exposition_shape_is_constant_and_buckets_match_the_daemon() {
    let (shard, mut shard_client) =
        start(ServeOptions { workers: 1, ..ServeOptions::tcp_ephemeral() });
    let router =
        route(RouterOptions::tcp_ephemeral(vec![tcp_addr(&shard)])).expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    let cold = via_router.metrics().expect("cold router scrape");
    assert_families(&cold, ROUTER_FAMILIES, "router");
    assert_build_info(&cold, "router");
    let cold_series = series(&cold);

    // Per-shard families carry the shard address label; the breaker
    // state gauge is one-hot over all three states from scrape one.
    let shard_addr = tcp_addr(&shard);
    for family in ["taj_router_shard_healthy", "taj_router_shard_forwarded_total"] {
        let key = format!("{family}{{shard=\"{shard_addr}\"}}");
        assert!(cold_series.contains(&key), "missing {key}");
    }
    for state in ["closed", "open", "half_open"] {
        let key = format!("taj_router_shard_state{{shard=\"{shard_addr}\",state=\"{state}\"}}");
        assert!(cold_series.contains(&key), "missing {key}");
    }

    // The router-side latency histogram uses the daemon's exact bucket
    // layout, so per-hop latencies subtract cleanly on one dashboard.
    let daemon_text = shard_client.metrics().expect("daemon scrape");
    let daemon_buckets = bucket_les(&daemon_text, "taj_request_run_seconds");
    let router_buckets = bucket_les(&cold, "taj_router_request_seconds");
    assert!(!router_buckets.is_empty(), "router histogram must emit buckets");
    assert_eq!(router_buckets, daemon_buckets, "router/daemon bucket layouts diverged");

    // Warm through the router, rescrape: same shape, moving values.
    via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("warm routed analyze");
    let warm = via_router.metrics().expect("warm router scrape");
    assert_families(&warm, ROUTER_FAMILIES, "warm router");
    assert_eq!(cold_series, series(&warm), "router series set changed between scrapes");
    assert!(sample_value(&warm, "taj_router_request_seconds_count").unwrap_or(0.0) > 0.0);

    via_router.shutdown().expect("router drains");
    router.join();
    shard_client.shutdown().expect("shard shutdown");
    shard.join();
}
