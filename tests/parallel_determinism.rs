//! Differential determinism harness for the parallel phase-2 engine:
//! the report byte-stream (JSON, text, SARIF) must be identical at every
//! thread count — for all seven configurations, for budget-degraded runs,
//! for cancelled runs, and (under `--features taj_failpoints`) for runs
//! interrupted at injected supervisor sites.
//!
//! The thread count is an *execution* parameter, never an *analysis*
//! parameter; this file is the enforcement of that contract. The
//! normalization and comparison helpers live in `tests/common/` and are
//! shared with the trace and incremental differential harnesses.

mod common;

use common::{assert_thread_invariant, big_app};
use taj::core::{RunOptions, Supervisor, TajConfig};

#[test]
fn all_seven_configurations_are_thread_invariant() {
    let prepared = big_app("parallel-determinism");
    for config in TajConfig::all() {
        assert_thread_invariant(
            &prepared,
            &config,
            |threads| RunOptions { threads, ..RunOptions::default() },
            config.name,
        );
    }
}

#[test]
fn budget_degraded_runs_are_thread_invariant() {
    // The starved CS config exhausts its path-edge budget and falls down
    // the degradation ladder; the fall (and the report it produces at
    // the cheaper rung) must not depend on the thread count.
    let prepared = big_app("parallel-determinism");
    assert_thread_invariant(
        &prepared,
        &TajConfig::cs_tiny(),
        |threads| RunOptions { degrade: true, threads, ..RunOptions::default() },
        "CS-Tiny degraded",
    );
}

#[test]
fn starved_cs_without_degrade_fails_identically_at_every_thread_count() {
    // Without the ladder, budget exhaustion is a hard error carrying the
    // path-edge count — which must also be thread-invariant.
    let prepared = big_app("parallel-determinism");
    assert_thread_invariant(
        &prepared,
        &TajConfig::cs_tiny(),
        |threads| RunOptions { threads, ..RunOptions::default() },
        "CS-Tiny hard-fail",
    );
}

#[test]
fn pre_cancelled_runs_are_thread_invariant() {
    // A cancellation that lands before phase 2 starts must stop every
    // worker and deliver the same (empty-slice, provenance-annotated)
    // partial report at every thread count.
    let prepared = big_app("parallel-determinism");
    assert_thread_invariant(
        &prepared,
        &TajConfig::hybrid_unbounded(),
        |threads| {
            let supervisor = Supervisor::new();
            supervisor.cancel();
            RunOptions { supervisor, threads, ..RunOptions::default() }
        },
        "pre-cancelled",
    );
}

#[test]
fn expired_deadline_runs_are_thread_invariant() {
    // An already-expired deadline trips at the first supervisor check in
    // every worker; the merged partial report must not depend on which
    // worker tripped first.
    let prepared = big_app("parallel-determinism");
    assert_thread_invariant(
        &prepared,
        &TajConfig::hybrid_unbounded(),
        |threads| {
            let supervisor = Supervisor::new().with_deadline(std::time::Duration::from_millis(0));
            RunOptions { supervisor, threads, ..RunOptions::default() }
        },
        "expired-deadline",
    );
}

#[test]
fn interrupted_ifds_runs_are_thread_invariant() {
    // IFDS under a pre-tripped supervisor (cancel, expired deadline)
    // must deliver the same partial report at every thread count — the
    // acceptance bar for the seventh configuration includes its
    // degraded/cancelled paths.
    let prepared = big_app("parallel-determinism");
    assert_thread_invariant(
        &prepared,
        &TajConfig::ifds(),
        |threads| {
            let supervisor = Supervisor::new();
            supervisor.cancel();
            RunOptions { supervisor, threads, ..RunOptions::default() }
        },
        "IFDS pre-cancelled",
    );
    assert_thread_invariant(
        &prepared,
        &TajConfig::ifds(),
        |threads| {
            let supervisor = Supervisor::new().with_deadline(std::time::Duration::from_millis(0));
            RunOptions { supervisor, threads, ..RunOptions::default() }
        },
        "IFDS expired-deadline",
    );
}

/// Failpoint-injected interrupts. Only `after = 0` actions are used:
/// failpoint hit counters are global (shared across workers), so an
/// `after = N` trigger would fire on a scheduling-dependent unit — a
/// nondeterminism of the *injection site*, not of the engine under test.
/// Serialized via `FailScenario::setup`'s global lock.
#[cfg(feature = "taj_failpoints")]
mod failpoint_scenarios {
    use crate::common::{big_app, normalized, normalized_json, THREADS};
    use taj::core::{analyze_prepared_opts, to_text, RunOptions, TajConfig};
    use taj::supervise::failpoints::{self, FailAction, FailScenario};

    /// Like `assert_thread_invariant`, but re-arms the failpoint
    /// before every run (scenario state is global and runs reset it).
    fn assert_invariant_with_failpoint(
        config: &TajConfig,
        site: &str,
        action: FailAction,
        degrade: bool,
        label: &str,
    ) {
        let prepared = big_app("parallel-determinism");
        let run = |threads: usize| {
            let _scenario = FailScenario::setup();
            failpoints::configure(site, action.clone());
            analyze_prepared_opts(
                &prepared,
                config,
                &RunOptions { degrade, threads, ..RunOptions::default() },
            )
            .map(|r| (normalized_json(&r), to_text(&normalized(&r))))
        };
        let want = run(1);
        for threads in &THREADS[1..] {
            let got = run(*threads);
            match (&want, &got) {
                (Ok(w), Ok(g)) => {
                    assert_eq!(w, g, "[{label}] diverges at {threads} threads")
                }
                (w, g) => panic!("[{label}] outcome diverges at {threads}: {w:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn injected_cancel_mid_slice_is_thread_invariant() {
        assert_invariant_with_failpoint(
            &TajConfig::hybrid_unbounded(),
            "hybrid.slice",
            FailAction::Cancel,
            false,
            "failpoint hybrid.slice=Cancel",
        );
    }

    #[test]
    fn injected_step_budget_with_degradation_is_thread_invariant() {
        // Every hybrid rung trips immediately, so the ladder walks to
        // the bottom and delivers a partial report — identically at
        // every thread count.
        assert_invariant_with_failpoint(
            &TajConfig::hybrid_unbounded(),
            "hybrid.slice",
            FailAction::StepBudget,
            true,
            "failpoint hybrid.slice=StepBudget degrade",
        );
    }

    #[test]
    fn injected_deadline_in_cs_tabulation_is_thread_invariant() {
        assert_invariant_with_failpoint(
            &TajConfig::cs_thin(),
            "cs.tabulate",
            FailAction::Deadline,
            false,
            "failpoint cs.tabulate=Deadline",
        );
    }

    #[test]
    fn injected_cancel_in_ifds_tabulation_is_thread_invariant() {
        assert_invariant_with_failpoint(
            &TajConfig::ifds(),
            "ifds.tabulate",
            FailAction::Cancel,
            false,
            "failpoint ifds.tabulate=Cancel",
        );
    }

    #[test]
    fn injected_ifds_budget_degrades_thread_invariantly() {
        // IFDS trips its step budget at the first tabulation check and
        // falls to Hybrid-Unbounded; the rescued run must byte-match at
        // every thread count.
        assert_invariant_with_failpoint(
            &TajConfig::ifds(),
            "ifds.tabulate",
            FailAction::StepBudget,
            true,
            "failpoint ifds.tabulate=StepBudget degrade",
        );
    }

    #[test]
    fn injected_cs_budget_degrades_thread_invariantly() {
        // CS trips its budget at the first tabulation check, falls to
        // Hybrid-Unbounded, and the rescued run must byte-match.
        assert_invariant_with_failpoint(
            &TajConfig::cs_thin(),
            "cs.tabulate",
            FailAction::StepBudget,
            true,
            "failpoint cs.tabulate=StepBudget degrade",
        );
    }
}
