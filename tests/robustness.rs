//! Robustness tests: recursion (through the RHS summary fixpoint and the
//! pointer analysis), inheritance across application classes, mutual
//! recursion, deep call chains, and servlet-lifecycle inheritance.

use taj::{analyze_source, IssueType, RuleSet, TajConfig};

fn issues(src: &str) -> Vec<IssueType> {
    analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
        .expect("analysis runs")
        .findings
        .iter()
        .map(|f| f.flow.issue)
        .collect()
}

#[test]
fn recursive_identity_propagates_taint() {
    // The RHS summary for a recursive method must reach its fixpoint.
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = this.bounce(req.getParameter("q"), 5);
                resp.getWriter().println(v);
            }
            method String bounce(String s, int n) {
                if (n > 0) { return this.bounce(s, n - 1); }
                return s;
            }
        }
    "#;
    assert_eq!(issues(src), vec![IssueType::Xss]);
}

#[test]
fn mutually_recursive_helpers() {
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = this.ping(req.getParameter("q"), 4);
                resp.getWriter().println(v);
            }
            method String ping(String s, int n) {
                if (n > 0) { return this.pong(s, n - 1); }
                return s;
            }
            method String pong(String s, int n) {
                if (n > 0) { return this.ping(s, n - 1); }
                return s;
            }
        }
    "#;
    assert_eq!(issues(src), vec![IssueType::Xss]);
}

#[test]
fn recursion_through_heap() {
    // Recursive data structure: taint stored into a linked list node and
    // read back through a loop.
    let src = r#"
        class Node {
            field String value;
            field Node next;
            ctor (String v, Node n) { this.value = v; this.next = n; }
        }
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Node head = new Node("clean", null);
                head = new Node(req.getParameter("q"), head);
                Node cur = head;
                while (cur != null) {
                    resp.getWriter().println(cur.value);
                    cur = cur.next;
                }
            }
        }
    "#;
    assert_eq!(issues(src), vec![IssueType::Xss]);
}

#[test]
fn inherited_do_get_is_driven() {
    // A servlet inheriting doGet from an application base class must still
    // be analyzed through the synthesized entrypoint.
    let src = r#"
        class BasePage extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = req.getParameter("q");
                resp.getWriter().println(v);
            }
        }
        class ChildPage extends BasePage {
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    assert!(
        report.findings.iter().any(|f| f.flow.issue == IssueType::Xss),
        "inherited lifecycle must be analyzed: {report:#?}"
    );
}

#[test]
fn interface_dispatch_flows() {
    let src = r#"
        interface Formatter {
            method String fmt(String s);
        }
        class RawFormatter implements Formatter {
            ctor () { }
            method String fmt(String s) { return s; }
        }
        class SafeFormatter implements Formatter {
            ctor () { }
            method String fmt(String s) { return URLEncoder.encode(s); }
        }
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Formatter f = new RawFormatter();
                String v = f.fmt(req.getParameter("q"));
                resp.getWriter().println(v);
            }
        }
        class SafePage extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Formatter f = new SafeFormatter();
                String v = f.fmt(req.getParameter("q"));
                resp.getWriter().println(v);
            }
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    let classes: Vec<&str> =
        report.findings.iter().map(|f| f.flow.sink_owner_class.as_str()).collect();
    assert!(classes.contains(&"Page"), "raw formatter leaks: {classes:?}");
    assert!(
        !classes.contains(&"SafePage"),
        "precise dispatch: SafeFormatter sanitizes, got {classes:?}"
    );
}

#[test]
fn static_field_flow() {
    let src = r#"
        class Globals {
            static field String last;
        }
        class WritePage extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Globals.last = req.getParameter("q");
            }
        }
        class ReadPage extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = Globals.last;
                resp.getWriter().println(v);
            }
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.flow.sink_owner_class == "ReadPage" && f.flow.issue == IssueType::Xss),
        "static fields are a single global location: {report:#?}"
    );
}

#[test]
fn nested_try_catch() {
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                PrintWriter w = resp.getWriter();
                try {
                    try { this.inner(); } catch (RuntimeException r) { this.rethrow(r); }
                } catch (Exception e) {
                    w.println(e);
                }
            }
            method void inner() { throw new RuntimeException("deep"); }
            method void rethrow(RuntimeException r) { throw r; }
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    assert!(
        report.findings.iter().any(|f| f.flow.issue == IssueType::InfoLeak),
        "rethrown exception still leaks: {report:#?}"
    );
}

#[test]
fn else_if_chain_lowering() {
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = req.getParameter("q");
                String out = "";
                int mode = 2;
                if (mode == 0) { out = "a"; }
                else if (mode == 1) { out = "b"; }
                else if (mode == 2) { out = v; }
                else { out = "c"; }
                resp.getWriter().println(out);
            }
        }
    "#;
    assert_eq!(issues(src), vec![IssueType::Xss]);
}

#[test]
fn deep_static_call_chain() {
    // 60 static hops: exercises summary reuse and stack safety.
    let mut src = String::from(
        r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = Chain.h0(req.getParameter("q"));
                resp.getWriter().println(v);
            }
        }
        class Chain {
        "#,
    );
    for i in 0..60 {
        if i == 59 {
            src.push_str(&format!("    static method String h{i}(String s) {{ return s; }}\n"));
        } else {
            src.push_str(&format!(
                "    static method String h{i}(String s) {{ return Chain.h{}(s); }}\n",
                i + 1
            ));
        }
    }
    src.push_str("}\n");
    assert_eq!(issues(&src), vec![IssueType::Xss]);
}

#[test]
fn taint_through_array_of_objects() {
    let src = r#"
        class Cell { field String v; ctor (String v) { this.v = v; } }
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                Cell[] cells = new Cell[] { new Cell(req.getParameter("q")) };
                Cell c = cells[0];
                resp.getWriter().println(c.v);
            }
        }
    "#;
    assert_eq!(issues(src), vec![IssueType::Xss]);
}
