//! Concurrency-aware slicing: the thread-escape / MHP subsystems wired
//! into both slicers.
//!
//! - `CS-Escape` (the sixth configuration) must recover exactly the
//!   cross-thread flows plain CS misses on the multithreaded Table 2 trio
//!   (BlueBlog 2, I 1, SBM 2 — §7.2), without reporting anything new
//!   elsewhere beyond those repaired flows.
//! - The hybrid escape filter may only *drop* findings (it removes
//!   impossible cross-thread store→load edges), never add them, and must
//!   not lose any true positive.

use std::collections::HashSet;

use proptest::prelude::*;

use taj::core::{
    analyze_prepared, analyze_source, prepare, score, IssueType, RuleSet, TajConfig, TajReport,
};
use taj::webgen::{generate, micro_suite, presets, BenchmarkSpec, Pattern, Scale};

/// Hybrid with the cross-thread edge filter enabled (not one of the six
/// named configurations; exercised directly here and via `--config`).
fn hybrid_escape() -> TajConfig {
    TajConfig { name: "Hybrid-Escape", escape_analysis: true, ..TajConfig::hybrid_unbounded() }
}

fn detected(report: &TajReport) -> HashSet<(String, IssueType)> {
    report.findings.iter().map(|f| (f.flow.sink_owner_class.clone(), f.flow.issue)).collect()
}

#[test]
fn cs_escape_recovers_multithreaded_trio_false_negatives() {
    let scale = Scale::quick();
    let mut recovered_total = 0usize;
    for preset in presets().into_iter().filter(|p| p.threads > 0) {
        let bench = generate(&preset.spec(scale));
        let prepared = prepare(&bench.source, Some(&bench.descriptor), RuleSet::default_rules())
            .expect("preset prepares");
        let cs = analyze_prepared(&prepared, &TajConfig::cs_thin()).expect("CS runs");
        let ce = analyze_prepared(&prepared, &TajConfig::cs_escape()).expect("CS-Escape runs");
        let cs_found = detected(&cs);
        let ce_found = detected(&ce);

        // Plain CS misses every seeded cross-thread flow; the repair
        // reports each of them.
        for ct in &bench.truth.cross_thread {
            assert!(
                !cs_found.contains(ct),
                "{}: plain CS unexpectedly finds cross-thread {ct:?}",
                preset.name
            );
            assert!(
                ce_found.contains(ct),
                "{}: CS-Escape fails to recover cross-thread {ct:?}",
                preset.name
            );
        }
        assert_eq!(
            bench.truth.cross_thread.len(),
            preset.threads,
            "{}: generator seeds the paper's FN count",
            preset.name
        );
        recovered_total += bench.truth.cross_thread.len();

        // The repair is monotone: everything CS reports survives, and the
        // only additions are real (no new false positives).
        let cs_score = score(&cs, &bench.truth);
        let ce_score = score(&ce, &bench.truth);
        assert!(ce_found.is_superset(&cs_found), "{}: CS-Escape lost a CS finding", preset.name);
        assert_eq!(
            ce_score.false_negatives + preset.threads,
            cs_score.false_negatives,
            "{}: repair recovers exactly the seeded cross-thread flows",
            preset.name
        );
        assert_eq!(
            ce_score.false_positives, cs_score.false_positives,
            "{}: repair must not introduce false positives",
            preset.name
        );
    }
    assert_eq!(recovered_total, 5, "BlueBlog 2 + I 1 + SBM 2");
}

#[test]
fn cs_escape_is_superset_of_cs_on_micro_suite() {
    for t in micro_suite() {
        let prepared = prepare(&t.source, Some(&t.descriptor), RuleSet::default_rules())
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        let cs = analyze_prepared(&prepared, &TajConfig::cs_thin()).unwrap();
        let ce = analyze_prepared(&prepared, &TajConfig::cs_escape()).unwrap();
        assert!(
            detected(&ce).is_superset(&detected(&cs)),
            "{}: CS-Escape lost a finding CS had",
            t.name
        );
    }
}

#[test]
fn cs_escape_fixes_thread_shared_micro_case() {
    let t = micro_suite()
        .into_iter()
        .find(|t| t.name == format!("Micro_{}", Pattern::ThreadShared.tag()))
        .expect("ThreadShared in suite");
    let prepared = prepare(&t.source, Some(&t.descriptor), RuleSet::default_rules()).unwrap();
    let cs = score(&analyze_prepared(&prepared, &TajConfig::cs_thin()).unwrap(), &t.truth);
    let ce = score(&analyze_prepared(&prepared, &TajConfig::cs_escape()).unwrap(), &t.truth);
    assert_eq!(cs.false_negatives, 1, "plain CS misses the flow: {cs:?}");
    assert_eq!(ce.false_negatives, 0, "escape repair finds it: {ce:?}");
    assert_eq!(ce.false_positives, cs.false_positives, "no new FPs: {ce:?}");
}

#[test]
fn hybrid_escape_filter_is_subset_on_micro_suite() {
    for t in micro_suite() {
        let prepared = prepare(&t.source, Some(&t.descriptor), RuleSet::default_rules())
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        let plain = analyze_prepared(&prepared, &TajConfig::hybrid_unbounded()).unwrap();
        let filtered = analyze_prepared(&prepared, &hybrid_escape()).unwrap();
        assert!(
            detected(&plain).is_superset(&detected(&filtered)),
            "{}: escape filter invented a finding",
            t.name
        );
        let ps = score(&plain, &t.truth);
        let fs = score(&filtered, &t.truth);
        assert_eq!(
            ps.false_negatives, fs.false_negatives,
            "{}: escape filter may only drop false positives",
            t.name
        );
    }
}

/// A cross-thread store→load pair through a *thread-confined* object:
/// both threads call the same factory, so a context-limited points-to
/// overlap makes plain hybrid connect the spawned thread's store to the
/// main thread's load — a false positive the escape filter removes
/// (neither box is reachable from the spawned receiver or a static).
#[test]
fn hybrid_escape_drops_impossible_cross_thread_edge() {
    let src = r#"
        class Box { field String v; ctor () { } }
        class BoxFactory {
            method Box make() {
                Box b = new Box();
                return b;
            }
        }
        class Worker implements Runnable {
            field String in;
            ctor (String in) { this.in = in; }
            method void run() {
                BoxFactory f = new BoxFactory();
                Box mine = f.make();
                mine.v = this.in;
            }
        }
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String p = req.getParameter("q");
                Worker w = new Worker(p);
                Thread t = new Thread(w);
                t.start();
                BoxFactory f = new BoxFactory();
                Box ours = f.make();
                String out = ours.v;
                resp.getWriter().println(out);
            }
        }
    "#;
    let plain = analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
        .unwrap();
    let filtered = analyze_source(src, None, RuleSet::default_rules(), &hybrid_escape()).unwrap();
    assert!(
        plain.issue_count() >= 1,
        "plain hybrid conflates the two thread-confined boxes: {plain:#?}"
    );
    assert_eq!(
        filtered.issue_count(),
        0,
        "escape filter removes the impossible cross-thread flow: {filtered:#?}"
    );
    assert!(
        filtered.concurrency.cross_thread_edges_dropped > 0,
        "the dropped store->load edge is accounted in the report"
    );
}

fn threaded_spec_strategy() -> impl Strategy<Value = BenchmarkSpec> {
    let pats = vec![
        Pattern::XssReflected,
        Pattern::SqliConcat,
        Pattern::XssHeap,
        Pattern::NestedCarrier,
        Pattern::SessionAttr,
        Pattern::BuilderFlow,
        Pattern::TwoBoxContext,
        Pattern::CollectionContext,
        Pattern::FactoryAlias,
        Pattern::ThreadShared,
    ];
    (
        proptest::collection::vec((0..pats.len(), 1usize..3), 1..5),
        1usize..3, // always seed at least one cross-thread flow
        0usize..2,
        any::<u64>(),
    )
        .prop_map(move |(choices, threads, filler, seed)| {
            let mut counts: Vec<(Pattern, usize)> =
                choices.into_iter().map(|(i, n)| (pats[i], n)).collect();
            counts.push((Pattern::ThreadShared, threads));
            BenchmarkSpec {
                name: "conc-prop".into(),
                pattern_counts: counts,
                filler_classes: filler,
                methods_per_class: 4,
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The hybrid escape filter is a pure false-positive filter: its
    /// findings are contained in unfiltered hybrid's, and it keeps every
    /// seeded vulnerable flow (no new false negatives), whatever the
    /// composition.
    #[test]
    fn hybrid_escape_contained_in_hybrid(spec in threaded_spec_strategy()) {
        let bench = generate(&spec);
        let prepared = prepare(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
        )
        .expect("generated benchmark prepares");
        let plain = analyze_prepared(&prepared, &TajConfig::hybrid_unbounded()).unwrap();
        let filtered = analyze_prepared(&prepared, &hybrid_escape()).unwrap();
        prop_assert!(
            detected(&plain).is_superset(&detected(&filtered)),
            "escape filter added a finding; spec {:?}",
            spec.pattern_counts
        );
        let fs = score(&filtered, &bench.truth);
        prop_assert_eq!(
            fs.false_negatives, 0,
            "escape filter lost a real flow; spec {:?}; score {:?}",
            spec.pattern_counts, fs
        );
    }

    /// The CS escape repair is monotone: plain CS findings survive, and
    /// the repaired run recovers every seeded cross-thread flow.
    #[test]
    fn cs_escape_contains_cs(spec in threaded_spec_strategy()) {
        let bench = generate(&spec);
        let prepared = prepare(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
        )
        .expect("generated benchmark prepares");
        let cs = analyze_prepared(&prepared, &TajConfig::cs_thin()).unwrap();
        let ce = analyze_prepared(&prepared, &TajConfig::cs_escape()).unwrap();
        let ce_found = detected(&ce);
        prop_assert!(
            ce_found.is_superset(&detected(&cs)),
            "repair lost a CS finding; spec {:?}",
            spec.pattern_counts
        );
        for ct in &bench.truth.cross_thread {
            prop_assert!(
                ce_found.contains(ct),
                "repair missed cross-thread {:?}; spec {:?}",
                ct, spec.pattern_counts
            );
        }
    }
}
