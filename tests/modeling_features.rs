//! Tests for the paper's finer modeling features: by-reference sources
//! (footnote 2), whitelist-based library exclusion (§4.2.1), and EJB
//! descriptor-driven call modeling (§4.2.2).

use taj::core::{analyze_source, DeploymentDescriptor, EjbEntry, IssueType, RuleSet, TajConfig};

#[test]
fn by_reference_source_taints_argument_state() {
    // `readFully` taints the buffer's internal state; reading it out and
    // rendering it is a flow even though no source *returns* the value.
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                RandomAccessFile f = new RandomAccessFile("upload.bin");
                ByteBuffer buf = new ByteBuffer();
                f.readFully(buf);
                String content = buf.data;
                resp.getWriter().println(content);
            }
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|f| { f.flow.issue == IssueType::Xss && f.flow.source_method == "readFully" }),
        "by-reference source flow must be reported: {report:#?}"
    );
}

#[test]
fn by_reference_source_object_is_a_carrier() {
    // Passing the tainted buffer itself to the sink is flagged via
    // carrier detection.
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                RandomAccessFile f = new RandomAccessFile("upload.bin");
                ByteBuffer buf = new ByteBuffer();
                f.readFully(buf);
                resp.getWriter().println(buf);
            }
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    assert!(
        report.findings.iter().any(|f| f.flow.source_method == "readFully"),
        "tainted buffer passed to sink must be flagged: {report:#?}"
    );
}

#[test]
fn untouched_buffer_is_clean() {
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                ByteBuffer buf = new ByteBuffer();
                String content = buf.data;
                resp.getWriter().println(content);
            }
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    assert_eq!(report.issue_count(), 0, "{report:#?}");
}

#[test]
fn whitelisted_class_is_excluded() {
    // `Relay.pass` forwards taint; whitelisting it severs the flow
    // (§4.2.1: "exclude benign library classes … based on a whitelist").
    let src = r#"
        library class Relay {
            static method String pass(String s) { return s; }
        }
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = Relay.pass(req.getParameter("q"));
                resp.getWriter().println(v);
            }
        }
    "#;
    let with = analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
        .unwrap();
    assert_eq!(with.issue_count(), 1, "flow present without whitelist: {with:#?}");

    let mut rules = RuleSet::default_rules();
    rules.whitelist.push("Relay".into());
    let without = analyze_source(src, None, rules, &TajConfig::hybrid_unbounded()).unwrap();
    assert_eq!(without.issue_count(), 0, "whitelisting Relay must sever the flow: {without:#?}");
}

#[test]
fn ejb_flow_requires_descriptor() {
    let src = r#"
        interface BeanHome { method EchoBean create(); }
        class EchoBean {
            ctor () { }
            method String echo(String s) { return s; }
        }
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String v = req.getParameter("q");
                InitialContext ctx = new InitialContext();
                Object ref = ctx.lookup("java:comp/env/ejb/Echo");
                BeanHome home = (BeanHome) PortableRemoteObject.narrow(ref, null);
                EchoBean bean = home.create();
                resp.getWriter().println(bean.echo(v));
            }
        }
    "#;
    // Without a descriptor the lookup stays opaque: no flow.
    let blind = analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
        .unwrap();
    assert_eq!(blind.issue_count(), 0, "{blind:#?}");

    // With the descriptor, the container is bypassed and the flow appears.
    let descriptor = DeploymentDescriptor {
        entries: vec![EjbEntry {
            jndi_name: "java:comp/env/ejb/Echo".into(),
            home_interface: "BeanHome".into(),
            bean_class: "EchoBean".into(),
        }],
    };
    let seeing = analyze_source(
        src,
        Some(&descriptor),
        RuleSet::default_rules(),
        &TajConfig::hybrid_unbounded(),
    )
    .unwrap();
    assert_eq!(seeing.issue_count(), 1, "{seeing:#?}");
}

#[test]
fn numeric_validation_severs_string_taint() {
    // The paper's future-work direction (§9) on string-specific taint: a
    // value forced through numeric parsing cannot carry an injection
    // payload. `Integer.parseInt` yields a fresh numeric value, so the
    // flow dies without an explicit sanitizer rule.
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String raw = req.getParameter("id");
                int id = Integer.parseInt(raw);
                Connection c = DriverManager.getConnection("jdbc:app");
                Statement st = c.createStatement();
                st.executeQuery("SELECT * FROM t WHERE id = " + id);
            }
        }
    "#;
    let report =
        analyze_source(src, None, RuleSet::default_rules(), &TajConfig::hybrid_unbounded())
            .unwrap();
    assert_eq!(report.issue_count(), 0, "parseInt kills the payload: {report:#?}");
}

#[test]
fn phase1_reuse_is_equivalent() {
    // Incremental re-analysis: slicing twice over one cached phase-1
    // result must equal two full runs.
    use taj::core::{analyze_prepared, analyze_with_phase1, prepare, run_phase1};
    let src = r#"
        class Page extends HttpServlet {
            method void doGet(HttpServletRequest req, HttpServletResponse resp) {
                resp.getWriter().println(req.getParameter("q"));
            }
        }
    "#;
    let prepared = prepare(src, None, RuleSet::default_rules()).unwrap();
    let config = TajConfig::hybrid_unbounded();
    let phase1 = run_phase1(&prepared, &config);
    assert!(phase1.matches(&config));
    let a = analyze_with_phase1(&prepared, &phase1, &config).unwrap();
    let b = analyze_with_phase1(&prepared, &phase1, &config).unwrap();
    let c = analyze_prepared(&prepared, &config).unwrap();
    assert_eq!(a.issue_count(), b.issue_count());
    assert_eq!(a.issue_count(), c.issue_count());
    // CI shares the unbounded call-graph settings: reuse works across
    // algorithms too.
    let ci = TajConfig::ci_thin();
    assert!(phase1.matches(&ci));
    let d = analyze_with_phase1(&prepared, &phase1, &ci).unwrap();
    assert_eq!(d.issue_count(), 1);
}
