//! Determinism: analyzing the same program twice — including under the
//! bounded configurations, where processing order could in principle
//! change which flows fit the budget — must produce identical findings.
//! (Rust `HashMap`s use per-instance random seeds, so any result that
//! depended on map iteration order would flake here.)

use taj::core::{analyze_prepared, prepare, RuleSet, TajConfig};
use taj::webgen::{generate, presets, Scale};

fn finding_set(report: &taj::core::TajReport) -> Vec<(String, String, String)> {
    let mut v: Vec<(String, String, String)> = report
        .findings
        .iter()
        .map(|f| {
            (f.flow.issue.to_string(), f.flow.sink_owner_class.clone(), f.flow.sink_method.clone())
        })
        .collect();
    v.sort();
    v
}

#[test]
fn repeated_runs_agree_on_findings() {
    let preset = presets().into_iter().find(|p| p.name == "Webgoat").unwrap();
    let bench = generate(&preset.spec(Scale::quick()));
    for config in TajConfig::all() {
        // Two completely independent pipelines (fresh HashMap seeds).
        let mut results = Vec::new();
        for _ in 0..2 {
            let prepared =
                prepare(&bench.source, Some(&bench.descriptor), RuleSet::default_rules()).unwrap();
            match analyze_prepared(&prepared, &config) {
                Ok(r) => results.push(Some(finding_set(&r))),
                Err(taj::core::TajError::OutOfMemory { .. }) => results.push(None),
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(results[0], results[1], "{}: two runs disagree on findings", config.name);
    }
}

#[test]
fn generation_plus_analysis_is_reproducible() {
    // The full path from preset to report is a pure function of the seed.
    let preset = presets().into_iter().find(|p| p.name == "I").unwrap();
    let a = generate(&preset.spec(Scale::quick()));
    let b = generate(&preset.spec(Scale::quick()));
    assert_eq!(a.source, b.source);
    let ra = taj::core::analyze_source(
        &a.source,
        Some(&a.descriptor),
        RuleSet::default_rules(),
        &TajConfig::hybrid_optimized(),
    )
    .unwrap();
    let rb = taj::core::analyze_source(
        &b.source,
        Some(&b.descriptor),
        RuleSet::default_rules(),
        &TajConfig::hybrid_optimized(),
    )
    .unwrap();
    assert_eq!(finding_set(&ra), finding_set(&rb));
    assert_eq!(ra.stats.cg_nodes, rb.stats.cg_nodes);
}
