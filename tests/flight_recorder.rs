//! Flight-recorder and distributed-tracing forensics, end to end:
//! slow/degraded requests land in `last_traces` with outcome
//! attribution, `trace <id>` returns a span fragment a human can read,
//! a routed request stitches into one cross-process trace, and — the
//! determinism contract — report bytes are identical with the recorder
//! on or off, at 1 and 8 threads.

use serde::Value;
use taj::service::{route, serve, AnalyzeOpts, Client, RouterOptions, ServeOptions, ServerHandle};

const XSS_SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            resp.getWriter().println(name);
        }
    }
"#;

fn start(options: ServeOptions) -> (ServerHandle, Client) {
    let handle = serve(options).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client)
}

fn shutdown_and_join(mut client: Client, handle: ServerHandle) {
    client.shutdown().expect("shutdown accepted");
    handle.join();
}

fn tcp_addr(handle: &ServerHandle) -> String {
    match handle.addr() {
        taj::service::BoundAddr::Tcp(a) => a.to_string(),
        taj::service::BoundAddr::Unix(p) => panic!("expected TCP, got unix:{}", p.display()),
    }
}

/// Span names of a fragment, in recorded order.
fn span_names(fragment: &Value) -> Vec<String> {
    match fragment.get("spans") {
        Some(Value::Array(spans)) => spans
            .iter()
            .filter_map(|s| s.get("name").and_then(Value::as_str))
            .map(str::to_string)
            .collect(),
        _ => Vec::new(),
    }
}

/// Zeroes the wall-clock report fields (`pointer_ms`, `slice_ms`,
/// `total_ms`) so reports from different runs compare byte-for-byte —
/// the same normalization the daemon's report cache applies.
fn canonicalize(value: &mut Value) {
    match value {
        Value::Object(entries) => {
            for (key, v) in entries.iter_mut() {
                if matches!(key.as_str(), "pointer_ms" | "slice_ms" | "total_ms") {
                    *v = Value::UInt(0);
                } else {
                    canonicalize(v);
                }
            }
        }
        Value::Array(items) => {
            for v in items.iter_mut() {
                canonicalize(v);
            }
        }
        _ => {}
    }
}

fn canonical_bytes(mut result: Value) -> String {
    canonicalize(&mut result);
    serde_json::to_string(&result).expect("serialize canonical report")
}

#[test]
fn slow_and_degraded_requests_land_in_last_traces_with_outcome_attrs() {
    // `--slow-ms 0` makes every request "slow", so both requests below
    // must be retained and summarized.
    let options = ServeOptions { workers: 1, slow_ms: Some(0), ..ServeOptions::tcp_ephemeral() };
    let (handle, mut client) = start(options);

    let slow_opts = AnalyzeOpts { trace_id: Some("t-slow".to_string()), ..AnalyzeOpts::default() };
    client.analyze(XSS_SERVLET, &slow_opts).expect("slow analyze");

    // CS-Tiny's 4-edge budget is exhausted by any real program; with
    // `degrade` the ladder rescues the run and the driver emits
    // `degrade` events the recorder attributes from.
    let degraded_opts = AnalyzeOpts {
        config: Some("cs_tiny".to_string()),
        degrade: true,
        trace_id: Some("t-degraded".to_string()),
        ..AnalyzeOpts::default()
    };
    client.analyze(XSS_SERVLET, &degraded_opts).expect("degraded analyze");

    let listing = client.last_traces(None).expect("last_traces");
    assert_eq!(listing["count"].as_u64(), Some(2), "{listing:?}");
    let traces = listing["traces"].as_array().expect("traces array");
    // Newest first.
    assert_eq!(traces[0]["trace_id"].as_str(), Some("t-degraded"), "{listing:?}");
    assert_eq!(traces[0]["outcome"].as_str(), Some("ok"));
    assert_eq!(traces[0]["attrs"]["degraded"].as_bool(), Some(true), "{listing:?}");
    assert_eq!(traces[1]["trace_id"].as_str(), Some("t-slow"));
    assert_eq!(traces[1]["outcome"].as_str(), Some("ok"));
    assert_eq!(traces[1]["attrs"]["degraded"].as_bool(), Some(false));
    assert!(traces[1]["elapsed_us"].as_u64().is_some(), "{listing:?}");

    // `limit` caps the listing without changing its order.
    let capped = client.last_traces(Some(1)).expect("capped last_traces");
    assert_eq!(capped["count"].as_u64(), Some(1));
    assert_eq!(capped["traces"][0]["trace_id"].as_str(), Some("t-degraded"));

    shutdown_and_join(client, handle);
}

#[test]
fn trace_command_returns_fragment_with_queue_cache_and_phase_spans() {
    let (handle, mut client) = start(ServeOptions { workers: 1, ..ServeOptions::tcp_ephemeral() });
    let opts = AnalyzeOpts { trace_id: Some("t-spans".to_string()), ..AnalyzeOpts::default() };
    client.analyze(XSS_SERVLET, &opts).expect("traced analyze");

    let trace = client.trace("t-spans").expect("trace fetch");
    assert_eq!(trace["trace_id"].as_str(), Some("t-spans"));
    let fragments = trace["fragments"].as_array().expect("fragments array");
    assert_eq!(fragments.len(), 1, "{trace:?}");
    let fragment = &fragments[0];
    assert_eq!(fragment["process"].as_str(), Some("daemon"));
    assert_eq!(fragment["outcome"].as_str(), Some("ok"));

    let names = span_names(fragment);
    // The synthetic root anchors the timeline; queue.wait/run bracket
    // the pool dispatch; cache probes and analysis phases fill the rest.
    assert_eq!(names.first().map(String::as_str), Some("request"), "{names:?}");
    for expected in ["queue.wait", "run", "cache.probe", "phase1", "phase2"] {
        assert!(names.iter().any(|n| n == expected), "missing span `{expected}`: {names:?}");
    }
    // A cold daemon's probes all miss.
    let spans = fragment["spans"].as_array().expect("spans");
    let probes: Vec<&Value> =
        spans.iter().filter(|s| s["name"].as_str() == Some("cache.probe")).collect();
    assert!(!probes.is_empty());
    assert!(probes.iter().all(|p| p["args"]["hit"].as_bool() == Some(false)), "{probes:?}");

    // Unknown ids fail with a readable bad_request, not an empty result.
    let err = client.trace("t-unknown").expect_err("unknown trace id must fail");
    match err {
        taj::service::ClientError::Remote { code, message, .. } => {
            assert_eq!(code, "bad_request");
            assert!(message.contains("t-unknown"), "{message}");
        }
        other => panic!("expected remote error, got {other:?}"),
    }

    shutdown_and_join(client, handle);
}

#[test]
fn routed_request_stitches_into_one_cross_process_trace() {
    let (shard_a, client_a) = start(ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() });
    let (shard_b, client_b) = start(ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() });
    let router = route(RouterOptions::tcp_ephemeral(vec![tcp_addr(&shard_a), tcp_addr(&shard_b)]))
        .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    let opts = AnalyzeOpts { trace_id: Some("t-routed".to_string()), ..AnalyzeOpts::default() };
    let report = via_router.analyze(XSS_SERVLET, &opts).expect("routed analyze");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1), "{report:?}");

    // One trace id, fragments from both sides of the wire: the router's
    // hop record plus the serving shard's full request record.
    let trace = via_router.trace("t-routed").expect("trace via router");
    assert_eq!(trace["trace_id"].as_str(), Some("t-routed"));
    let fragments = trace["fragments"].as_array().expect("fragments");
    let processes: Vec<&str> = fragments.iter().filter_map(|f| f["process"].as_str()).collect();
    assert!(processes.contains(&"router"), "{processes:?}");
    assert!(processes.iter().any(|p| p.starts_with("shard")), "{processes:?}");

    let router_fragment = fragments
        .iter()
        .find(|f| f["process"].as_str() == Some("router"))
        .expect("router fragment");
    let router_names = span_names(router_fragment);
    assert!(router_names.iter().any(|n| n == "router.forward"), "{router_names:?}");

    let shard_fragment = fragments
        .iter()
        .find(|f| f["process"].as_str().is_some_and(|p| p.starts_with("shard")))
        .expect("shard fragment");
    let shard_names = span_names(shard_fragment);
    for expected in ["request", "queue.wait", "cache.probe", "phase1", "phase2"] {
        assert!(
            shard_names.iter().any(|n| n == expected),
            "missing shard span `{expected}`: {shard_names:?}"
        );
    }
    // The shard's root span carries the propagated parent hop.
    let shard_root = &shard_fragment["spans"][0];
    assert_eq!(shard_root["args"]["parent"].as_str(), Some("router"), "{shard_root:?}");

    // The stitched Chrome trace keeps both processes apart (distinct
    // pids) on one timeline.
    let stitched = taj::service::stitch_fragments(fragments);
    let doc: Value = serde_json::from_str(&stitched).expect("stitched JSON parses");
    let events = doc["traceEvents"].as_array().expect("traceEvents");
    let mut pids: Vec<u64> = events.iter().filter_map(|e| e["pid"].as_u64()).collect();
    pids.sort_unstable();
    pids.dedup();
    assert!(pids.len() >= 2, "stitched trace must span >= 2 processes: {stitched}");

    via_router.shutdown().expect("router drains");
    router.join();
    shutdown_and_join(client_a, shard_a);
    shutdown_and_join(client_b, shard_b);
}

#[test]
fn report_bytes_identical_with_flight_recorder_on_and_off() {
    // The recorder must be a pure observer: same program, same config,
    // same bytes — ring on or off, 1 thread or 8.
    for threads in [1u64, 8] {
        let on = ServeOptions {
            workers: 2,
            flight_records: 256,
            slow_ms: Some(0),
            ..ServeOptions::tcp_ephemeral()
        };
        let off = ServeOptions { workers: 2, flight_records: 0, ..ServeOptions::tcp_ephemeral() };
        let opts = AnalyzeOpts {
            threads: Some(threads),
            trace_id: Some(format!("t-bytes-{threads}")),
            ..AnalyzeOpts::default()
        };

        let (handle_on, mut client_on) = start(on);
        let report_on = client_on.analyze(XSS_SERVLET, &opts).expect("analyze with recorder on");

        let (handle_off, mut client_off) = start(off);
        let report_off = client_off.analyze(XSS_SERVLET, &opts).expect("analyze with recorder off");

        assert_eq!(
            canonical_bytes(report_on),
            canonical_bytes(report_off),
            "flight recorder changed report bytes at {threads} thread(s)"
        );

        // The off daemon must also report the ring as absent, and refuse
        // trace lookups with a readable error.
        let stats = client_off.stats().expect("stats");
        assert_eq!(stats["flight"]["capacity"].as_u64(), Some(0), "{stats:?}");
        let listing = client_off.last_traces(None).expect("last_traces with ring off");
        assert_eq!(listing["count"].as_u64(), Some(0), "{listing:?}");

        shutdown_and_join(client_on, handle_on);
        shutdown_and_join(client_off, handle_off);
    }
}
