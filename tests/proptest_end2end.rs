//! End-to-end property tests over randomly composed web applications:
//! soundness (every seeded vulnerable pattern is found by the sound
//! configurations), flow containment (hybrid ⊆ CI), and budget
//! monotonicity.

use proptest::prelude::*;

use taj::core::{
    analyze_prepared, analyze_prepared_opts, prepare, score, RuleSet, RunOptions, TajConfig,
};
use taj::webgen::{generate, BenchmarkSpec, Pattern};

/// Patterns with seeded *vulnerable* entries that every sound
/// configuration must detect (bounded configurations excluded: deep/long
/// flows are deliberately lost by the optimized variant).
fn detectable() -> Vec<Pattern> {
    vec![
        Pattern::XssReflected,
        Pattern::SqliConcat,
        Pattern::CommandInjection,
        Pattern::MaliciousFile,
        Pattern::InfoLeak,
        Pattern::XssHeap,
        Pattern::NestedCarrier,
        Pattern::SessionAttr,
        Pattern::BuilderFlow,
        Pattern::ReflectInvoke,
        Pattern::StrutsForm,
        Pattern::TwoBoxContext,
        Pattern::CollectionContext,
        Pattern::ThreadShared,
        Pattern::EjbFlow,
    ]
}

fn spec_strategy() -> impl Strategy<Value = BenchmarkSpec> {
    let pats = detectable();
    (proptest::collection::vec((0..pats.len(), 1usize..3), 1..5), 0usize..3, any::<u64>()).prop_map(
        move |(choices, filler, seed)| {
            let mut counts: Vec<(Pattern, usize)> = Vec::new();
            for (i, n) in choices {
                counts.push((pats[i], n));
            }
            BenchmarkSpec {
                name: "prop".into(),
                pattern_counts: counts,
                filler_classes: filler,
                methods_per_class: 4,
                seed,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: the unbounded hybrid and CI configurations find every
    /// seeded vulnerable pattern, whatever the composition.
    #[test]
    fn sound_configs_have_no_false_negatives(spec in spec_strategy()) {
        let bench = generate(&spec);
        let prepared = prepare(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
        )
        .expect("generated benchmark prepares");
        for config in [TajConfig::hybrid_unbounded(), TajConfig::ci_thin()] {
            let report = analyze_prepared(&prepared, &config).expect("runs");
            let s = score(&report, &bench.truth);
            prop_assert_eq!(
                s.false_negatives, 0,
                "{} missed flows; spec {:?}; score {:?}",
                config.name, spec.pattern_counts, s
            );
        }
    }

    /// Precision containment: every (sink class, issue) the hybrid
    /// algorithm reports is also reported by CI (CI is the most
    /// conservative configuration).
    #[test]
    fn hybrid_findings_contained_in_ci(spec in spec_strategy()) {
        let bench = generate(&spec);
        let prepared = prepare(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
        )
        .expect("prepares");
        let hybrid = analyze_prepared(&prepared, &TajConfig::hybrid_unbounded()).unwrap();
        let ci = analyze_prepared(&prepared, &TajConfig::ci_thin()).unwrap();
        let key = |f: &taj::core::TajFinding| {
            (f.flow.sink_owner_class.clone(), f.flow.issue)
        };
        let ci_set: std::collections::HashSet<_> = ci.findings.iter().map(key).collect();
        for f in &hybrid.findings {
            prop_assert!(
                ci_set.contains(&key(f)),
                "hybrid finding {:?} missing from CI", key(f)
            );
        }
    }

    /// Thread invariance: whatever the composition and the thread
    /// count, the parallel engine reports the same issues and does the
    /// same amount of slicing work as the sequential reference — the
    /// thread count is an execution parameter, never an analysis
    /// parameter (`tests/parallel_determinism.rs` pins the full byte
    /// stream; this pins the invariant over *random* programs).
    #[test]
    fn thread_count_never_changes_issues_or_work(
        spec in spec_strategy(),
        threads in 1usize..9,
    ) {
        let bench = generate(&spec);
        let prepared = prepare(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
        )
        .expect("prepares");
        let config = TajConfig::hybrid_unbounded();
        let issue_set = |r: &taj::core::TajReport| {
            let mut set: Vec<_> = r
                .findings
                .iter()
                .map(|f| {
                    (f.flow.issue, f.flow.sink_owner_class.clone(), f.flow.sink_method.clone())
                })
                .collect();
            set.sort();
            set
        };
        let sequential = analyze_prepared_opts(
            &prepared,
            &config,
            &RunOptions { threads: 1, ..RunOptions::default() },
        )
        .expect("sequential run succeeds");
        let parallel = analyze_prepared_opts(
            &prepared,
            &config,
            &RunOptions { threads, ..RunOptions::default() },
        )
        .expect("parallel run succeeds");
        prop_assert_eq!(
            issue_set(&sequential),
            issue_set(&parallel),
            "issue set diverges at {} threads", threads
        );
        prop_assert_eq!(
            sequential.stats.slicer_work,
            parallel.stats.slicer_work,
            "slicer_work diverges at {} threads", threads
        );
    }

    /// Budget monotonicity: a larger call-graph budget never reports
    /// fewer true positives.
    #[test]
    fn cg_budget_is_monotone(spec in spec_strategy(), small in 50usize..200) {
        let bench = generate(&spec);
        let prepared = prepare(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
        )
        .expect("prepares");
        let mut lo_cfg = TajConfig::hybrid_prioritized();
        lo_cfg.max_cg_nodes = Some(small);
        let mut hi_cfg = TajConfig::hybrid_prioritized();
        hi_cfg.max_cg_nodes = Some(small * 50);
        let lo = analyze_prepared(&prepared, &lo_cfg).unwrap();
        let hi = analyze_prepared(&prepared, &hi_cfg).unwrap();
        let lo_s = score(&lo, &bench.truth);
        let hi_s = score(&hi, &bench.truth);
        prop_assert!(
            hi_s.true_positives >= lo_s.true_positives,
            "larger budget lost TPs: {lo_s:?} vs {hi_s:?}"
        );
    }
}
