//! Access-path edge cases of the IFDS backend: raising the depth bound
//! `k` is monotone (a deeper bound can only *remove* widening-induced
//! reports, never lose a true flow), and `k = 0` degenerates to
//! field-insensitive taint ("the object is tainted"), where storing into
//! one field taints loads of every other field.

use proptest::prelude::*;

use taj::core::{analyze_prepared, prepare, score, RuleSet, TajConfig};
use taj::webgen::{generate, BenchmarkSpec, Pattern};

/// Patterns with seeded vulnerable entries the IFDS backend must detect
/// at every depth bound (widening is an over-approximation: lowering `k`
/// can only add reports).
fn detectable() -> Vec<Pattern> {
    vec![
        Pattern::XssReflected,
        Pattern::SqliConcat,
        Pattern::XssHeap,
        Pattern::NestedCarrier,
        Pattern::SessionAttr,
        Pattern::BuilderFlow,
        Pattern::ReflectInvoke,
        Pattern::StrutsForm,
        Pattern::ThreadShared,
        Pattern::CollectionContext,
        Pattern::EjbFlow,
    ]
}

fn spec_strategy() -> impl Strategy<Value = BenchmarkSpec> {
    let pats = detectable();
    (proptest::collection::vec((0..pats.len(), 1usize..3), 1..4), 0usize..2, any::<u64>()).prop_map(
        move |(choices, filler, seed)| {
            let mut counts: Vec<(Pattern, usize)> = Vec::new();
            for (i, n) in choices {
                counts.push((pats[i], n));
            }
            BenchmarkSpec {
                name: "ifds-prop".into(),
                pattern_counts: counts,
                filler_classes: filler,
                methods_per_class: 4,
                seed,
            }
        },
    )
}

/// IFDS configuration at an explicit access-path depth.
fn ifds_at(k: usize) -> TajConfig {
    let mut config = TajConfig::ifds();
    config.access_path_depth = k;
    config
}

/// The comparable verdict set: `(sink class, issue)` pairs.
fn verdicts(report: &taj::core::TajReport) -> std::collections::BTreeSet<(String, String)> {
    report
        .findings
        .iter()
        .map(|f| (f.flow.sink_owner_class.clone(), format!("{:?}", f.flow.issue)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Monotonicity in the depth bound: reports at `k + 1` are contained
    /// in reports at `k` (deeper paths widen later, so precision only
    /// improves), and no true webgen flow is ever lost at any depth.
    #[test]
    fn raising_k_is_monotone(spec in spec_strategy(), k in 0usize..3) {
        let bench = generate(&spec);
        let prepared = prepare(
            &bench.source,
            Some(&bench.descriptor),
            RuleSet::default_rules(),
        )
        .expect("generated benchmark prepares");
        let lo = analyze_prepared(&prepared, &ifds_at(k)).expect("runs at k");
        let hi = analyze_prepared(&prepared, &ifds_at(k + 1)).expect("runs at k+1");
        let (lo_set, hi_set) = (verdicts(&lo), verdicts(&hi));
        for key in &hi_set {
            prop_assert!(
                lo_set.contains(key),
                "k={} lost report {:?} present at k={}; spec {:?}",
                k, key, k + 1, spec.pattern_counts
            );
        }
        for (report, depth) in [(&lo, k), (&hi, k + 1)] {
            let s = score(report, &bench.truth);
            prop_assert_eq!(
                s.false_negatives, 0,
                "IFDS at k={} missed a true flow; spec {:?}; score {:?}",
                depth, spec.pattern_counts, s
            );
        }
    }
}

/// The separating program for `k = 0` degeneracy: taint is stored into
/// field `a` and read back from the *disjoint* field `b`. With any
/// positive depth the access path `[a]` cannot be consumed by a load of
/// `b` and the program is clean; at `k = 0` the store widens immediately
/// to "the object is tainted", the widened fact matches every load, and
/// the (field-infeasible) flow is reported — exactly field-insensitive
/// taint semantics.
const DISJOINT_FIELDS: &str = r#"
    class Box {
        field String a;
        field String b;
        ctor () { }
    }
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            Box box = new Box();
            box.a = name;
            String v = box.b;
            PrintWriter w = resp.getWriter();
            w.println(v);
        }
    }
"#;

#[test]
fn k0_degenerates_to_field_insensitive_taint() {
    let prepared = prepare(DISJOINT_FIELDS, None, RuleSet::default_rules()).expect("prepares");
    for k in [1, 2, 4] {
        let report = analyze_prepared(&prepared, &ifds_at(k)).expect("runs");
        assert_eq!(
            report.issue_count(),
            0,
            "k={k}: a load of `b` must not consume the precise path `[a]`: {report:#?}"
        );
    }
    let report = analyze_prepared(&prepared, &ifds_at(0)).expect("runs");
    assert_eq!(
        report.issue_count(),
        1,
        "k=0: the widened store must taint every load of the object: {report:#?}"
    );
}

/// The precision the depth bound buys is visible against the hybrid
/// slicer too: hybrid's field-matched (but depth-unbounded) store→load
/// edges also stay clean on the disjoint-field program, so IFDS at the
/// default depth agrees with hybrid here — the k=0 report above is the
/// *only* configuration that over-approximates this program.
#[test]
fn default_depth_agrees_with_hybrid_on_disjoint_fields() {
    let prepared = prepare(DISJOINT_FIELDS, None, RuleSet::default_rules()).expect("prepares");
    let hybrid = analyze_prepared(&prepared, &TajConfig::hybrid_unbounded()).expect("hybrid runs");
    let ifds = analyze_prepared(&prepared, &TajConfig::ifds()).expect("ifds runs");
    assert_eq!(hybrid.issue_count(), 0);
    assert_eq!(ifds.issue_count(), 0);
}
