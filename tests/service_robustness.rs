//! Daemon robustness: malformed input, strict protocol fields, request
//! timeouts, worker-panic isolation, graceful shutdown drain, and the
//! Unix-domain-socket transport.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::time::Duration;

use serde::Value;
use taj::service::{
    serve, AnalyzeOpts, Bind, Client, ClientError, RetryPolicy, ServeOptions, ServerHandle,
};

const SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            resp.getWriter().println(name);
        }
    }
"#;

fn start_debug() -> (ServerHandle, Client) {
    let options = ServeOptions { workers: 2, debug: true, ..ServeOptions::tcp_ephemeral() };
    let handle = serve(options).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client)
}

fn error_code(raw: &str) -> String {
    let v = serde_json::from_str(raw).expect("response parses");
    assert_eq!(v["ok"].as_bool(), Some(false), "expected an error response: {raw}");
    v["error"]["code"].as_str().expect("error.code present").to_string()
}

#[test]
fn malformed_json_gets_structured_error() {
    let (handle, mut client) = start_debug();
    let raw = client.request_raw("{this is not json").expect("server still responds");
    assert_eq!(error_code(&raw), "bad_request");
    let v = serde_json::from_str(&raw).unwrap();
    assert!(v["id"].is_null(), "unparseable request has no id to echo: {raw}");

    // Valid JSON but not an object / unknown fields / unknown command.
    let raw = client.request_raw("[1,2,3]").expect("responds");
    assert_eq!(error_code(&raw), "bad_request");
    let raw = client.request_raw(r#"{"cmd":"stats","bogus":true}"#).expect("responds");
    assert_eq!(error_code(&raw), "bad_request");
    let raw = client.request_raw(r#"{"cmd":"launch_missiles"}"#).expect("responds");
    assert_eq!(error_code(&raw), "unknown_command");

    // The connection survives all of the above.
    client.stats().expect("connection still usable");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn analysis_errors_are_structured() {
    let (handle, mut client) = start_debug();
    let bad_config =
        AnalyzeOpts { config: Some("warp-speed".to_string()), ..AnalyzeOpts::default() };
    match client.analyze(SERVLET, &bad_config) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "unknown_config"),
        other => panic!("expected unknown_config, got {other:?}"),
    }
    match client.analyze("class {{{ not jweb", &AnalyzeOpts::default()) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "parse_error"),
        other => panic!("expected parse_error, got {other:?}"),
    }
    let bad_rules =
        AnalyzeOpts { rules: Some("rule Xss\nrule Sqli".to_string()), ..AnalyzeOpts::default() };
    match client.analyze(SERVLET, &bad_rules) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "bad_rules"),
        other => panic!("expected bad_rules, got {other:?}"),
    }
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn request_timeout_fires_and_daemon_survives() {
    let (handle, mut client) = start_debug();
    let raw = client
        .request_raw(r#"{"id":9,"cmd":"debug_sleep","ms":5000,"timeout_ms":50}"#)
        .expect("timeout response arrives");
    assert_eq!(error_code(&raw), "timeout");
    let v = serde_json::from_str(&raw).unwrap();
    assert_eq!(v["id"].as_u64(), Some(9), "timeout response echoes the request id");

    // The daemon keeps serving while the abandoned job finishes in the
    // background; a real analysis still works.
    let report = client.analyze(SERVLET, &AnalyzeOpts::default()).expect("analyze after timeout");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));
    let stats = client.stats().expect("stats");
    assert_eq!(stats["timeouts"].as_u64(), Some(1), "{stats:?}");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn deeply_nested_request_is_an_error_not_a_crash() {
    let (handle, mut client) = start_debug();
    // 100k unclosed brackets would blow the recursive-descent parser's
    // stack (an abort, not a catchable panic) without a depth limit.
    let hostile = "[".repeat(100_000);
    let raw = client.request_raw(&hostile).expect("server still responds");
    assert_eq!(error_code(&raw), "bad_request");
    // Same for deeply nested objects smuggled inside a valid envelope.
    let nested = format!(r#"{{"cmd":"stats","id":{}1{}}}"#, "[".repeat(500), "]".repeat(500));
    let raw = client.request_raw(&nested).expect("responds");
    assert_eq!(error_code(&raw), "bad_request");
    // The connection and the daemon both survive.
    client.stats().expect("connection still usable");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn timed_out_job_releases_its_worker() {
    let (handle, mut client) = start_debug();
    // Nominally a 60s sleep; the 50ms deadline cancels its supervisor and
    // the cooperative sleeper frees the worker within one check interval.
    let raw = client
        .request_raw(r#"{"id":7,"cmd":"debug_sleep","ms":60000,"timeout_ms":50}"#)
        .expect("timeout response arrives");
    assert_eq!(error_code(&raw), "timeout");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.stats().expect("stats");
        if stats["workers_reclaimed"].as_u64().unwrap_or(0) >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never reclaimed after cancellation: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The reclaimed worker is genuinely reusable.
    let report = client.analyze(SERVLET, &AnalyzeOpts::default()).expect("analyze after reclaim");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn degrade_turns_budget_exhaustion_into_hybrid_report() {
    let (handle, mut client) = start_debug();
    // Without degrade, the starved CS budget is the paper's hard failure.
    let starved = AnalyzeOpts { config: Some("cs-tiny".to_string()), ..AnalyzeOpts::default() };
    match client.analyze(SERVLET, &starved) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "out_of_memory"),
        other => panic!("expected out_of_memory, got {other:?}"),
    }
    // With degrade, the same request falls down the ladder to hybrid and
    // still reports the flow, annotated with provenance.
    let report = client
        .analyze(SERVLET, &AnalyzeOpts { degrade: true, ..starved })
        .expect("degraded analyze succeeds");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1), "{report:?}");
    assert_eq!(report["config"].as_str(), Some("Hybrid-Unbounded"), "{report:?}");
    assert_eq!(report["degradation"]["degraded"].as_bool(), Some(true), "{report:?}");
    let steps = report["degradation"]["steps"].as_array().expect("degradation steps");
    assert!(
        steps.iter().any(|s| s["reason"].as_str().unwrap_or("").contains("path-edge budget")),
        "{report:?}"
    );
    let stats = client.stats().expect("stats");
    // The degraded request reused the cached phase-1 from the failed one:
    // no second pointer analysis anywhere down the ladder.
    assert_eq!(stats["phase1_runs"].as_u64(), Some(1), "{stats:?}");
    assert_eq!(stats["degraded_runs"].as_u64(), Some(1), "{stats:?}");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn worker_panic_is_isolated() {
    let (handle, mut client) = start_debug();
    let raw = client.request_raw(r#"{"id":1,"cmd":"debug_panic"}"#).expect("panic response");
    assert_eq!(error_code(&raw), "worker_panic");

    // The worker survived (panic caught per-job): the pool still has
    // capacity and subsequent analyses succeed on the same daemon.
    for _ in 0..3 {
        let report = client.analyze(SERVLET, &AnalyzeOpts::default()).expect("analyze runs");
        assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats["worker_panics"].as_u64(), Some(1), "{stats:?}");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn shutdown_drains_in_flight_jobs() {
    let (handle, mut busy) = start_debug();
    let mut controller = Client::connect(handle.addr()).expect("second connection");

    // Connection A parks a slow job in the pool...
    let (tx, rx) = channel();
    let worker = std::thread::spawn(move || {
        let raw = busy
            .request_raw(r#"{"id":"slow","cmd":"debug_sleep","ms":400}"#)
            .expect("in-flight job completes despite shutdown");
        tx.send(raw).unwrap();
    });
    std::thread::sleep(Duration::from_millis(100)); // let the job get queued

    // ...while connection B asks the daemon to shut down.
    let ack = controller.shutdown().expect("shutdown acknowledged");
    assert_eq!(ack["draining"].as_bool(), Some(true), "{ack:?}");

    // The in-flight job still completes and its response is delivered.
    let raw = rx.recv_timeout(Duration::from_secs(10)).expect("drained job responded");
    let v = serde_json::from_str(&raw).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true), "{raw}");
    assert_eq!(v["result"]["slept_ms"].as_u64(), Some(400), "{raw}");
    worker.join().unwrap();

    // join() returns: accept loop exited and the pool drained.
    handle.join();
}

#[test]
fn requests_after_shutdown_are_refused() {
    let (handle, mut client) = start_debug();
    client.shutdown().expect("shutdown ok");
    // Give the accept loop a moment to observe the flag and drain.
    handle.join();
    // New connections are refused once the listener is gone; an already
    // half-open client errors out rather than hanging.
    match client.stats() {
        Err(_) => {}
        Ok(v) => panic!("daemon answered after shutdown: {v:?}"),
    }
}

#[test]
fn unix_socket_round_trip() {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "taj-service-test-{}-{}.sock",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::SeqCst)
    ));
    let options = ServeOptions {
        bind: Bind::Unix(path.clone()),
        workers: 1,
        ..ServeOptions::tcp_ephemeral()
    };
    let handle = serve(options).expect("unix server starts");
    let mut client = Client::connect_unix(&path).expect("unix client connects");
    let report = client.analyze(SERVLET, &AnalyzeOpts::default()).expect("analyze over unix");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1), "{report:?}");
    let stats = client.stats().expect("stats over unix");
    assert_eq!(stats["phase1_runs"].as_u64(), Some(1));
    client.shutdown().expect("shutdown over unix");
    handle.join();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn threads_never_splits_the_report_cache() {
    // The thread count is an execution parameter: reports are
    // byte-identical at every value, so the report-cache key must not
    // include it. Requests differing only in `threads` share one cache
    // entry — one phase 1, one phase 2, and hits for everything after.
    let (handle, mut client) = start_debug();
    let first = AnalyzeOpts { threads: Some(8), ..AnalyzeOpts::default() };
    let report = client.analyze(SERVLET, &first).expect("first analyze");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));

    // Concurrent follow-ups at other thread counts, on their own
    // connections: all must be served from the same cached report.
    let mut joins = Vec::new();
    for threads in [1u64, 2, 4] {
        let addr = handle.addr().clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("client connects");
            let opts = AnalyzeOpts { threads: Some(threads), ..AnalyzeOpts::default() };
            let r = c.analyze(SERVLET, &opts).expect("cached analyze");
            assert_eq!(r["findings"].as_array().map(Vec::len), Some(1), "threads={threads}");
        }));
    }
    for j in joins {
        j.join().expect("concurrent client succeeds");
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats["phase1_runs"].as_u64(), Some(1), "{stats:?}");
    assert_eq!(stats["phase2_runs"].as_u64(), Some(1), "{stats:?}");
    assert!(
        stats["cache"]["hits"].as_u64().unwrap_or(0) >= 3,
        "thread-differing requests must hit the shared report entry: {stats:?}"
    );
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn timeout_reclaims_worker_running_multithreaded_slice() {
    // `timeout_ms` cancels the job's supervisor; the cancel token is
    // shared by every phase-2 slice worker (per-unit meters are fresh,
    // the token is not), so a multi-threaded slice must also stop
    // cooperatively and hand its pool worker back.
    let spec = taj::webgen::BenchmarkSpec {
        name: "reclaim-mt".into(),
        pattern_counts: taj::webgen::standard_mix(6, 2, true),
        filler_classes: 10,
        methods_per_class: 6,
        seed: 0xACE5,
    };
    let bench = taj::webgen::generate(&spec);
    let (handle, mut client) = start_debug();
    let opts = AnalyzeOpts { threads: Some(8), timeout_ms: Some(1), ..AnalyzeOpts::default() };
    match client.analyze(&bench.source, &opts) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, "timeout"),
        // A partial (cancelled) report beating a 1ms deadline would mean
        // the box is implausibly fast — treat success as a test bug.
        Ok(v) => panic!("analysis outran a 1ms deadline: {v:?}"),
        other => panic!("expected timeout, got {other:?}"),
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        if stats["workers_reclaimed"].as_u64().unwrap_or(0) >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "multi-threaded slice never released its worker: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The reclaimed worker still serves requests.
    let report = client.analyze(SERVLET, &AnalyzeOpts::default()).expect("analyze after reclaim");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn admission_control_sheds_with_retry_hint_when_the_queue_is_full() {
    // One worker, one queue slot: job 1 runs, job 2 queues, job 3 must
    // be shed with `overloaded` — an O(1) rejection, not a hang.
    let options =
        ServeOptions { workers: 1, max_queue: 1, debug: true, ..ServeOptions::tcp_ephemeral() };
    let handle = serve(options).expect("server starts");
    let addr = handle.addr().clone();
    let spawn_sleeper = |ms: u64| {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("sleeper connects");
            c.request_raw(&format!("{{\"id\":1,\"cmd\":\"debug_sleep\",\"ms\":{ms}}}"))
                .expect("sleeper completes")
        })
    };
    let busy = spawn_sleeper(1200);
    std::thread::sleep(Duration::from_millis(150)); // job 1 picked up
    let queued = spawn_sleeper(300);
    std::thread::sleep(Duration::from_millis(150)); // job 2 sits in the queue

    // `request_raw` never retries: we must see the raw rejection.
    let mut probe = Client::connect(handle.addr()).expect("probe connects");
    let raw =
        probe.request_raw(r#"{"id":3,"cmd":"debug_sleep","ms":1}"#).expect("shed response arrives");
    assert_eq!(error_code(&raw), "overloaded");
    let v: Value = serde_json::from_str(&raw).unwrap();
    let hint = v["error"]["retry_after_ms"].as_u64().expect("retry_after_ms hint present");
    assert!((1..=1000).contains(&hint), "sane hint: {raw}");
    assert_eq!(v["id"].as_u64(), Some(3), "shed response echoes the request id");

    // The shed is visible in stats and metrics.
    let stats = probe.stats().expect("stats");
    assert_eq!(stats["requests_shed"].as_u64(), Some(1), "{stats:?}");
    assert_eq!(stats["max_queue"].as_u64(), Some(1), "{stats:?}");
    let metrics = probe.metrics().expect("metrics");
    assert!(metrics.contains("taj_requests_shed_total 1"), "{metrics}");
    assert!(metrics.contains("taj_queue_depth"), "{metrics}");
    assert!(metrics.contains("taj_max_queue 1"), "{metrics}");

    // A client with a patient retry policy rides out the overload: the
    // same logical request succeeds once the queue drains, because
    // `overloaded` is retryable and the hint floors the backoff.
    let mut patient = Client::connect(handle.addr())
        .expect("patient connects")
        .with_retry(RetryPolicy { max_attempts: 8, base_backoff_ms: 100, max_backoff_ms: 2_000 });
    let report =
        patient.analyze(SERVLET, &AnalyzeOpts::default()).expect("retry rides out the overload");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));

    busy.join().unwrap();
    queued.join().unwrap();
    probe.shutdown().unwrap();
    handle.join();
}

#[test]
fn strict_protocol_rejects_typoed_analyze_fields() {
    let (handle, mut client) = start_debug();
    // `sources` instead of `source`: must fail loudly, not analyze "".
    let raw = client.request_raw(r#"{"cmd":"analyze","sources":"class A {}"}"#).expect("responds");
    assert_eq!(error_code(&raw), "bad_request");
    // Mistyped value types are rejected too.
    let raw = client
        .request_raw(r#"{"cmd":"analyze","source":"class A {}","timeout_ms":"fast"}"#)
        .expect("responds");
    assert_eq!(error_code(&raw), "bad_request");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn empty_value_is_ignored_not_fatal() {
    let (handle, mut client) = start_debug();
    // Blank lines between requests are tolerated (keepalive-style).
    let raw = client.request_raw("\n{\"cmd\":\"stats\"}").expect("responds");
    let v: Value = serde_json::from_str(&raw).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true), "{raw}");
    client.shutdown().unwrap();
    handle.join();
}
