//! Runs the SecuriBench-Micro-style suite against the analysis: every
//! real flow must be found (soundness), clean cases must stay clean
//! except where the suite *expects* a false alarm from a path/flow-
//! insensitive analysis, and the expected false alarms must actually be
//! raised (they document the precision frontier).

use taj::core::{analyze_source, score, RuleSet, TajConfig};
use taj::webgen::securibench_cases;

#[test]
fn securibench_hybrid_exact_expectations() {
    let config = TajConfig::hybrid_unbounded();
    let mut failures = Vec::new();
    for case in securibench_cases() {
        let report = analyze_source(&case.source, None, RuleSet::default_rules(), &config)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let s = score(&report, &case.truth);
        // Soundness: no real flow missed.
        if s.false_negatives != 0 {
            failures.push(format!("{}: missed a real flow ({s:?})", case.name));
        }
        // Precision: false positives exactly where expected.
        let expected_fp = case.expected_false_alarms.len();
        if s.false_positives != expected_fp {
            failures.push(format!(
                "{}: {} false positive(s), expected {expected_fp} ({s:?})",
                case.name, s.false_positives
            ));
        }
    }
    assert!(failures.is_empty(), "securibench failures:\n{}", failures.join("\n"));
}

#[test]
fn securibench_ci_is_sound() {
    let config = TajConfig::ci_thin();
    for case in securibench_cases() {
        let report = analyze_source(&case.source, None, RuleSet::default_rules(), &config)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let s = score(&report, &case.truth);
        assert_eq!(s.false_negatives, 0, "{}: CI missed a real flow ({s:?})", case.name);
    }
}

#[test]
fn securibench_strong_updates_separate_cs() {
    // StrongUpdates1 is the flow-insensitive-heap false alarm; our CS
    // emulation is only partially flow-sensitive (like the paper's) and
    // reports it too — but *local* strong updates (StrongUpdates2) are
    // free under SSA for every algorithm.
    let su2 = securibench_cases().into_iter().find(|c| c.name == "StrongUpdates2").unwrap();
    for config in TajConfig::all() {
        let report = analyze_source(&su2.source, None, RuleSet::default_rules(), &config)
            .unwrap_or_else(|e| panic!("{}: {e}", config.name));
        let s = score(&report, &su2.truth);
        assert_eq!(
            s.false_positives, 0,
            "{}: SSA makes register overwrites strong updates ({s:?})",
            config.name
        );
    }
}

#[test]
fn securibench_dynamic_oracle_agrees() {
    // The concrete interpreter observes flows exactly on the vulnerable
    // cases (expected false alarms never manifest dynamically).
    for case in securibench_cases() {
        let mut program = jir::frontend::parse_program(&case.source).expect("parses");
        taj_core::frameworks::synthesize_entrypoints(&mut program);
        let hits = taj::webgen::run_program(&program, taj::webgen::InterpConfig::default());
        let observed: std::collections::HashSet<String> =
            hits.iter().map(|h| h.caller_class.clone()).collect();
        for (class, _) in &case.truth.vulnerable {
            assert!(
                observed.contains(class),
                "{}: vulnerable flow did not manifest dynamically (hits: {hits:?})",
                case.name
            );
        }
        for (class, _) in &case.truth.benign {
            assert!(
                !observed.contains(class),
                "{}: benign case manifested dynamically — the case is mislabeled \
                 (hits: {hits:?})",
                case.name
            );
        }
    }
}
