//! The batch request and the shard router, end to end: one envelope
//! carries N programs and returns N ordered per-item results; the router
//! hashes each program to its shard, forwards verbatim, splits batches,
//! and fails over to local analysis when a shard dies.

use serde::Value;
use taj::service::{route, serve, AnalyzeOpts, Client, RouterOptions, ServeOptions};

const XSS_SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            PrintWriter w = resp.getWriter();
            w.println(name);
        }
    }
"#;

const SAFE_SERVLET: &str = r#"
    class Quiet extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            PrintWriter w = resp.getWriter();
            w.println("static");
        }
    }
"#;

fn start(options: ServeOptions) -> (taj::service::ServerHandle, Client) {
    let handle = serve(options).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client)
}

fn default_options() -> ServeOptions {
    ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() }
}

fn tcp_addr(handle: &taj::service::ServerHandle) -> String {
    match handle.addr() {
        taj::service::BoundAddr::Tcp(a) => a.to_string(),
        other => panic!("expected TCP bind, got {other}"),
    }
}

fn shutdown_and_join(mut client: Client, handle: taj::service::ServerHandle) {
    client.shutdown().expect("shutdown acknowledged");
    handle.join();
}

fn stat(stats: &Value, key: &str) -> u64 {
    stats[key].as_u64().unwrap_or_else(|| panic!("stats missing `{key}`: {stats:?}"))
}

fn items(batch: &Value) -> &Vec<Value> {
    match batch.get("items") {
        Some(Value::Array(items)) => items,
        other => panic!("batch result missing items array: {other:?}"),
    }
}

fn item_findings(item: &Value) -> usize {
    assert_eq!(item["ok"].as_bool(), Some(true), "{item:?}");
    item["result"]["findings"].as_array().map_or(0, Vec::len)
}

#[test]
fn batch_returns_ordered_per_item_results() {
    // One worker: items run sequentially, so the repeated program is a
    // guaranteed report-cache hit and every counter below is exact.
    // (With concurrent workers, identical items can race the cache;
    // byte-identity still holds — first writer wins — but phase-1 may
    // legitimately run once per racer.)
    let (handle, mut client) = start(ServeOptions { workers: 1, ..ServeOptions::tcp_ephemeral() });
    let opts = AnalyzeOpts::default();
    let batch = client
        .batch(
            &[
                (XSS_SERVLET.to_string(), opts.clone()),
                (SAFE_SERVLET.to_string(), opts.clone()),
                (XSS_SERVLET.to_string(), opts.clone()),
            ],
            None,
        )
        .expect("batch succeeds");
    assert_eq!(batch["count"].as_u64(), Some(3));
    let results = items(&batch);
    assert_eq!(item_findings(&results[0]), 1, "item 0 is the XSS program");
    assert_eq!(item_findings(&results[1]), 0, "item 1 is the safe program");
    assert_eq!(item_findings(&results[2]), 1, "item 2 repeats the XSS program");
    assert_eq!(
        serde_json::to_string(&results[0]["result"]).unwrap(),
        serde_json::to_string(&results[2]["result"]).unwrap(),
        "identical items share cached result bytes"
    );
    let trace_ids: Vec<&str> =
        results.iter().map(|i| i["trace_id"].as_str().expect("trace id")).collect();
    assert_ne!(trace_ids[0], trace_ids[2], "every item gets its own trace id");

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "batch_requests"), 1);
    assert_eq!(stat(&stats, "analyze_requests"), 3, "each item counts as an analyze");
    assert_eq!(stat(&stats, "phase1_runs"), 2, "one per distinct program");
    shutdown_and_join(client, handle);
}

#[test]
fn batch_isolates_bad_items_without_failing_the_envelope() {
    let (handle, mut client) = start(default_options());
    let source = serde_json::to_string(&Value::String(XSS_SERVLET.to_string())).unwrap();
    let line = format!(
        "{{\"id\":1,\"cmd\":\"batch\",\"items\":[{{\"source\":{source}}},\
         {{\"source\":{source},\"config\":\"no-such-config\"}},{{\"nope\":true}}]}}"
    );
    let raw = client.request_raw(&line).expect("envelope succeeds");
    assert!(raw.contains("\"ok\":true"), "envelope-level ok: {raw}");
    let response: Value = serde_json::from_str(&raw).unwrap();
    let results = items(&response["result"]);
    assert_eq!(results.len(), 3);
    assert_eq!(results[0]["ok"].as_bool(), Some(true), "good item analyzed: {raw}");
    assert_eq!(results[1]["ok"].as_bool(), Some(false));
    assert_eq!(results[1]["error"]["code"].as_str(), Some("unknown_config"));
    assert_eq!(results[2]["ok"].as_bool(), Some(false), "malformed item isolated");
    assert_eq!(results[2]["error"]["code"].as_str(), Some("bad_request"));
    shutdown_and_join(client, handle);
}

#[test]
fn batch_envelope_rejects_missing_items() {
    let (handle, mut client) = start(default_options());
    let raw = client.request_raw("{\"id\":1,\"cmd\":\"batch\"}").expect("response");
    assert!(raw.contains("\"ok\":false"), "{raw}");
    assert!(raw.contains("bad_request"), "{raw}");
    shutdown_and_join(client, handle);
}

#[test]
fn router_forwards_byte_identically_and_reports_shard_health() {
    let (shard_a, client_a) = start(default_options());
    let (shard_b, client_b) = start(default_options());
    let router = route(RouterOptions {
        bind: taj::service::Bind::Tcp("127.0.0.1:0".to_string()),
        shards: vec![tcp_addr(&shard_a), tcp_addr(&shard_b)],
        default_timeout_ms: None,
    })
    .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Fixed id + trace id: repeats through the router must be
    // byte-identical, exactly as against a single daemon.
    let req = format!(
        "{{\"id\":3,\"cmd\":\"analyze\",\"source\":{},\"trace_id\":\"t-3\"}}",
        serde_json::to_string(&Value::String(XSS_SERVLET.to_string())).unwrap()
    );
    let first = via_router.request_raw(&req).expect("first analyze via router");
    let second = via_router.request_raw(&req).expect("second analyze via router");
    assert_eq!(first, second);
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(first.contains("\"trace_id\":\"t-3\""), "{first}");

    let stats = via_router.stats().expect("router stats");
    assert_eq!(stats["role"].as_str(), Some("router"));
    assert_eq!(stat(&stats, "analyze_requests"), 2);
    assert_eq!(stat(&stats, "local_fallbacks"), 0);
    let shards = stats["shards"].as_array().expect("shards array");
    assert_eq!(shards.len(), 2);
    let forwarded: u64 = shards.iter().map(|s| stat(s, "forwarded")).sum();
    assert_eq!(forwarded, 2, "both requests went to a backend: {stats:?}");
    // Content-addressed routing: the repeat landed on the same shard.
    assert!(
        shards.iter().any(|s| stat(s, "forwarded") == 2),
        "repeats must hash to one shard: {stats:?}"
    );
    let metrics = via_router.metrics().expect("router metrics");
    assert!(metrics.contains("taj_router_shards 2"), "{metrics}");

    // Shutting down the router leaves the backends running.
    via_router.shutdown().expect("router drains");
    router.join();
    let stats_a = { Client::connect(shard_a.addr()).expect("reconnect A") }
        .stats()
        .expect("shard A still up");
    assert!(stats_a["protocol_version"].as_u64().is_some());
    shutdown_and_join(client_a, shard_a);
    shutdown_and_join(client_b, shard_b);
}

#[test]
fn router_splits_batches_across_shards_and_merges_in_order() {
    let (shard_a, client_a) = start(default_options());
    let (shard_b, client_b) = start(default_options());
    let router = route(RouterOptions {
        bind: taj::service::Bind::Tcp("127.0.0.1:0".to_string()),
        shards: vec![tcp_addr(&shard_a), tcp_addr(&shard_b)],
        default_timeout_ms: None,
    })
    .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Several distinct programs so the hash actually spreads: safe
    // variants are generated by renaming the printed literal.
    let mut sources = vec![XSS_SERVLET.to_string(), SAFE_SERVLET.to_string()];
    for k in 0..4 {
        sources.push(SAFE_SERVLET.replace("Quiet", &format!("Quiet{k}")));
    }
    let opts = AnalyzeOpts::default();
    let batch_items: Vec<(String, AnalyzeOpts)> =
        sources.iter().map(|s| (s.clone(), opts.clone())).collect();
    let batch = via_router.batch(&batch_items, None).expect("batch via router");
    assert_eq!(batch["count"].as_u64(), Some(sources.len() as u64));
    let results = items(&batch);
    assert_eq!(item_findings(&results[0]), 1, "first item is the XSS program");
    for (i, item) in results.iter().enumerate().skip(1) {
        assert_eq!(item_findings(item), 0, "item {i} is a safe variant: {item:?}");
    }

    // Both shards saw work (6 distinct programs over 2 shards: the odds
    // of all landing on one side are 2^-5 per hash design, and the hash
    // is deterministic — this asserts the fixed corpus actually splits).
    let stats = via_router.stats().expect("router stats");
    let shards = stats["shards"].as_array().expect("shards array");
    assert!(
        shards.iter().all(|s| stat(s, "forwarded") >= 1),
        "batch must split across shards: {stats:?}"
    );
    via_router.shutdown().expect("router drains");
    router.join();
    shutdown_and_join(client_a, shard_a);
    shutdown_and_join(client_b, shard_b);
}

#[test]
fn router_fails_over_to_local_analysis_when_a_shard_dies() {
    let (shard_a, client_a) = start(default_options());
    let (shard_b, client_b) = start(default_options());
    let addr_a = tcp_addr(&shard_a);
    let addr_b = tcp_addr(&shard_b);
    let router = route(RouterOptions {
        bind: taj::service::Bind::Tcp("127.0.0.1:0".to_string()),
        shards: vec![addr_a.clone(), addr_b.clone()],
        default_timeout_ms: None,
    })
    .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Establish the healthy-path answer first.
    let report = via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("warm analyze");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));

    // Kill both backends: every shard is now unreachable.
    shutdown_and_join(client_a, shard_a);
    shutdown_and_join(client_b, shard_b);

    let report =
        via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("failover analyze");
    assert_eq!(
        report["findings"].as_array().map(Vec::len),
        Some(1),
        "local fallback computes the same findings: {report:?}"
    );
    let stats = via_router.stats().expect("router stats");
    assert!(stat(&stats, "local_fallbacks") >= 1, "{stats:?}");
    let shards = stats["shards"].as_array().expect("shards array");
    assert!(
        shards.iter().any(|s| s["healthy"].as_bool() == Some(false)),
        "dead shard marked unhealthy: {stats:?}"
    );
    via_router.shutdown().expect("router drains");
    router.join();
}
