//! The batch request and the shard router, end to end: one envelope
//! carries N programs and returns N ordered per-item results; the router
//! hashes each program to its shard, forwards verbatim, splits batches,
//! and fails over to local analysis when a shard dies.

use serde::Value;
use taj::service::{route, serve, AnalyzeOpts, Client, RouterOptions, RouterTuning, ServeOptions};

const XSS_SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            PrintWriter w = resp.getWriter();
            w.println(name);
        }
    }
"#;

const SAFE_SERVLET: &str = r#"
    class Quiet extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            PrintWriter w = resp.getWriter();
            w.println("static");
        }
    }
"#;

fn start(options: ServeOptions) -> (taj::service::ServerHandle, Client) {
    let handle = serve(options).expect("server starts");
    let client = Client::connect(handle.addr()).expect("client connects");
    (handle, client)
}

fn default_options() -> ServeOptions {
    ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() }
}

fn tcp_addr(handle: &taj::service::ServerHandle) -> String {
    match handle.addr() {
        taj::service::BoundAddr::Tcp(a) => a.to_string(),
        other => panic!("expected TCP bind, got {other}"),
    }
}

fn shutdown_and_join(mut client: Client, handle: taj::service::ServerHandle) {
    client.shutdown().expect("shutdown acknowledged");
    handle.join();
}

fn stat(stats: &Value, key: &str) -> u64 {
    stats[key].as_u64().unwrap_or_else(|| panic!("stats missing `{key}`: {stats:?}"))
}

fn items(batch: &Value) -> &Vec<Value> {
    match batch.get("items") {
        Some(Value::Array(items)) => items,
        other => panic!("batch result missing items array: {other:?}"),
    }
}

fn item_findings(item: &Value) -> usize {
    assert_eq!(item["ok"].as_bool(), Some(true), "{item:?}");
    item["result"]["findings"].as_array().map_or(0, Vec::len)
}

#[test]
fn batch_returns_ordered_per_item_results() {
    // One worker: items run sequentially, so the repeated program is a
    // guaranteed report-cache hit and every counter below is exact.
    // (With concurrent workers, identical items can race the cache;
    // byte-identity still holds — first writer wins — but phase-1 may
    // legitimately run once per racer.)
    let (handle, mut client) = start(ServeOptions { workers: 1, ..ServeOptions::tcp_ephemeral() });
    let opts = AnalyzeOpts::default();
    let batch = client
        .batch(
            &[
                (XSS_SERVLET.to_string(), opts.clone()),
                (SAFE_SERVLET.to_string(), opts.clone()),
                (XSS_SERVLET.to_string(), opts.clone()),
            ],
            None,
        )
        .expect("batch succeeds");
    assert_eq!(batch["count"].as_u64(), Some(3));
    let results = items(&batch);
    assert_eq!(item_findings(&results[0]), 1, "item 0 is the XSS program");
    assert_eq!(item_findings(&results[1]), 0, "item 1 is the safe program");
    assert_eq!(item_findings(&results[2]), 1, "item 2 repeats the XSS program");
    assert_eq!(
        serde_json::to_string(&results[0]["result"]).unwrap(),
        serde_json::to_string(&results[2]["result"]).unwrap(),
        "identical items share cached result bytes"
    );
    let trace_ids: Vec<&str> =
        results.iter().map(|i| i["trace_id"].as_str().expect("trace id")).collect();
    assert_ne!(trace_ids[0], trace_ids[2], "every item gets its own trace id");

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "batch_requests"), 1);
    assert_eq!(stat(&stats, "analyze_requests"), 3, "each item counts as an analyze");
    assert_eq!(stat(&stats, "phase1_runs"), 2, "one per distinct program");
    shutdown_and_join(client, handle);
}

#[test]
fn batch_isolates_bad_items_without_failing_the_envelope() {
    let (handle, mut client) = start(default_options());
    let source = serde_json::to_string(&Value::String(XSS_SERVLET.to_string())).unwrap();
    let line = format!(
        "{{\"id\":1,\"cmd\":\"batch\",\"items\":[{{\"source\":{source}}},\
         {{\"source\":{source},\"config\":\"no-such-config\"}},{{\"nope\":true}}]}}"
    );
    let raw = client.request_raw(&line).expect("envelope succeeds");
    assert!(raw.contains("\"ok\":true"), "envelope-level ok: {raw}");
    let response: Value = serde_json::from_str(&raw).unwrap();
    let results = items(&response["result"]);
    assert_eq!(results.len(), 3);
    assert_eq!(results[0]["ok"].as_bool(), Some(true), "good item analyzed: {raw}");
    assert_eq!(results[1]["ok"].as_bool(), Some(false));
    assert_eq!(results[1]["error"]["code"].as_str(), Some("unknown_config"));
    assert_eq!(results[2]["ok"].as_bool(), Some(false), "malformed item isolated");
    assert_eq!(results[2]["error"]["code"].as_str(), Some("bad_request"));
    shutdown_and_join(client, handle);
}

#[test]
fn batch_envelope_rejects_missing_items() {
    let (handle, mut client) = start(default_options());
    let raw = client.request_raw("{\"id\":1,\"cmd\":\"batch\"}").expect("response");
    assert!(raw.contains("\"ok\":false"), "{raw}");
    assert!(raw.contains("bad_request"), "{raw}");
    shutdown_and_join(client, handle);
}

#[test]
fn router_forwards_byte_identically_and_reports_shard_health() {
    let (shard_a, client_a) = start(default_options());
    let (shard_b, client_b) = start(default_options());
    let router = route(RouterOptions::tcp_ephemeral(vec![tcp_addr(&shard_a), tcp_addr(&shard_b)]))
        .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Fixed id + trace id: repeats through the router must be
    // byte-identical, exactly as against a single daemon.
    let req = format!(
        "{{\"id\":3,\"cmd\":\"analyze\",\"source\":{},\"trace_id\":\"t-3\"}}",
        serde_json::to_string(&Value::String(XSS_SERVLET.to_string())).unwrap()
    );
    let first = via_router.request_raw(&req).expect("first analyze via router");
    let second = via_router.request_raw(&req).expect("second analyze via router");
    assert_eq!(first, second);
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(first.contains("\"trace_id\":\"t-3\""), "{first}");

    let stats = via_router.stats().expect("router stats");
    assert_eq!(stats["role"].as_str(), Some("router"));
    assert_eq!(stat(&stats, "analyze_requests"), 2);
    assert_eq!(stat(&stats, "local_fallbacks"), 0);
    let shards = stats["shards"].as_array().expect("shards array");
    assert_eq!(shards.len(), 2);
    let forwarded: u64 = shards.iter().map(|s| stat(s, "forwarded")).sum();
    assert_eq!(forwarded, 2, "both requests went to a backend: {stats:?}");
    // Content-addressed routing: the repeat landed on the same shard.
    assert!(
        shards.iter().any(|s| stat(s, "forwarded") == 2),
        "repeats must hash to one shard: {stats:?}"
    );
    let metrics = via_router.metrics().expect("router metrics");
    assert!(metrics.contains("taj_router_shards 2"), "{metrics}");

    // Shutting down the router leaves the backends running.
    via_router.shutdown().expect("router drains");
    router.join();
    let stats_a = { Client::connect(shard_a.addr()).expect("reconnect A") }
        .stats()
        .expect("shard A still up");
    assert!(stats_a["protocol_version"].as_u64().is_some());
    shutdown_and_join(client_a, shard_a);
    shutdown_and_join(client_b, shard_b);
}

#[test]
fn router_splits_batches_across_shards_and_merges_in_order() {
    let (shard_a, client_a) = start(default_options());
    let (shard_b, client_b) = start(default_options());
    let router = route(RouterOptions::tcp_ephemeral(vec![tcp_addr(&shard_a), tcp_addr(&shard_b)]))
        .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Several distinct programs so the hash actually spreads: safe
    // variants are generated by renaming the printed literal.
    let mut sources = vec![XSS_SERVLET.to_string(), SAFE_SERVLET.to_string()];
    for k in 0..4 {
        sources.push(SAFE_SERVLET.replace("Quiet", &format!("Quiet{k}")));
    }
    let opts = AnalyzeOpts::default();
    let batch_items: Vec<(String, AnalyzeOpts)> =
        sources.iter().map(|s| (s.clone(), opts.clone())).collect();
    let batch = via_router.batch(&batch_items, None).expect("batch via router");
    assert_eq!(batch["count"].as_u64(), Some(sources.len() as u64));
    let results = items(&batch);
    assert_eq!(item_findings(&results[0]), 1, "first item is the XSS program");
    for (i, item) in results.iter().enumerate().skip(1) {
        assert_eq!(item_findings(item), 0, "item {i} is a safe variant: {item:?}");
    }

    // Both shards saw work (6 distinct programs over 2 shards: the odds
    // of all landing on one side are 2^-5 per hash design, and the hash
    // is deterministic — this asserts the fixed corpus actually splits).
    let stats = via_router.stats().expect("router stats");
    let shards = stats["shards"].as_array().expect("shards array");
    assert!(
        shards.iter().all(|s| stat(s, "forwarded") >= 1),
        "batch must split across shards: {stats:?}"
    );
    via_router.shutdown().expect("router drains");
    router.join();
    shutdown_and_join(client_a, shard_a);
    shutdown_and_join(client_b, shard_b);
}

#[test]
fn router_fails_over_to_local_analysis_when_a_shard_dies() {
    let (shard_a, client_a) = start(default_options());
    let (shard_b, client_b) = start(default_options());
    let addr_a = tcp_addr(&shard_a);
    let addr_b = tcp_addr(&shard_b);
    let router = route(RouterOptions::tcp_ephemeral(vec![addr_a.clone(), addr_b.clone()]))
        .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Establish the healthy-path answer first.
    let report = via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("warm analyze");
    assert_eq!(report["findings"].as_array().map(Vec::len), Some(1));

    // Kill both backends: every shard is now unreachable.
    shutdown_and_join(client_a, shard_a);
    shutdown_and_join(client_b, shard_b);

    let report =
        via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("failover analyze");
    assert_eq!(
        report["findings"].as_array().map(Vec::len),
        Some(1),
        "local fallback computes the same findings: {report:?}"
    );
    let stats = via_router.stats().expect("router stats");
    assert!(stat(&stats, "local_fallbacks") >= 1, "{stats:?}");
    let shards = stats["shards"].as_array().expect("shards array");
    assert!(
        shards.iter().any(|s| s["healthy"].as_bool() == Some(false)),
        "dead shard marked unhealthy: {stats:?}"
    );
    via_router.shutdown().expect("router drains");
    router.join();
}

#[test]
fn shard_counters_are_disjoint_and_sum_to_forward_calls() {
    // Pins the counter arithmetic: every forward call ends in exactly
    // one of `forwarded` / `failovers`, and `retried` counts extra
    // transport attempts on top — a failed-then-failed-over request is
    // never double-counted.
    let (shard, shard_client) = start(default_options());
    let router = route(RouterOptions {
        // A long cooldown keeps the prober out of this test's counters.
        tuning: RouterTuning {
            failure_threshold: 3,
            cooldown_ms: 60_000,
            forward_attempts: 2,
            retry_base_ms: 1,
            ..RouterTuning::default()
        },
        ..RouterOptions::tcp_ephemeral(vec![tcp_addr(&shard)])
    })
    .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Two healthy forwards.
    for _ in 0..2 {
        via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("healthy analyze");
    }
    // Kill the shard; the next three forwards each burn both transport
    // attempts (1 extra attempt = 1 retried each), fail over, and the
    // third one trips the breaker.
    shutdown_and_join(shard_client, shard);
    for _ in 0..3 {
        via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("failover analyze");
    }
    // Breaker now open: the fourth failover fails fast, no retry burned.
    via_router.analyze(XSS_SERVLET, &AnalyzeOpts::default()).expect("fast-fail analyze");

    let stats = via_router.stats().expect("router stats");
    let shards = stats["shards"].as_array().expect("shards array");
    let s = &shards[0];
    assert_eq!(stat(s, "forwarded"), 2, "{stats:?}");
    assert_eq!(stat(s, "failovers"), 4, "{stats:?}");
    // Forwards 2 and 3 deterministically burn one transport retry each;
    // forward 1 burns one more unless the dying daemon's connection
    // thread answered it with `shutting_down` (a race either way dead).
    // Forward 4 hits an open breaker: never a retry.
    assert!((2..=3).contains(&stat(s, "retried")), "open breaker burns no retries: {stats:?}");
    assert_eq!(stat(s, "opens"), 1, "{stats:?}");
    assert_eq!(s["state"].as_str(), Some("open"), "{stats:?}");
    assert_eq!(s["healthy"].as_bool(), Some(false), "{stats:?}");
    // The invariant itself: six forward calls, each counted exactly once.
    assert_eq!(stat(s, "forwarded") + stat(s, "failovers"), 6, "{stats:?}");
    assert_eq!(stat(&stats, "local_fallbacks"), 4, "{stats:?}");

    let metrics = via_router.metrics().expect("router metrics");
    assert!(metrics.contains("taj_router_shard_state"), "{metrics}");
    assert!(metrics.contains("\"open\"} 1"), "breaker state one-hot: {metrics}");
    assert!(metrics.contains("taj_router_shard_retried_total"), "{metrics}");
    assert!(metrics.contains("taj_router_shard_opens_total"), "{metrics}");
    via_router.shutdown().expect("router drains");
    router.join();
}

#[test]
fn batch_survives_shard_restart_and_breaker_reintegrates_via_probes() {
    // The self-healing loop end to end: a shard dies mid-workload (its
    // batch items fail over in order, exactly once), then comes back on
    // the same port and is reintegrated by synthetic probes alone —
    // closed breaker, real traffic flowing — without any user request
    // having been risked against the half-dead shard.
    let (shard_a, client_a) = start(default_options());
    let (shard_b, mut client_b) = start(default_options());
    let addr_a = tcp_addr(&shard_a);
    let router = route(RouterOptions {
        tuning: RouterTuning {
            failure_threshold: 1,
            cooldown_ms: 100,
            probe_interval_ms: 20,
            forward_attempts: 1,
            ..RouterTuning::default()
        },
        ..RouterOptions::tcp_ephemeral(vec![addr_a.clone(), tcp_addr(&shard_b)])
    })
    .expect("router starts");
    let mut via_router = Client::connect(router.addr()).expect("connect router");

    // Six distinct programs (the known-split corpus): item 0 is the XSS
    // program, the rest are safe variants — the findings pattern pins
    // per-item ordering through every phase below.
    let mut sources = vec![XSS_SERVLET.to_string(), SAFE_SERVLET.to_string()];
    for k in 0..4 {
        sources.push(SAFE_SERVLET.replace("Quiet", &format!("Quiet{k}")));
    }
    let opts = AnalyzeOpts::default();
    let batch_items: Vec<(String, AnalyzeOpts)> =
        sources.iter().map(|s| (s.clone(), opts.clone())).collect();
    let check_batch = |batch: &Value| {
        assert_eq!(batch["count"].as_u64(), Some(sources.len() as u64));
        let results = items(batch);
        assert_eq!(item_findings(&results[0]), 1, "item 0 is the XSS program");
        for (i, item) in results.iter().enumerate().skip(1) {
            assert_eq!(item_findings(item), 0, "item {i} is a safe variant: {item:?}");
        }
    };
    check_batch(&via_router.batch(&batch_items, None).expect("healthy batch"));

    // Kill shard A mid-workload.
    shutdown_and_join(client_a, shard_a);
    let b_before = client_b.stats().expect("shard B stats");
    check_batch(&via_router.batch(&batch_items, None).expect("batch during outage"));
    let stats = via_router.stats().expect("router stats");
    assert!(stat(&stats, "local_fallbacks") >= 1, "A's items failed over: {stats:?}");
    let b_after = client_b.stats().expect("shard B stats");
    // No duplicate execution: every one of the 6 items ran exactly once,
    // either on shard B or as a router-local fallback.
    assert_eq!(
        (stat(&b_after, "analyze_requests") - stat(&b_before, "analyze_requests"))
            + stat(&stats, "local_fallbacks"),
        sources.len() as u64,
        "B delta + fallbacks must cover the outage batch exactly: {b_after:?} {stats:?}"
    );
    let forwarded_a_down = stat(&stats["shards"].as_array().unwrap()[0], "forwarded");

    // Restart shard A on the same port and wait for the probe chain
    // (open → half_open → closed) with no user traffic in between.
    let shard_a2 = serve(ServeOptions {
        bind: taj::service::Bind::Tcp(addr_a.clone()),
        workers: 2,
        ..ServeOptions::tcp_ephemeral()
    })
    .expect("shard A restarts on its old port");
    let client_a2 = Client::connect(shard_a2.addr()).expect("reconnect A");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = via_router.stats().expect("router stats");
        let a = &stats["shards"].as_array().expect("shards")[0];
        if a["state"].as_str() == Some("closed") {
            assert!(stat(a, "probes") >= 1, "reintegration must come from probes: {stats:?}");
            assert_eq!(
                stat(a, "forwarded"),
                forwarded_a_down,
                "no user request reached A before its breaker closed: {stats:?}"
            );
            break;
        }
        assert!(std::time::Instant::now() < deadline, "breaker never closed: {stats:?}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Real traffic flows to the reintegrated shard again.
    check_batch(&via_router.batch(&batch_items, None).expect("batch after reintegration"));
    let stats = via_router.stats().expect("router stats");
    assert!(
        stat(&stats["shards"].as_array().unwrap()[0], "forwarded") > forwarded_a_down,
        "reintegrated shard serves again: {stats:?}"
    );
    via_router.shutdown().expect("router drains");
    router.join();
    shutdown_and_join(client_a2, shard_a2);
    shutdown_and_join(client_b, shard_b);
}
