//! Determinism harness for the tracing layer itself: the *event set* a
//! run records (span names + attributes, timestamps excluded) must be
//! identical at every thread count and across repeat runs — including
//! degraded, hard-failing, and pre-cancelled runs. The byte-identical
//! report contract must also survive turning tracing on: the recorder is
//! an observation parameter, never an analysis parameter.

mod common;

use common::{big_app, normalized_json, THREADS};
use taj::core::{
    analyze_prepared_opts, analyze_source_opts, PreparedProgram, Recorder, RuleSet, RunOptions,
    Supervisor, TajConfig, TajError, TajReport,
};
use taj::webgen::{generate, standard_mix, BenchmarkSpec};

/// Runs one traced analysis and returns its outcome plus the
/// timestamp-free trace signature.
fn run_traced(
    prepared: &PreparedProgram,
    config: &TajConfig,
    threads: usize,
    degrade: bool,
    cancel: bool,
) -> (Result<TajReport, TajError>, Vec<String>) {
    let recorder = Recorder::deterministic();
    let supervisor = Supervisor::new();
    if cancel {
        supervisor.cancel();
    }
    let opts = RunOptions { supervisor, degrade, threads, recorder: recorder.clone() };
    let result = analyze_prepared_opts(prepared, config, &opts);
    (result, recorder.signature())
}

/// Asserts the trace signature matches the single-thread reference at
/// every thread count, twice each (repeat runs catch buffers polluted by
/// scheduling rather than inputs).
fn assert_trace_invariant(
    prepared: &PreparedProgram,
    config: &TajConfig,
    degrade: bool,
    cancel: bool,
    label: &str,
) {
    let (_, reference) = run_traced(prepared, config, 1, degrade, cancel);
    assert!(!reference.is_empty(), "[{label}] traced run records no events");
    for threads in THREADS {
        for repeat in 0..2 {
            let (_, signature) = run_traced(prepared, config, threads, degrade, cancel);
            assert_eq!(
                reference, signature,
                "[{label}] trace event set diverges at {threads} threads (repeat {repeat})"
            );
        }
    }
}

#[test]
fn all_six_configurations_have_thread_invariant_traces() {
    let prepared = big_app("trace-determinism");
    for config in TajConfig::all() {
        assert_trace_invariant(&prepared, &config, false, false, config.name);
    }
}

#[test]
fn degraded_runs_have_thread_invariant_traces() {
    // The starved CS config walks the degradation ladder; the `degrade`
    // instant events and the rescued run's spans must not depend on the
    // thread count.
    let prepared = big_app("trace-determinism");
    assert_trace_invariant(&prepared, &TajConfig::cs_tiny(), true, false, "CS-Tiny degraded");
    let (result, signature) = run_traced(&prepared, &TajConfig::cs_tiny(), 2, true, false);
    assert!(result.expect("degraded run completes").degradation.degraded);
    assert!(
        signature.iter().any(|l| l.starts_with("degrade ")),
        "degradation leaves a trace event: {signature:?}"
    );
}

#[test]
fn hard_failing_runs_have_thread_invariant_traces() {
    // Without the ladder the starved CS run aborts with OutOfMemory; the
    // abort path (span drops + the phase2.oom event) must trace
    // identically at every thread count.
    let prepared = big_app("trace-determinism");
    assert_trace_invariant(&prepared, &TajConfig::cs_tiny(), false, false, "CS-Tiny hard-fail");
    let (result, signature) = run_traced(&prepared, &TajConfig::cs_tiny(), 4, false, false);
    assert!(matches!(result, Err(TajError::OutOfMemory { .. })), "starved CS hard-fails");
    assert!(
        signature.iter().any(|l| l.starts_with("phase2.oom")),
        "abort leaves a phase2.oom event: {signature:?}"
    );
}

#[test]
fn pre_cancelled_runs_have_thread_invariant_traces() {
    let prepared = big_app("trace-determinism");
    assert_trace_invariant(&prepared, &TajConfig::hybrid_unbounded(), false, true, "pre-cancelled");
}

#[test]
fn reports_are_byte_identical_with_tracing_on_or_off() {
    // Tracing must never perturb the analysis: the normalized report
    // (timing counters zeroed, as everywhere else) is compared between a
    // disabled recorder and a live wall-clock recorder.
    let prepared = big_app("trace-determinism");
    for config in TajConfig::all() {
        for threads in [1, 4] {
            let off = analyze_prepared_opts(
                &prepared,
                &config,
                &RunOptions { threads, ..RunOptions::default() },
            )
            .expect("untraced run completes");
            let on = analyze_prepared_opts(
                &prepared,
                &config,
                &RunOptions { threads, recorder: Recorder::new(), ..RunOptions::default() },
            )
            .expect("traced run completes");
            assert_eq!(
                normalized_json(&off),
                normalized_json(&on),
                "[{}] tracing changed the report at {threads} threads",
                config.name
            );
        }
    }
}

#[test]
fn traced_run_emits_mandatory_spans_and_valid_chrome_json() {
    let spec = BenchmarkSpec {
        name: "trace-smoke".into(),
        pattern_counts: standard_mix(2, 1, true),
        filler_classes: 3,
        methods_per_class: 4,
        seed: 0xD17E,
    };
    let bench = generate(&spec);
    let recorder = Recorder::new();
    let opts = RunOptions { recorder: recorder.clone(), ..RunOptions::default() };
    analyze_source_opts(
        &bench.source,
        Some(&bench.descriptor),
        RuleSet::default_rules(),
        &TajConfig::hybrid_unbounded(),
        &opts,
    )
    .expect("benchmark analyzes");

    let signature = recorder.signature();
    for span in [
        "prepare.parse",
        "prepare.model",
        "prepare.ssa",
        "phase1",
        "phase1.solve",
        "phase1.heapgraph",
        "phase1.escape",
        "phase1.mhp",
        "phase2",
        "phase2.specs",
        "phase2.views",
        "phase2.unit",
        "phase2.post",
    ] {
        assert!(
            signature.iter().any(|l| l == span || l.starts_with(&format!("{span} "))),
            "mandatory span `{span}` missing from trace: {signature:?}"
        );
    }

    let trace = recorder.chrome_trace();
    let v: serde::Value = serde_json::from_str(&trace).expect("chrome trace is valid JSON");
    assert_eq!(v["displayTimeUnit"].as_str(), Some("ms"), "{trace}");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert!(ev["name"].as_str().is_some(), "event has a name: {ev:?}");
        assert_eq!(ev["cat"].as_str(), Some("taj"));
        assert!(ev["ts"].as_u64().is_some(), "event has a timestamp: {ev:?}");
        let ph = ev["ph"].as_str().expect("event has a phase");
        assert!(
            (ph == "X" && ev["dur"].as_u64().is_some()) || ph == "i",
            "complete events carry dur, instants don't: {ev:?}"
        );
    }
}
