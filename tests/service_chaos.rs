//! Server-side chaos under `--features taj_failpoints`: the failpoint
//! sites in the daemon's I/O path must degrade into *errors*, never
//! into wrong or half-parsed answers, and a retrying client must heal
//! across them once the fault clears.

#![cfg(feature = "taj_failpoints")]

use std::time::Duration;

use taj::service::{serve, AnalyzeOpts, Client, ClientError, RetryPolicy, ServeOptions};
use taj::supervise::failpoints::{self, FailAction, FailScenario};

const SERVLET: &str = r#"
    class Page extends HttpServlet {
        method void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String name = req.getParameter("name");
            resp.getWriter().println(name);
        }
    }
"#;

#[test]
fn torn_response_is_an_io_error_and_retry_heals_after_the_fault_clears() {
    let _scenario = FailScenario::setup();
    let options = ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() };
    let handle = serve(options).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.set_retry(RetryPolicy::none());
    let opts = AnalyzeOpts { threads: Some(1), ..AnalyzeOpts::default() };

    let healthy = client.analyze(SERVLET, &opts).expect("healthy request succeeds");

    // Every response is now cut in half mid-write and the connection
    // dropped. A non-retrying client must see I/O errors — the torn
    // prefix is valid-looking JSON text and must never be surfaced as
    // data.
    failpoints::configure("service.conn.write", FailAction::Cancel);
    match client.analyze(SERVLET, &opts) {
        Err(ClientError::Io(_)) => {}
        other => panic!("torn response must surface as ClientError::Io, got {other:?}"),
    }
    assert!(failpoints::hits("service.conn.write") >= 1, "the write failpoint must have fired");

    // With the fault armed, retries only burn attempts: the same torn
    // line greets every reconnect.
    client.set_retry(RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 5 });
    match client.analyze(SERVLET, &opts) {
        Err(ClientError::Io(_)) => {}
        other => panic!("persistent fault must exhaust retries with Io, got {other:?}"),
    }

    // Fault clears: the first attempt rides the dead stream and fails,
    // the retry reconnects and lands the same answer as before the
    // chaos.
    failpoints::remove("service.conn.write");
    let healed = client.analyze(SERVLET, &opts).expect("retry reconnects once the fault clears");
    assert_eq!(
        healed["findings"], healthy["findings"],
        "the healed answer must match the pre-fault answer"
    );

    let mut closer = Client::connect(handle.addr()).expect("connect for shutdown");
    let _ = closer.shutdown();
    handle.join();
}

#[test]
fn accept_stall_slows_new_connections_but_established_ones_keep_answering() {
    let _scenario = FailScenario::setup();
    let options = ServeOptions { workers: 2, ..ServeOptions::tcp_ephemeral() };
    let handle = serve(options).expect("server starts");
    let mut established = Client::connect(handle.addr()).expect("client connects");

    // Stall the accept loop. Connections already handed to their own
    // threads are unaffected; only new arrivals queue behind the stall.
    failpoints::configure("service.accept.stall", FailAction::Delay(100));
    std::thread::sleep(Duration::from_millis(20));
    let stats = established.stats().expect("established connection still answers");
    assert!(stats["requests"].as_u64().is_some(), "stats payload intact under stall: {stats:?}");

    // A new connection still gets through — delayed, not refused.
    let mut late = Client::connect(handle.addr()).expect("new connection accepted despite stall");
    late.set_io_timeout(Some(Duration::from_secs(5))).expect("timeout set");
    late.stats().expect("late connection serves requests");
    assert!(failpoints::hits("service.accept.stall") >= 1, "the stall failpoint must have fired");

    failpoints::remove("service.accept.stall");
    let _ = established.shutdown();
    handle.join();
}
