//! Full-vs-incremental differential harness (the correctness backbone of
//! the incremental analysis): for every corpus program and every
//! generated edit, the incremental pipeline — per-method summary diff,
//! dirty-region invalidation, `run_phase1_incremental` — must produce a
//! report byte-identical (JSON, text, SARIF, timing zeroed) to a
//! from-scratch analysis of the edited source. The corpus, byte-identity
//! helpers, and the incremental pipeline itself are shared with the
//! other differential suites via `tests/common/`.
//!
//! The edit taxonomy comes from `taj::webgen::edits`: an inert comment
//! (empty edit region — the base phase-1 artifact must be reused
//! verbatim), a method-body change, an added and a removed class, a
//! signature change (a genuine multi-method edit: the caller is patched
//! too), and a two-step multi-method body edit.

mod common;

use common::{
    assert_reports_byte_identical, base_artifacts, corpus, full_report, incremental_report,
    BaseArtifacts, Case,
};
use taj::core::{RunOptions, TajConfig};
use taj::webgen::{apply_edit, EditKind};

fn case_base(case: &Case, config: &TajConfig) -> BaseArtifacts {
    base_artifacts(
        &case.source,
        case.descriptor.as_ref(),
        config,
        &format!("{}/{}", case.suite, case.name),
    )
}

/// Every edit variant that applies to `source`. All sources accept the
/// comment and add-class edits; only filler-bearing (webgen) sources
/// accept body/signature/remove-class and the two-step multi-method
/// edit — `apply_edit` declines on the rest.
fn edit_variants(source: &str) -> Vec<(&'static str, String)> {
    let mut variants = Vec::new();
    for (label, kind, seed) in [
        ("comment", EditKind::Comment, 1),
        ("add-class", EditKind::AddClass, 2),
        ("body", EditKind::Body, 3),
        ("signature", EditKind::Signature, 4),
        ("remove-class", EditKind::RemoveClass, 5),
    ] {
        if let Some(edited) = apply_edit(source, kind, seed) {
            variants.push((label, edited));
        }
    }
    if let Some(first) = apply_edit(source, EditKind::Body, 6) {
        if let Some(second) = apply_edit(&first, EditKind::Body, 11) {
            variants.push(("body-multi", second));
        }
    }
    variants
}

#[test]
fn incremental_matches_full_over_the_whole_corpus() {
    // Hybrid (the default daemon configuration) over every corpus case
    // and every applicable edit. Also pins the provenance taxonomy: a
    // comment edit must reuse the base phase-1 artifact, and every
    // structural edit must re-solve at least one method.
    let config = TajConfig::hybrid_unbounded();
    let opts = RunOptions::default();
    let mut comment_reuses = 0usize;
    let mut resolved_edits = 0usize;
    for case in corpus() {
        let label = format!("{}/{}", case.suite, case.name);
        let base = case_base(&case, &config);
        for (edit, edited) in edit_variants(&case.source) {
            let tag = format!("{label} edit={edit}");
            let want = full_report(&edited, case.descriptor.as_ref(), &config, &opts, &tag);
            let got =
                incremental_report(&base, &edited, case.descriptor.as_ref(), &config, &opts, &tag);
            assert_reports_byte_identical(&want, &got.report, &tag);
            if edit == "comment" {
                assert!(
                    got.reused_base_phase1,
                    "{tag}: a comment edit has an empty region and must reuse \
                     the base phase-1 artifact"
                );
                comment_reuses += 1;
            } else {
                assert!(
                    !got.reused_base_phase1 && got.methods_resolved > 0,
                    "{tag}: a structural edit must re-solve a nonempty dirty \
                     region (resolved {} of {})",
                    got.methods_resolved,
                    got.methods_total
                );
                resolved_edits += 1;
            }
        }
    }
    assert!(comment_reuses > 0 && resolved_edits > 0, "corpus produced no edits");
}

#[test]
fn single_method_edit_resolves_strictly_fewer_summaries_than_total() {
    // The headline incremental win, pinned at the library level exactly
    // as the bench asserts it at the daemon level: a single body edit on
    // a filler-rich program re-solves a strict subset of the methods.
    let config = TajConfig::hybrid_unbounded();
    let opts = RunOptions::default();
    let case = corpus().into_iter().find(|c| c.suite == "webgen").expect("webgen case present");
    let base = case_base(&case, &config);
    let edited = apply_edit(&case.source, EditKind::Body, 3).expect("body edit applies");
    let got = incremental_report(
        &base,
        &edited,
        case.descriptor.as_ref(),
        &config,
        &opts,
        "webgen single-method edit",
    );
    assert!(
        got.methods_resolved > 0 && got.methods_resolved < got.methods_total,
        "single-method edit must re-solve a strict subset: {} of {}",
        got.methods_resolved,
        got.methods_total
    );
    let want =
        full_report(&edited, case.descriptor.as_ref(), &config, &opts, "webgen single-method edit");
    assert_reports_byte_identical(&want, &got.report, "webgen single-method edit");
}

#[test]
fn incremental_matches_full_under_ifds_and_at_eight_threads() {
    // The incremental plan is a phase-1 artifact: it must compose with
    // the other backend family (IFDS access paths) and with parallel
    // phase-2 execution without perturbing byte identity.
    let scenarios: [(&str, TajConfig, RunOptions); 2] = [
        ("IFDS", TajConfig::ifds(), RunOptions::default()),
        (
            "Hybrid@8",
            TajConfig::hybrid_unbounded(),
            RunOptions { threads: 8, ..RunOptions::default() },
        ),
    ];
    for case in corpus().into_iter().filter(|c| c.suite == "webgen") {
        for (label, config, opts) in &scenarios {
            let base = case_base(&case, config);
            for (edit, edited) in edit_variants(&case.source) {
                let tag = format!("{} [{label}] edit={edit}", case.name);
                let want = full_report(&edited, case.descriptor.as_ref(), config, opts, &tag);
                let got = incremental_report(
                    &base,
                    &edited,
                    case.descriptor.as_ref(),
                    config,
                    opts,
                    &tag,
                );
                assert_reports_byte_identical(&want, &got.report, &tag);
            }
        }
    }
}
