//! # taj — Rust reproduction of *TAJ: Effective Taint Analysis of Web
//! Applications* (PLDI 2009)
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`jir`] — the Java-like IR, SSA machinery, and jweb frontend;
//! - [`mod@pointer`] — context-sensitive Andersen pointer analysis (§3.1);
//! - [`sdg`] — no-heap SDG, RHS tabulation, and the hybrid/CI/CS thin
//!   slicers (§3.2);
//! - [`core`] — rules, code modeling, LCP reports, bounded configs, and
//!   the end-to-end driver;
//! - [`webgen`] — the synthetic benchmark generator reproducing the
//!   paper's evaluation setup.
//!
//! See `examples/` for runnable scenarios (start with
//! `cargo run --example quickstart`).
//!
//! ```
//! use taj::{analyze_source, RuleSet, TajConfig};
//!
//! let report = analyze_source(
//!     r#"
//!     class Page extends HttpServlet {
//!         method void doGet(HttpServletRequest req, HttpServletResponse resp) {
//!             String name = req.getParameter("name");
//!             resp.getWriter().println(name);       // reflected XSS
//!         }
//!     }
//!     "#,
//!     None,
//!     RuleSet::default_rules(),
//!     &TajConfig::hybrid_unbounded(),
//! )?;
//! assert_eq!(report.issue_count(), 1);
//! # Ok::<(), taj::TajError>(())
//! ```

pub use jir;
pub use taj_core as core;
pub use taj_obs as obs;
pub use taj_pointer as pointer;
pub use taj_sdg as sdg;
pub use taj_service as service;
pub use taj_supervise as supervise;
pub use taj_webgen as webgen;

pub use taj_core::{analyze_source, IssueType, RuleSet, TajConfig, TajError, TajReport};
