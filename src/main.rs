//! `taj` — command-line front door to the analysis.
//!
//! ```text
//! taj analyze <file.jweb> [--config NAME] [--json] [--flows] [--concurrency] [--ir]
//!             [--deadline-ms N] [--degrade] [--threads N] [--profile] [--trace-out FILE]
//! taj configs
//! taj demo
//! taj serve [--socket PATH | --tcp ADDR] [--workers N] [--cache-mb N] [--timeout-ms N]
//!           [--store-dir DIR] [--store-mb N] [--max-queue N] [--flight-records N] [--slow-ms N]
//! taj router (--socket PATH | --tcp ADDR) --shard ADDR [--shard ADDR ...] [--timeout-ms N]
//!            [--failure-threshold N] [--cooldown-ms N] [--flight-records N] [--trace-out FILE]
//! taj client (--socket PATH | --tcp ADDR) analyze <file.jweb> [--config NAME] [--sarif]
//!            [--timeout-ms N] [--degrade] [--threads N] [--delta <base.jweb>] [--trace-id ID]
//! taj client (--socket PATH | --tcp ADDR) analyze --batch <file.jweb> [<file.jweb> ...]
//! taj client (--socket PATH | --tcp ADDR) trace <trace-id> [--trace-out FILE]
//! taj client (--socket PATH | --tcp ADDR) last-traces [--limit N]
//! taj client (--socket PATH | --tcp ADDR) configs|stats|metrics|shutdown
//! ```
//!
//! Argument handling is strict: unknown `--flags` are rejected with an
//! error instead of silently ignored, matching the daemon protocol's
//! strictness (a typo must fail loudly, not change semantics).

use std::process::ExitCode;

use std::time::Duration;

use taj::core::{analyze_source_opts, RuleSet, RunOptions, Supervisor, TajConfig, TajError};
use taj::obs::Recorder;
use taj::service::{AnalyzeOpts, Bind, Client, RouterOptions, RouterTuning, ServeOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("configs") => match parse_args(&args[1..], &[], 0) {
            Ok(_) => {
                for c in TajConfig::all() {
                    println!("{:<20} {:?}", c.name, c.algorithm);
                }
                ExitCode::SUCCESS
            }
            Err(e) => usage_error(&e),
        },
        Some("demo") => match parse_args(&args[1..], &[], 0) {
            Ok(_) => {
                let demo = taj::webgen::motivating();
                run_analysis(
                    &demo.source,
                    RuleSet::default_rules(),
                    &TajConfig::hybrid_unbounded(),
                    &OutputOpts { flows: true, ..OutputOpts::default() },
                    &RunOptions::default(),
                )
            }
            Err(e) => usage_error(&e),
        },
        Some("serve") => serve_cmd(&args[1..]),
        Some("router") => router_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: taj analyze <file.jweb> [--config NAME] [--rules FILE] [--json] [--sarif] [--flows] [--concurrency] [--ir] [--deadline-ms N] [--degrade] [--threads N] [--profile] [--trace-out FILE]"
            );
            eprintln!("       taj configs          list configuration names");
            eprintln!("       taj demo             analyze the paper's Figure 1 program");
            eprintln!(
                "       taj serve [--socket PATH | --tcp ADDR] [--workers N] [--cache-mb N] [--timeout-ms N] [--store-dir DIR] [--store-mb N] [--max-queue N] [--flight-records N] [--slow-ms N] [--debug]"
            );
            eprintln!(
                "       taj router (--socket PATH | --tcp ADDR) --shard ADDR [--shard ADDR ...] [--timeout-ms N] [--failure-threshold N] [--cooldown-ms N] [--flight-records N] [--trace-out FILE]"
            );
            eprintln!(
                "       taj client (--socket PATH | --tcp ADDR) analyze <file.jweb> [--config NAME] [--rules FILE] [--sarif] [--timeout-ms N] [--degrade] [--threads N] [--delta <base.jweb>] [--trace-id ID]"
            );
            eprintln!(
                "       taj client (--socket PATH | --tcp ADDR) analyze --batch <file.jweb> [<file.jweb> ...]"
            );
            eprintln!(
                "       taj client (--socket PATH | --tcp ADDR) trace <trace-id> [--trace-out FILE]"
            );
            eprintln!("       taj client (--socket PATH | --tcp ADDR) last-traces [--limit N]");
            eprintln!(
                "       taj client (--socket PATH | --tcp ADDR) configs|stats|metrics|shutdown"
            );
            ExitCode::FAILURE
        }
    }
}

/// One accepted flag: its name and whether it consumes a value.
struct FlagSpec {
    name: &'static str,
    takes_value: bool,
}

const fn flag(name: &'static str) -> FlagSpec {
    FlagSpec { name, takes_value: false }
}

const fn opt(name: &'static str) -> FlagSpec {
    FlagSpec { name, takes_value: true }
}

/// Parsed command line: positionals in order, plus flag lookups.
#[derive(Debug)]
struct Parsed {
    positionals: Vec<String>,
    present: Vec<&'static str>,
    values: Vec<(&'static str, String)>,
}

impl Parsed {
    fn has(&self, name: &str) -> bool {
        self.present.contains(&name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable value flag, in order (e.g. the
    /// router's `--shard A --shard B`).
    fn values(&self, name: &str) -> Vec<&str> {
        self.values.iter().filter(|(n, _)| *n == name).map(|(_, v)| v.as_str()).collect()
    }
}

/// Strict parse: every `--flag` must be in `spec` (unknown flags are
/// errors, not no-ops), value flags must have a value, and at most
/// `max_positionals` bare arguments are accepted.
fn parse_args(
    args: &[String],
    spec: &[FlagSpec],
    max_positionals: usize,
) -> Result<Parsed, String> {
    let mut parsed = Parsed { positionals: Vec::new(), present: Vec::new(), values: Vec::new() };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(stripped) = a.strip_prefix("--") {
            let (name, inline) = match stripped.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (stripped, None),
            };
            let Some(s) = spec.iter().find(|s| s.name == name) else {
                return Err(format!("unknown flag `--{name}`"));
            };
            if s.takes_value {
                let value = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i)
                            .filter(|v| !v.starts_with("--"))
                            .cloned()
                            .ok_or_else(|| format!("flag `--{name}` requires a value"))?
                    }
                };
                parsed.values.push((s.name, value));
            } else {
                if inline.is_some() {
                    return Err(format!("flag `--{name}` takes no value"));
                }
                parsed.present.push(s.name);
            }
        } else {
            if parsed.positionals.len() >= max_positionals {
                return Err(format!("unexpected argument `{a}`"));
            }
            parsed.positionals.push(a.clone());
        }
        i += 1;
    }
    Ok(parsed)
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message} (run `taj` for usage)");
    ExitCode::FAILURE
}

fn read_file(path: &str, what: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {what} `{path}`: {e}");
        ExitCode::FAILURE
    })
}

fn load_rules(parsed: &Parsed) -> Result<RuleSet, ExitCode> {
    match parsed.value("rules") {
        Some(path) => {
            let text = read_file(path, "rules file")?;
            taj::core::parse_rules(&text).map_err(|e| {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            })
        }
        None => Ok(RuleSet::default_rules()),
    }
}

fn analyze_cmd(args: &[String]) -> ExitCode {
    const SPEC: &[FlagSpec] = &[
        opt("config"),
        opt("rules"),
        flag("json"),
        flag("sarif"),
        flag("flows"),
        flag("concurrency"),
        flag("ir"),
        opt("deadline-ms"),
        flag("degrade"),
        opt("threads"),
        flag("profile"),
        opt("trace-out"),
    ];
    let parsed = match parse_args(args, SPEC, 1) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let Some(path) = parsed.positionals.first() else {
        return usage_error("missing input file");
    };
    let source = match read_file(path, "input") {
        Ok(s) => s,
        Err(code) => return code,
    };
    let config_name = parsed.value("config").unwrap_or("hybrid");
    let Some(config) = TajConfig::by_name(config_name) else {
        eprintln!("error: unknown config `{config_name}` (see `taj configs`)");
        return ExitCode::FAILURE;
    };
    let rules = match load_rules(&parsed) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let opts = OutputOpts {
        json: parsed.has("json"),
        sarif: parsed.has("sarif"),
        flows: parsed.has("flows"),
        concurrency: parsed.has("concurrency"),
        ir: parsed.has("ir"),
        profile: parsed.has("profile"),
        trace_out: parsed.value("trace-out").map(str::to_string),
    };
    let mut supervisor = Supervisor::new();
    if let Some(v) = parsed.value("deadline-ms") {
        match v.parse::<u64>() {
            Ok(ms) => supervisor = supervisor.with_deadline(Duration::from_millis(ms)),
            Err(_) => return usage_error("`--deadline-ms` must be a non-negative integer"),
        }
    }
    let threads = match parsed.value("threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return usage_error("`--threads` must be a non-negative integer (0 = auto)"),
        },
        None => 0,
    };
    let recorder = if opts.profile || opts.trace_out.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    let run = RunOptions { supervisor, degrade: parsed.has("degrade"), threads, recorder };
    run_analysis(&source, rules, &config, &opts, &run)
}

fn serve_cmd(args: &[String]) -> ExitCode {
    const SPEC: &[FlagSpec] = &[
        opt("socket"),
        opt("tcp"),
        opt("workers"),
        opt("cache-mb"),
        opt("timeout-ms"),
        opt("store-dir"),
        opt("store-mb"),
        opt("max-queue"),
        opt("flight-records"),
        opt("slow-ms"),
        flag("debug"),
    ];
    let parsed = match parse_args(args, SPEC, 0) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let bind = match (parsed.value("socket"), parsed.value("tcp")) {
        (Some(_), Some(_)) => return usage_error("`--socket` and `--tcp` are mutually exclusive"),
        (Some(path), None) => Bind::Unix(path.into()),
        (None, Some(addr)) => Bind::Tcp(addr.to_string()),
        (None, None) => Bind::Tcp("127.0.0.1:7411".to_string()),
    };
    let workers = match parse_num(&parsed, "workers", 0) {
        Ok(n) => n as usize,
        Err(code) => return code,
    };
    let cache_mb = match parse_num(&parsed, "cache-mb", 64) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let store_mb = match parse_num(&parsed, "store-mb", 256) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let timeout_ms = match parsed.value("timeout-ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => return usage_error("`--timeout-ms` must be a non-negative integer"),
        },
        None => None,
    };
    let max_queue = match parse_num(&parsed, "max-queue", 0) {
        Ok(n) => n as usize,
        Err(code) => return code,
    };
    let flight_records =
        match parse_num(&parsed, "flight-records", taj::service::DEFAULT_FLIGHT_RECORDS as u64) {
            Ok(n) => n as usize,
            Err(code) => return code,
        };
    let slow_ms = match parsed.value("slow-ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => return usage_error("`--slow-ms` must be a non-negative integer"),
        },
        None => None,
    };
    let options = ServeOptions {
        bind,
        workers,
        cache_bytes: (cache_mb as usize) << 20,
        default_timeout_ms: timeout_ms,
        debug: parsed.has("debug"),
        store_dir: parsed.value("store-dir").map(std::path::PathBuf::from),
        store_bytes: store_mb << 20,
        max_queue,
        flight_records,
        slow_ms,
    };
    match taj::service::serve(options) {
        Ok(handle) => {
            println!("taj-service listening on {}", handle.addr());
            handle.join(); // runs until a `shutdown` request drains the pool
            println!("taj-service stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            ExitCode::FAILURE
        }
    }
}

fn router_cmd(args: &[String]) -> ExitCode {
    const SPEC: &[FlagSpec] = &[
        opt("socket"),
        opt("tcp"),
        opt("shard"),
        opt("timeout-ms"),
        opt("failure-threshold"),
        opt("cooldown-ms"),
        opt("flight-records"),
        opt("trace-out"),
    ];
    let parsed = match parse_args(args, SPEC, 0) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let bind = match (parsed.value("socket"), parsed.value("tcp")) {
        (Some(_), Some(_)) => return usage_error("`--socket` and `--tcp` are mutually exclusive"),
        (Some(path), None) => Bind::Unix(path.into()),
        (None, Some(addr)) => Bind::Tcp(addr.to_string()),
        (None, None) => Bind::Tcp("127.0.0.1:7410".to_string()),
    };
    let shards: Vec<String> = parsed.values("shard").into_iter().map(str::to_string).collect();
    if shards.is_empty() {
        return usage_error("`taj router` needs at least one `--shard ADDR`");
    }
    let timeout_ms = match parsed.value("timeout-ms") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => return usage_error("`--timeout-ms` must be a non-negative integer"),
        },
        None => None,
    };
    let mut tuning = RouterTuning::default();
    match parse_num(&parsed, "failure-threshold", u64::from(tuning.failure_threshold)) {
        Ok(n) => tuning.failure_threshold = n.max(1).min(u64::from(u32::MAX)) as u32,
        Err(code) => return code,
    }
    match parse_num(&parsed, "cooldown-ms", tuning.cooldown_ms) {
        Ok(n) => tuning.cooldown_ms = n,
        Err(code) => return code,
    }
    let flight_records =
        match parse_num(&parsed, "flight-records", taj::service::DEFAULT_FLIGHT_RECORDS as u64) {
            Ok(n) => n as usize,
            Err(code) => return code,
        };
    let options = RouterOptions {
        bind,
        shards,
        default_timeout_ms: timeout_ms,
        tuning,
        flight_records,
        trace_out: parsed.value("trace-out").map(std::path::PathBuf::from),
    };
    match taj::service::route(options) {
        Ok(handle) => {
            println!("taj-router listening on {}", handle.addr());
            handle.join(); // runs until a `shutdown` request
            println!("taj-router stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot start router: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_num(parsed: &Parsed, name: &str, default: u64) -> Result<u64, ExitCode> {
    match parsed.value(name) {
        Some(v) => v.parse::<u64>().map_err(|_| {
            eprintln!("error: `--{name}` must be a non-negative integer (run `taj` for usage)");
            ExitCode::FAILURE
        }),
        None => Ok(default),
    }
}

fn client_cmd(args: &[String]) -> ExitCode {
    const SPEC: &[FlagSpec] = &[
        opt("socket"),
        opt("tcp"),
        opt("config"),
        opt("rules"),
        flag("sarif"),
        opt("timeout-ms"),
        flag("degrade"),
        opt("threads"),
        flag("batch"),
        opt("delta"),
        opt("limit"),
        opt("trace-out"),
        opt("trace-id"),
    ];
    // `analyze --batch` takes many input files; every other command is
    // validated to its own arity below.
    let parsed = match parse_args(args, SPEC, 1 + taj::service::MAX_BATCH_ITEMS) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let mut client = match (parsed.value("socket"), parsed.value("tcp")) {
        (Some(_), Some(_)) => return usage_error("`--socket` and `--tcp` are mutually exclusive"),
        (Some(path), None) => match Client::connect_unix(std::path::Path::new(path)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot connect to `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, Some(addr)) => match Client::connect_tcp(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot connect to `{addr}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => return usage_error("`taj client` needs `--socket PATH` or `--tcp ADDR`"),
    };
    if !matches!(parsed.positionals.first().map(String::as_str), Some("analyze" | "trace"))
        && parsed.positionals.len() > 1
    {
        return usage_error("only `taj client analyze` and `taj client trace` take arguments");
    }
    let result = match parsed.positionals.first().map(String::as_str) {
        Some("analyze") => {
            let Some(path) = parsed.positionals.get(1) else {
                return usage_error("missing input file for `taj client analyze`");
            };
            let rules = match parsed.value("rules") {
                Some(p) => match read_file(p, "rules file") {
                    Ok(t) => Some(t),
                    Err(code) => return code,
                },
                None => None,
            };
            let timeout_ms = match parsed.value("timeout-ms") {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => Some(n),
                    Err(_) => return usage_error("`--timeout-ms` must be a non-negative integer"),
                },
                None => None,
            };
            let threads = match parsed.value("threads") {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        return usage_error("`--threads` must be a non-negative integer (0 = auto)")
                    }
                },
                None => None,
            };
            let opts = AnalyzeOpts {
                config: parsed.value("config").map(str::to_string),
                rules,
                sarif: parsed.has("sarif"),
                timeout_ms: if parsed.has("batch") { None } else { timeout_ms },
                degrade: parsed.has("degrade"),
                threads,
                trace_id: parsed.value("trace-id").map(str::to_string),
            };
            if parsed.has("batch") {
                if parsed.value("delta").is_some() {
                    return usage_error("`--delta` and `--batch` are mutually exclusive");
                }
                // One envelope, one response: every input file becomes an
                // item sharing the command-line options; `--timeout-ms`
                // becomes the envelope-wide deadline.
                let mut items = Vec::new();
                for path in &parsed.positionals[1..] {
                    match read_file(path, "input") {
                        Ok(source) => items.push((source, opts.clone())),
                        Err(code) => return code,
                    }
                }
                return match client.batch(&items, timeout_ms) {
                    Ok(value) => {
                        match serde_json::to_string_pretty(&value) {
                            Ok(s) => println!("{s}"),
                            Err(e) => {
                                eprintln!("error: cannot render response: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                        batch_exit_code(&value)
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            if parsed.positionals.len() > 2 {
                return usage_error(
                    "multiple input files need `--batch` (taj client analyze --batch f1 f2 ...)",
                );
            }
            let source = match read_file(path, "input") {
                Ok(s) => s,
                Err(code) => return code,
            };
            match parsed.value("delta") {
                Some(base_path) => {
                    let base_source = match read_file(base_path, "base input") {
                        Ok(s) => s,
                        Err(code) => return code,
                    };
                    client.analyze_delta(&base_source, &source, &opts).map(|(result, delta)| {
                        // Delta metadata goes to stderr so stdout stays
                        // byte-par with a plain `analyze` of the same
                        // file — pipelines never see the difference.
                        if let Ok(d) = serde_json::to_string(&delta) {
                            eprintln!("delta: {d}");
                        }
                        result
                    })
                }
                None => client.analyze(&source, &opts),
            }
        }
        Some("trace") => {
            let Some(trace_id) = parsed.positionals.get(1) else {
                return usage_error("missing trace id for `taj client trace`");
            };
            if parsed.positionals.len() > 2 {
                return usage_error("`taj client trace` takes exactly one trace id");
            }
            return match client.trace(trace_id) {
                Ok(result) => {
                    // Stitch the per-process fragments into one Chrome
                    // trace so the output opens directly in Perfetto.
                    let stitched =
                        taj::service::stitch_fragments(&taj::service::fragments_of(&result));
                    match parsed.value("trace-out") {
                        Some(path) => match std::fs::write(path, &stitched) {
                            Ok(()) => {
                                eprintln!(
                                    "stitched trace written to {path} (open with https://ui.perfetto.dev)"
                                );
                                ExitCode::SUCCESS
                            }
                            Err(e) => {
                                eprintln!("error: cannot write trace `{path}`: {e}");
                                ExitCode::FAILURE
                            }
                        },
                        None => {
                            println!("{stitched}");
                            ExitCode::SUCCESS
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("last-traces") => {
            let limit = match parsed.value("limit") {
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => Some(n),
                    Err(_) => return usage_error("`--limit` must be a non-negative integer"),
                },
                None => None,
            };
            client.last_traces(limit)
        }
        Some("configs") => client.configs(),
        Some("stats") => client.stats(),
        Some("metrics") => {
            // Prometheus text exposition: print verbatim, not JSON-wrapped.
            return match client.metrics() {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("shutdown") => client.shutdown(),
        Some(other) => return usage_error(&format!("unknown client command `{other}`")),
        None => {
            return usage_error(
                "missing client command (analyze|configs|stats|metrics|trace|last-traces|shutdown)",
            )
        }
    };
    match result {
        Ok(value) => {
            match serde_json::to_string_pretty(&value) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("error: cannot render response: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // CI-friendly: nonempty findings in an analyze report exit 2,
            // like the one-shot `taj analyze`.
            match value.get("findings").and_then(|f| f.as_array()) {
                Some(findings) if !findings.is_empty() => ExitCode::from(2),
                _ => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Exit code for a batch response: 2 when any item's report carries
/// findings (mirroring single `analyze`), 1 when any item failed, 0
/// otherwise.
fn batch_exit_code(value: &serde::Value) -> ExitCode {
    let Some(serde::Value::Array(items)) = value.get("items") else {
        return ExitCode::FAILURE;
    };
    let mut findings = false;
    for item in items {
        if item.get("ok").and_then(serde::Value::as_bool) != Some(true) {
            return ExitCode::FAILURE;
        }
        if let Some(f) = item.get("result").and_then(|r| r.get("findings")) {
            if f.as_array().is_some_and(|a| !a.is_empty()) {
                findings = true;
            }
        }
    }
    if findings {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Output selection for `run_analysis`.
#[derive(Default)]
struct OutputOpts {
    json: bool,
    sarif: bool,
    flows: bool,
    concurrency: bool,
    ir: bool,
    profile: bool,
    trace_out: Option<String>,
}

/// Writes the recorder's Chrome `trace_event` JSON to `path`.
/// Runs even when the analysis degraded or aborted: whatever spans were
/// recorded up to the failure are still worth inspecting in Perfetto.
fn write_trace(path: &str, recorder: &Recorder) -> ExitCode {
    match std::fs::write(path, recorder.chrome_trace()) {
        Ok(()) => {
            eprintln!("trace written to {path} (open with https://ui.perfetto.dev)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write trace `{path}`: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_analysis(
    source: &str,
    rules: RuleSet,
    config: &TajConfig,
    opts: &OutputOpts,
    run: &RunOptions,
) -> ExitCode {
    let OutputOpts { json, sarif, flows, concurrency, ir, profile, .. } = *opts;
    if ir {
        match jir::frontend::build_program(source) {
            Ok(program) => print!("{}", jir::pretty::program_to_string(&program)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = analyze_source_opts(source, None, rules, config, run);
    // Trace output is useful even for aborted runs (the spans recorded up
    // to the failure are flushed by `Span::drop`), so write it first.
    if let Some(path) = &opts.trace_out {
        let code = write_trace(path, &run.recorder);
        if code != ExitCode::SUCCESS {
            return code;
        }
    }
    match result {
        Ok(report) => {
            if sarif {
                match taj::core::to_sarif(&report) {
                    Ok(s) => println!("{s}"),
                    Err(e) => {
                        eprintln!("error: SARIF serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else if json {
                match serde_json::to_string_pretty(&report) {
                    Ok(s) => println!("{s}"),
                    Err(e) => {
                        eprintln!("error: serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                println!(
                    "{}: {} issue(s), {} raw flow(s), {} ms",
                    report.config,
                    report.issue_count(),
                    report.flows.len(),
                    report.stats.total_ms
                );
                for f in &report.findings {
                    println!(
                        "  [{:>13}] {} → {}  in {} (×{})",
                        f.flow.issue.to_string(),
                        f.flow.source_method,
                        f.flow.sink_method,
                        f.flow.sink_owner_class,
                        f.group_size
                    );
                }
                if flows {
                    println!("\nraw flows:");
                    for fl in &report.flows {
                        println!(
                            "  [{:>13}] {} → {} in {} (len {}, {} heap hops)",
                            fl.issue.to_string(),
                            fl.source_method,
                            fl.sink_method,
                            fl.sink_owner_class,
                            fl.flow_len,
                            fl.heap_transitions
                        );
                    }
                }
                if concurrency {
                    println!();
                    print!("{}", taj::core::concurrency_text(&report));
                }
                if report.degradation.degraded {
                    println!("\nDEGRADED run:");
                    for step in &report.degradation.steps {
                        println!(
                            "  [{}] {} -> {} ({})",
                            step.stage, step.from, step.to, step.reason
                        );
                        println!("    caveat: {}", step.caveat);
                    }
                }
            }
            if profile {
                // stderr, so `--json`/`--sarif` stdout stays machine-parseable.
                eprint!("{}", taj::core::profile_text(&report, &run.recorder));
            }
            if report.issue_count() > 0 {
                ExitCode::from(2) // findings present: CI-friendly exit code
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(TajError::Parse(e)) => {
            eprintln!("parse error: {e}");
            ExitCode::FAILURE
        }
        Err(TajError::OutOfMemory { path_edges }) => {
            eprintln!("analysis ran out of memory budget ({path_edges} path edges)");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    const ANALYZE_SPEC: &[FlagSpec] = &[opt("config"), opt("rules"), flag("json"), flag("flows")];

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        let e = parse_args(&argv(&["file.jweb", "--jsno"]), ANALYZE_SPEC, 1).unwrap_err();
        assert!(e.contains("--jsno"), "{e}");
        let e = parse_args(&argv(&["--config"]), ANALYZE_SPEC, 0).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
        let e = parse_args(&argv(&["a", "b"]), ANALYZE_SPEC, 1).unwrap_err();
        assert!(e.contains("unexpected argument"), "{e}");
        let e = parse_args(&argv(&["--json=yes"]), ANALYZE_SPEC, 0).unwrap_err();
        assert!(e.contains("takes no value"), "{e}");
    }

    #[test]
    fn known_flags_parse() {
        let p = parse_args(
            &argv(&["file.jweb", "--config", "cs", "--json", "--flows"]),
            ANALYZE_SPEC,
            1,
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["file.jweb"]);
        assert_eq!(p.value("config"), Some("cs"));
        assert!(p.has("json") && p.has("flows"));
        assert!(!p.has("ir"));
        let p = parse_args(&argv(&["--config=ci"]), ANALYZE_SPEC, 0).unwrap();
        assert_eq!(p.value("config"), Some("ci"));
    }

    #[test]
    fn value_flag_will_not_eat_a_flag() {
        // `--config --json` must fail, not treat `--json` as the value.
        let e = parse_args(&argv(&["--config", "--json"]), ANALYZE_SPEC, 0).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
    }
}
