//! `taj` — command-line front door to the analysis.
//!
//! ```text
//! taj analyze <file.jweb> [--config NAME] [--json] [--flows] [--concurrency] [--ir]
//! taj configs
//! taj demo
//! ```

use std::process::ExitCode;

use taj::core::{analyze_source, RuleSet, TajConfig, TajError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("configs") => {
            for c in TajConfig::all() {
                println!("{:<20} {:?}", c.name, c.algorithm);
            }
            ExitCode::SUCCESS
        }
        Some("demo") => {
            let demo = taj::webgen::motivating();
            run_analysis(
                &demo.source,
                RuleSet::default_rules(),
                &TajConfig::hybrid_unbounded(),
                &OutputOpts { flows: true, ..OutputOpts::default() },
            )
        }
        _ => {
            eprintln!(
            "usage: taj analyze <file.jweb> [--config NAME] [--rules FILE] [--json] [--sarif] [--flows] [--concurrency] [--ir]"
        );
            eprintln!("       taj configs          list configuration names");
            eprintln!("       taj demo             analyze the paper's Figure 1 program");
            ExitCode::FAILURE
        }
    }
}

fn analyze_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("error: missing input file");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config_name = args
        .iter()
        .position(|a| a == "--config")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("hybrid");
    let config = match config_name {
        "hybrid" | "unbounded" => TajConfig::hybrid_unbounded(),
        "prioritized" => TajConfig::hybrid_prioritized(),
        "optimized" => TajConfig::hybrid_optimized(),
        "cs" => TajConfig::cs_thin(),
        "ci" => TajConfig::ci_thin(),
        "cs_escape" | "cs-escape" | "escape" => TajConfig::cs_escape(),
        other => {
            eprintln!("error: unknown config `{other}` (see `taj configs`)");
            return ExitCode::FAILURE;
        }
    };
    let rules = match args.iter().position(|a| a == "--rules").and_then(|i| args.get(i + 1)) {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read rules file `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match taj::core::parse_rules(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => RuleSet::default_rules(),
    };
    let opts = OutputOpts {
        json: args.iter().any(|a| a == "--json"),
        sarif: args.iter().any(|a| a == "--sarif"),
        flows: args.iter().any(|a| a == "--flows"),
        concurrency: args.iter().any(|a| a == "--concurrency"),
        ir: args.iter().any(|a| a == "--ir"),
    };
    run_analysis(&source, rules, &config, &opts)
}

/// Output selection for `run_analysis`.
#[derive(Default)]
struct OutputOpts {
    json: bool,
    sarif: bool,
    flows: bool,
    concurrency: bool,
    ir: bool,
}

fn run_analysis(source: &str, rules: RuleSet, config: &TajConfig, opts: &OutputOpts) -> ExitCode {
    let &OutputOpts { json, sarif, flows, concurrency, ir } = opts;
    if ir {
        match jir::frontend::build_program(source) {
            Ok(program) => print!("{}", jir::pretty::program_to_string(&program)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match analyze_source(source, None, rules, config) {
        Ok(report) => {
            if sarif {
                match taj::core::to_sarif(&report) {
                    Ok(s) => println!("{s}"),
                    Err(e) => {
                        eprintln!("error: SARIF serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else if json {
                match serde_json::to_string_pretty(&report) {
                    Ok(s) => println!("{s}"),
                    Err(e) => {
                        eprintln!("error: serialization failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                println!(
                    "{}: {} issue(s), {} raw flow(s), {} ms",
                    report.config,
                    report.issue_count(),
                    report.flows.len(),
                    report.stats.total_ms
                );
                for f in &report.findings {
                    println!(
                        "  [{:>13}] {} → {}  in {} (×{})",
                        f.flow.issue.to_string(),
                        f.flow.source_method,
                        f.flow.sink_method,
                        f.flow.sink_owner_class,
                        f.group_size
                    );
                }
                if flows {
                    println!("\nraw flows:");
                    for fl in &report.flows {
                        println!(
                            "  [{:>13}] {} → {} in {} (len {}, {} heap hops)",
                            fl.issue.to_string(),
                            fl.source_method,
                            fl.sink_method,
                            fl.sink_owner_class,
                            fl.flow_len,
                            fl.heap_transitions
                        );
                    }
                }
                if concurrency {
                    println!();
                    print!("{}", taj::core::concurrency_text(&report));
                }
            }
            if report.issue_count() > 0 {
                ExitCode::from(2) // findings present: CI-friendly exit code
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(TajError::Parse(e)) => {
            eprintln!("parse error: {e}");
            ExitCode::FAILURE
        }
        Err(TajError::OutOfMemory { path_edges }) => {
            eprintln!("analysis ran out of memory budget ({path_edges} path edges)");
            ExitCode::FAILURE
        }
    }
}
